//! Incremental quantile maintenance (§4) — nightly batches arrive and the
//! dectiles of the *whole* history must stay available without re-reading
//! old data.
//!
//! ```text
//! cargo run --release --example incremental_stream
//! ```
//!
//! Each "day" appends a batch whose distribution drifts upward over time;
//! the example shows the estimated median tracking the drift while only the
//! new runs are ever sampled, and compares against the exact median of the
//! accumulated history.

use opaq::datagen::{DatasetSpec, Distribution};
use opaq::{GroundTruth, IncrementalOpaq, OpaqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch_size: u64 = 250_000;
    let days = 8u64;
    let config = OpaqConfig::builder()
        .run_length(50_000)
        .sample_size(1_000)
        .build()?;
    let mut estimator = IncrementalOpaq::<u64>::new(config)?;
    let mut history: Vec<u64> = Vec::new();

    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>14} {:>10}",
        "day", "total keys", "median lower", "median exact", "median upper", "samples"
    );
    for day in 0..days {
        // The daily distribution drifts: later days carry larger keys.
        let spec = DatasetSpec {
            n: batch_size,
            distribution: Distribution::Uniform {
                domain: 1_000_000 + day * 500_000,
            },
            duplicate_fraction: 0.1,
            seed: 1_000 + day,
        };
        let batch = spec.generate();
        history.extend_from_slice(&batch);
        estimator.add_run(batch)?;

        let estimate = estimator.estimate(0.5)?;
        let exact = GroundTruth::new(&history).quantile_value(0.5);
        assert!(
            estimate.lower <= exact && exact <= estimate.upper,
            "bounds must always hold"
        );
        println!(
            "{:>4} {:>12} {:>14} {:>14} {:>14} {:>10}",
            day + 1,
            history.len(),
            estimate.lower,
            exact,
            estimate.upper,
            estimator
                .sketch()
                .map(|s| s.memory_sample_points())
                .unwrap_or(0)
        );
    }
    println!("\nonly the new runs were ever sampled; old data was never revisited (paper §4)");
    Ok(())
}
