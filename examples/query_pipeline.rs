//! Composable query pipelines over the catalog: parse, plan, execute.
//!
//! Publishes three tenants, then runs pipeline expressions — `fetch` by
//! glob, `coalesce` via the deterministic merge tree, and a typed extract —
//! through the same `PlanExecutor` the HTTP front-end routes every request
//! through.  Shows the provenance every answer carries, the typed errors a
//! bad plan gets, and the equivalence between a coalescing plan and the
//! manual merge-then-query workflow it replaces.
//!
//! Run with `cargo run --example query_pipeline`.

use opaq::core::{IncrementalOpaq, OpaqConfig};
use opaq::query::{merge_tree, PlanExecutor, QueryPlan};
use opaq::serve::{execute_on, DatasetId, QueryOutput, SketchCatalog, TenantId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OpaqConfig::builder()
        .run_length(10_000)
        .sample_size(500)
        .build()?;

    // Three shards of one logical stream, published per-tenant, plus an
    // unrelated tenant the glob must not touch.
    let catalog = Arc::new(SketchCatalog::unbounded());
    for (tenant, lo, hi) in [
        ("shard-0", 0u64, 400_000u64),
        ("shard-1", 400_000, 700_000),
        ("shard-2", 700_000, 1_000_000),
        ("audit", 0, 50_000),
    ] {
        let mut inc = IncrementalOpaq::new(config)?;
        inc.add_run((lo..hi).collect())?;
        catalog.publish(
            &TenantId::new(tenant),
            &DatasetId::new("latencies"),
            inc.into_sketch().expect("non-empty"),
        )?;
    }

    // One expression: fetch by glob, fuse, extract.  The executor reports
    // exactly which (tenant, dataset, version, freshness) tuples answered.
    let executor = PlanExecutor::new(Arc::clone(&catalog));
    let plan = QueryPlan::parse("fetch shard-*/latencies | coalesce | quantile 0.5,0.99")?;
    let response = executor.execute(&plan)?;
    println!(
        "plan fused {} sources covering {} keys:",
        response.sources.len(),
        response.total_elements
    );
    for source in &response.sources {
        println!(
            "  {}/{} version {} ({})",
            source.tenant, source.dataset, source.version, source.freshness
        );
    }
    if let QueryOutput::QuantileBatch(estimates) = &response.output {
        for est in estimates {
            println!(
                "  phi {:.2}: value in [{}, {}]",
                est.phi, est.lower, est.upper
            );
        }
    }

    // Equivalence: the pipeline is the manual workflow, not a new estimator.
    // Fusing the same snapshots by hand and querying directly gives the
    // identical output — which is what lets a byte-for-byte verifier replay
    // served plans offline.
    let sketches: Vec<_> = response
        .sources
        .iter()
        .map(|s| {
            catalog
                .snapshot(&s.tenant, &s.dataset)
                .map(|snap| snap.sketch)
        })
        .collect::<Result<_, _>>()?;
    let fused = merge_tree(&sketches)?;
    assert_eq!(response.output, execute_on(&fused, &plan.extract)?);
    assert_eq!(response.total_elements, fused.total_elements());
    println!("offline merge + direct query reproduced the plan answer exactly");

    // Degenerate plans serve the single-target API through the same path.
    let single = QueryPlan::parse("fetch audit/latencies | rank 25000")?;
    let audit = executor.execute(&single)?;
    if let QueryOutput::Rank(bounds) = &audit.output {
        println!(
            "audit rank bounds for 25000: [{}, {}] of {} keys (1 source)",
            bounds.min_rank, bounds.max_rank, audit.total_elements
        );
    }

    // Errors are typed and name the mistake: a fan-out without coalesce, a
    // glob that matches nothing, a malformed stage.
    let uncoalesced = QueryPlan::parse("fetch shard-*/latencies | quantile 0.5")?;
    println!(
        "fan-out without coalesce: {}",
        executor.execute(&uncoalesced).unwrap_err()
    );
    let unmatched = QueryPlan::parse("fetch ghost-*/latencies | coalesce | quantile 0.5")?;
    println!(
        "unmatched glob: {}",
        executor.execute(&unmatched).unwrap_err()
    );
    println!(
        "parse error: {}",
        QueryPlan::parse("fetch shard-*/latencies | juggle 3").unwrap_err()
    );
    Ok(())
}
