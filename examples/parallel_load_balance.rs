//! Parallel OPAQ for load balancing — the `[DNS91]` use case: pick splitters
//! so that `p` workers each receive an (almost) equal share of a skewed
//! dataset.
//!
//! ```text
//! cargo run --release --example parallel_load_balance
//! ```
//!
//! The dataset is heavily skewed (Zipf 0.86), so naive equal-width range
//! partitioning produces wildly unbalanced workers.  The example contrasts
//! that with quantile-based splitters computed by the *parallel* OPAQ
//! formulation (8 simulated processors, sample merge).

use opaq::parallel::{block_partition, quantile_partition, scatter_by_splitters};
use opaq::{DatasetSpec, MergeAlgorithm, OpaqConfig, ParallelOpaq};

fn imbalance(buckets: &[Vec<u64>], fair: f64) -> f64 {
    buckets
        .iter()
        .map(|b| (b.len() as f64 / fair - 1.0).abs())
        .fold(0.0, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 2_000_000;
    let workers = 8usize;
    let data = DatasetSpec::paper_zipf(n, 123).generate();
    let fair = n as f64 / workers as f64;

    // --- naive equal-width range partitioning --------------------------------
    let max = *data.iter().max().expect("non-empty");
    let width = (max / workers as u64).max(1);
    let naive_splitters: Vec<u64> = (1..workers as u64).map(|i| i * width).collect();
    let naive = scatter_by_splitters(&data, &naive_splitters);
    println!(
        "equal-width ranges: worker sizes {:?} (max imbalance {:.0}%)",
        naive.iter().map(Vec::len).collect::<Vec<_>>(),
        imbalance(&naive, fair) * 100.0
    );

    // --- quantile-based partitioning via parallel OPAQ -----------------------
    let per_proc = n / workers as u64;
    let config = OpaqConfig::builder()
        .run_length((per_proc / 4).max(1024))
        .sample_size(1024)
        .build()?;
    let popaq = ParallelOpaq::new(config, workers).with_merge(MergeAlgorithm::Sample);
    let report = popaq.run_on_partitions(block_partition(&data, workers))?;
    let splitters = quantile_partition(&report.sketch, workers as u64)?;
    let balanced = scatter_by_splitters(&data, &splitters);
    println!(
        "OPAQ quantile splits: worker sizes {:?} (max imbalance {:.1}%)",
        balanced.iter().map(Vec::len).collect::<Vec<_>>(),
        imbalance(&balanced, fair) * 100.0
    );
    println!(
        "modelled parallel time: io {:.2?}, sampling {:.2?}, local merge {:.2?}, global merge {:.2?}",
        report.modelled.io, report.modelled.sampling, report.modelled.local_merge, report.modelled.global_merge
    );

    assert!(
        imbalance(&balanced, fair) < imbalance(&naive, fair),
        "quantile-based splits must beat equal-width splits on skewed data"
    );
    Ok(())
}
