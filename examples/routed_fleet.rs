//! Partitioned-fleet walkthrough: a consistent-hash tenant ring splits six
//! tenants across two replica groups, each group's server scopes its
//! catalog to the tenants it owns, a ring-aware client routes (and
//! re-routes) by ownership, and a glob `coalesce` plan scatters across
//! both groups yet answers byte-identically to one unpartitioned catalog.
//!
//! Run with `cargo run --example routed_fleet`.

use opaq::core::{IncrementalOpaq, OpaqConfig};
use opaq::net::{
    GroupConfig, HashRing, HttpClient, HttpServer, Json, ReplicaConfig, RingConfig, RingMembership,
    RoutedFleet, ServerConfig, OWNER_HEADER,
};
use opaq::serve::{DatasetId, QueryEngine, SketchCatalog, TenantId};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const TENANTS: usize = 6;

fn sketch_for(tenant_idx: usize) -> opaq::QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(5_000)
        .sample_size(250)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(
        (0..20_000u64)
            .map(|i| i.wrapping_mul(2 * tenant_idx as u64 + 3) % (1 << 20))
            .collect(),
    )
    .unwrap();
    inc.into_sketch().unwrap()
}

/// Start an HTTP server on the exact reserved address, retrying briefly
/// (the reservation listener was dropped a moment ago).
fn start_on(engine: Arc<QueryEngine>, config: ServerConfig) -> HttpServer {
    for _ in 0..50 {
        match HttpServer::start(Arc::clone(&engine), config.clone()) {
            Ok(server) => return server,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("could not bind the reserved address");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ring file every process shares.  Scatter dials these addresses,
    // so they must be real: reserve two loopback ports up front.
    let reservations: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<String> = reservations
        .iter()
        .map(|l| l.local_addr().map(|a| a.to_string()))
        .collect::<std::io::Result<_>>()?;
    let ring = Arc::new(HashRing::new(RingConfig::new(
        addrs
            .iter()
            .enumerate()
            .map(|(g, addr)| GroupConfig {
                name: format!("group-{g}"),
                addrs: vec![addr.clone()],
            })
            .collect(),
    ))?);
    println!("ring: {}", ring.config().to_json());

    // One server per group, its catalog holding ONLY the tenants the ring
    // assigns to it — plus an unpartitioned oracle with every tenant.
    let oracle_catalog = Arc::new(SketchCatalog::unbounded());
    let mut servers = Vec::new();
    drop(reservations);
    for (g, group) in ring.groups().iter().enumerate() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        for idx in 0..TENANTS {
            let tenant = format!("tenant-{idx}");
            if ring.owner(&tenant).name == group.name {
                catalog.publish(
                    &TenantId::new(&*tenant),
                    &DatasetId::new("events"),
                    sketch_for(idx),
                )?;
            }
        }
        println!(
            "{}: owns {:?}",
            group.name,
            (0..TENANTS)
                .map(|i| format!("tenant-{i}"))
                .filter(|t| ring.owner(t).name == group.name)
                .collect::<Vec<_>>()
        );
        let config = ServerConfig::builder()
            .addr(group.addrs[0].clone())
            .ring(Arc::new(RingMembership::new((*ring).clone(), &group.name)?))
            .build()?;
        servers.push(start_on(Arc::new(QueryEngine::new(catalog)), config));
        let _ = g;
    }
    for idx in 0..TENANTS {
        oracle_catalog.publish(
            &TenantId::new(format!("tenant-{idx}")),
            &DatasetId::new("events"),
            sketch_for(idx),
        )?;
    }
    let mut oracle = HttpServer::start(
        Arc::new(QueryEngine::new(oracle_catalog)),
        ServerConfig::default(),
    )?;

    // A ring-aware client: every single-tenant GET goes straight to the
    // owning group, and the answer's x-opaq-owner proves it.
    let group_addrs: Vec<Vec<String>> = addrs.iter().map(|a| vec![a.clone()]).collect();
    let mut fleet = RoutedFleet::new(Arc::clone(&ring), &group_addrs, &ReplicaConfig::default())?;
    let answer = fleet.get("tenant-0", "/v1/tenant-0/events/quantile?phi=0.5")?;
    println!(
        "GET tenant-0 -> {} from {} (owner per ring: {})",
        answer.response.status,
        answer.response.header(OWNER_HEADER).unwrap_or("?"),
        ring.owner("tenant-0").name,
    );
    assert_eq!(answer.response.status, 200);
    assert_eq!(
        answer.response.header(OWNER_HEADER),
        Some(&*ring.owner("tenant-0").name.clone())
    );

    // A misdirected request gets the typed wrong_owner refusal, naming the
    // owner and its addresses; the fleet follows it in one extra hop.
    let wrong = (fleet.owner_index("tenant-0") + 1) % 2;
    let mut direct = HttpClient::new(addrs[wrong].clone());
    let refused = direct.get("/v1/tenant-0/events/quantile?phi=0.5")?;
    let body = refused.body_str()?.to_string();
    println!("misdirected GET -> {} {}", refused.status, body);
    assert_eq!(refused.status, 421);
    assert!(body.contains("\"wrong_owner\""));
    let rerouted = fleet.get_misrouted("tenant-0", "/v1/tenant-0/events/quantile?phi=0.5")?;
    assert_eq!(rerouted.response.status, 200);
    assert_eq!(rerouted.response.body, answer.response.body);
    println!("one-hop re-route -> 200, bytes identical to the direct answer");

    // The partition is invisible to queries: a glob plan spanning every
    // tenant scatters to both groups, fuses deterministically, and answers
    // byte-identically to the unpartitioned oracle.
    let plan = "{\"plan\":\"fetch tenant-*/events | coalesce | quantile 0.5\"}";
    let scattered = fleet.post_plan(plan)?;
    let mut oracle_client = HttpClient::new(oracle.local_addr().to_string());
    let unpartitioned = oracle_client.post_json("/v1/query", plan)?;
    assert_eq!(scattered.response.status, 200);
    assert_eq!(unpartitioned.status, 200);
    assert_eq!(
        scattered.response.body, unpartitioned.body,
        "scatter/gather must be byte-identical to the single-catalog run"
    );
    let parsed = Json::parse(scattered.response.body_str()?)?;
    let sources = parsed.get("sources").and_then(Json::as_array).unwrap();
    println!(
        "glob coalesce plan -> {} sources fused across both groups, byte-identical to the \
         unpartitioned oracle",
        sources.len()
    );
    assert_eq!(sources.len(), TENANTS);

    for mut server in servers {
        server.shutdown();
    }
    oracle.shutdown();
    println!("clean shutdown: both groups and the oracle drained");
    Ok(())
}
