//! Sharded multi-threaded ingestion: same sketch, less wall-clock.
//!
//! ```text
//! cargo run --release --example sharded_ingest
//! ```
//!
//! Writes a multi-run dataset file, ingests it once sequentially and once
//! per thread count with [`opaq::ShardedOpaq`], prints the wall-clock and
//! per-shard busy/starved breakdown, and verifies the central invariant:
//! the sharded sketch is **bit-identical** to the sequential one for every
//! thread count, so parallelism is purely a latency optimisation.

use opaq::datagen::DatasetSpec;
use opaq::storage::FileRunStoreBuilder;
use opaq::{OpaqConfig, OpaqEstimator, RunStore, ShardedOpaq};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 2_000_000;
    let run_length: u64 = 125_000; // 16 runs
    let data = DatasetSpec::paper_uniform(n, 7).generate();
    let path = std::env::temp_dir().join(format!("opaq-sharded-{}.bin", std::process::id()));
    let store = FileRunStoreBuilder::<u64>::new(&path, run_length)?
        .append(&data)?
        .finish()?;
    println!(
        "wrote {} keys to {} ({} runs of {} keys)\n",
        n,
        path.display(),
        store.layout().runs(),
        run_length
    );

    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(1_000)
        .build()?;

    let start = Instant::now();
    let sequential = OpaqEstimator::new(config).build_sketch(&store)?;
    let sequential_time = start.elapsed();
    println!("sequential ingest: {sequential_time:?}");

    for threads in [2usize, 4, 8] {
        let sharded = ShardedOpaq::new(config, threads)?;
        let start = Instant::now();
        let (sketch, report) = sharded.build_sketch_with_report(&store)?;
        let elapsed = start.elapsed();
        let identical = sketch == sequential;
        println!(
            "\nsharded ingest, {threads} threads: {elapsed:?} \
             (dispatch {:?}, merge {:?}; {:.2}x vs sequential; identical sketch: {identical})",
            report.dispatch,
            report.merge,
            sequential_time.as_secs_f64() / elapsed.as_secs_f64(),
        );
        print!("{}", report.render_table());
        assert!(identical, "sharded sketch must equal the sequential one");
    }

    let median = sequential.estimate(0.5)?;
    println!(
        "\nmedian of {} keys: in [{}, {}] (slack ≤ {} ranks)",
        n, median.lower, median.upper, median.max_rank_slack
    );
    store.remove_file()?;
    Ok(())
}
