//! HTTP serving walkthrough: the `opaq-net` front-end over the multi-tenant
//! catalog — versioned responses, TTL staleness, metrics — all over a real
//! loopback socket.
//!
//! Run with `cargo run --example http_serving`.

use opaq::core::{IncrementalOpaq, OpaqConfig};
use opaq::net::{HttpClient, HttpServer, Json, ServerConfig, FRESHNESS_HEADER, VERSION_HEADER};
use opaq::serve::{DatasetId, QueryEngine, RefreshPool, SketchCatalog, TenantId};
use std::sync::Arc;
use std::time::Duration;

fn sketch_of(range: std::ops::Range<u64>) -> opaq::QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(10_000)
        .sample_size(500)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(range.collect()).unwrap();
    inc.into_sketch().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One tenant with 100k keys, served over HTTP on an ephemeral port.
    let catalog = Arc::new(SketchCatalog::unbounded());
    let (tenant, dataset) = (TenantId::new("acme"), DatasetId::new("latencies"));
    catalog.publish(&tenant, &dataset, sketch_of(0..100_000))?;
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let mut server = HttpServer::start(Arc::clone(&engine), ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving on http://{addr}");

    // Every endpoint family, through the plain HTTP client.
    let mut client = HttpClient::new(addr.to_string());
    let response = client.get("/v1/acme/latencies/quantile?phi=0.99")?;
    println!(
        "GET quantile?phi=0.99 -> {} (version {}, {})\n  {}",
        response.status,
        response.header(VERSION_HEADER).unwrap_or("?"),
        response.header(FRESHNESS_HEADER).unwrap_or("?"),
        response.body_str()?
    );
    assert_eq!(response.status, 200);

    let response = client.get("/v1/acme/latencies/rank?key=50000")?;
    let parsed = Json::parse(response.body_str()?)?;
    let rank = parsed.get("rank").expect("rank payload");
    println!(
        "GET rank?key=50000 -> rank in [{}, {}]",
        rank.get("min_rank").and_then(Json::as_u64).unwrap(),
        rank.get("max_rank").and_then(Json::as_u64).unwrap()
    );

    let response = client.post_json(
        "/v1/acme/latencies/quantile_batch",
        "{\"phis\":[0.25,0.5,0.75]}",
    )?;
    let parsed = Json::parse(response.body_str()?)?;
    println!(
        "POST quantile_batch -> {} estimates from one consistent version",
        parsed
            .get("estimates")
            .and_then(Json::as_array)
            .unwrap()
            .len()
    );

    // TTL: age the entry out after 150ms; an expired read serves the old
    // version tagged stale/refreshing while the refresh pool re-ingests.
    let pool = Arc::new(RefreshPool::new(Arc::clone(&catalog), 1)?);
    let weak = Arc::downgrade(&pool);
    catalog.set_ttl(&tenant, &dataset, Some(Duration::from_millis(150)))?;
    catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
        let Some(pool) = weak.upgrade() else {
            return false;
        };
        pool.submit(tenant, dataset, || Ok(sketch_of(0..200_000)))
            .is_ok()
    }));
    std::thread::sleep(Duration::from_millis(200));
    let expired = client.get("/v1/acme/latencies/quantile?phi=0.5")?;
    println!(
        "after TTL expiry -> version {} served '{}' (stale-while-refresh)",
        expired.header(VERSION_HEADER).unwrap_or("?"),
        expired.header(FRESHNESS_HEADER).unwrap_or("?"),
    );
    assert_ne!(expired.header(FRESHNESS_HEADER), Some("fresh"));
    assert!(pool.wait_idle(Duration::from_secs(10)));
    let refreshed = client.get("/v1/acme/latencies/quantile?phi=0.5")?;
    println!(
        "after background refresh -> version {} served '{}'",
        refreshed.header(VERSION_HEADER).unwrap_or("?"),
        refreshed.header(FRESHNESS_HEADER).unwrap_or("?"),
    );
    assert_eq!(refreshed.header(VERSION_HEADER), Some("2"));
    assert_eq!(refreshed.header(FRESHNESS_HEADER), Some("fresh"));

    // Observability comes with the front-end.
    let metrics = client.get("/metrics")?;
    let interesting: Vec<&str> = metrics
        .body_str()?
        .lines()
        .filter(|l| l.contains("p99\"") || l.starts_with("opaq_catalog_publishes"))
        .collect();
    println!("metrics excerpt:\n  {}", interesting.join("\n  "));

    server.shutdown();
    pool.shutdown();
    println!("clean shutdown: server drained, refresh pool drained");
    Ok(())
}
