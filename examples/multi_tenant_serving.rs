//! Multi-tenant sketch serving: catalog, typed queries, live refresh.
//!
//! Builds sketches for two tenants, serves typed queries from catalog
//! snapshots, publishes a live refresh for one tenant mid-stream, and shows
//! that an in-flight reader's snapshot is unaffected by the epoch swap.
//!
//! Run with `cargo run --example multi_tenant_serving`.

use opaq::core::{IncrementalOpaq, OpaqConfig};
use opaq::serve::{DatasetId, QueryEngine, QueryOutput, QueryRequest, SketchCatalog, TenantId};
use opaq::MemRunStore;
use opaq::ShardedOpaq;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OpaqConfig::builder()
        .run_length(10_000)
        .sample_size(500)
        .build()?;

    // Two tenants, each with their own dataset ingested the sharded way.
    let catalog = Arc::new(SketchCatalog::unbounded());
    let engine = QueryEngine::new(Arc::clone(&catalog));
    let acme = (TenantId::new("acme"), DatasetId::new("latencies"));
    let globex = (TenantId::new("globex"), DatasetId::new("latencies"));
    for (i, (tenant, dataset)) in [&acme, &globex].into_iter().enumerate() {
        let keys: Vec<u64> = (0..100_000u64)
            .map(|k| (k * 48_271 + i as u64 * 7_919) % 1_000_000)
            .collect();
        let store = MemRunStore::new(keys, 10_000);
        let sketch = ShardedOpaq::new(config, 4)?.build_sketch(&store)?;
        let version = catalog.publish(tenant, dataset, sketch)?;
        println!("published {tenant}/{dataset} as version {version}");
    }

    // Typed queries; each response names the version that answered it.
    let response = engine.execute(&acme.0, &acme.1, &QueryRequest::Quantile { phi: 0.99 })?;
    if let QueryOutput::Quantile(est) = &response.output {
        println!(
            "acme p99 (version {}): [{}, {}] over {} keys",
            response.version, est.lower, est.upper, response.total_elements
        );
    }

    // An in-flight reader keeps its complete snapshot across a refresh.
    let before = catalog.snapshot(&acme.0, &acme.1)?;
    let mut inc = IncrementalOpaq::new(config)?;
    inc.add_run((1_000_000..1_100_000u64).collect())?; // new, much larger keys
    catalog.publish(&acme.0, &acme.1, inc.into_sketch().expect("non-empty"))?;
    let after = catalog.snapshot(&acme.0, &acme.1)?;
    println!(
        "refresh swapped acme from version {} ({} keys) to version {} ({} keys); \
         the old snapshot still answers from its own epoch",
        before.version,
        before.sketch.total_elements(),
        after.version,
        after.sketch.total_elements()
    );
    assert_eq!(before.sketch.total_elements(), 100_000);
    assert_eq!(after.version, before.version + 1);

    // Per-tenant latency accounting comes for free.
    for _ in 0..1000 {
        engine.execute(&globex.0, &globex.1, &QueryRequest::Profile { count: 10 })?;
    }
    for (tenant, snapshot) in engine.latency_report() {
        println!(
            "{tenant}: {} queries, p50 {:?}, p99 {:?}",
            snapshot.count, snapshot.p50, snapshot.p99
        );
    }
    Ok(())
}
