//! External sorting with quantile-based partitioning — the "data can be
//! partitioned using quantiles into a number of partitions such that each
//! partition fits into main memory" use case from the paper's introduction.
//!
//! ```text
//! cargo run --release --example external_sort_partition
//! ```
//!
//! Pass 1 (OPAQ): estimate the `p`-quantiles of the file.
//! Pass 2: scatter every key into one of `p` value-range partitions.
//! Pass 3: sort each partition independently (each fits in "memory") and
//! concatenate — a classic distribution (bucket) external sort whose balance
//! is guaranteed by OPAQ's deterministic bounds.

use opaq::parallel::scatter_by_splitters;
use opaq::{DatasetSpec, MemRunStore, OpaqConfig, OpaqEstimator, RunStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 2_000_000;
    let memory_budget: usize = 300_000; // elements that fit "in memory" at once
    let data = DatasetSpec::paper_uniform(n, 99).generate();
    let store = MemRunStore::new(data.clone(), memory_budget as u64);

    // --- pass 1: quantile estimation -----------------------------------------
    let partitions_needed = (n as usize).div_ceil(memory_budget).next_power_of_two() as u64;
    let config = OpaqConfig::builder()
        .run_length(memory_budget as u64)
        .sample_size(2_000)
        .build()?;
    let sketch = OpaqEstimator::new(config).build_sketch(&store)?;
    let splitters: Vec<u64> = sketch
        .estimate_q_quantiles(partitions_needed)?
        .into_iter()
        .map(|e| e.upper)
        .collect();
    println!(
        "pass 1: {} splitters estimated from {} sample points (one pass over {} keys)",
        splitters.len(),
        sketch.len(),
        n
    );

    // --- pass 2: scatter into value-range partitions --------------------------
    let mut partitions: Vec<Vec<u64>> = vec![Vec::new(); splitters.len() + 1];
    for run_idx in 0..store.layout().runs() {
        let run = store.read_run(run_idx)?;
        for (bucket, keys) in scatter_by_splitters(&run, &splitters)
            .into_iter()
            .enumerate()
        {
            partitions[bucket].extend(keys);
        }
    }
    let largest = partitions.iter().map(Vec::len).max().unwrap_or(0);
    println!(
        "pass 2: scattered into {} partitions, largest holds {} keys (memory budget {}, slack from Lemma 2 ≤ {})",
        partitions.len(),
        largest,
        memory_budget,
        sketch.max_elements_per_bound()
    );
    assert!(
        largest as u64 <= memory_budget as u64 + sketch.max_elements_per_bound(),
        "a partition exceeded the memory budget plus the deterministic slack"
    );

    // --- pass 3: sort each partition and concatenate --------------------------
    let mut sorted = Vec::with_capacity(n as usize);
    for partition in &mut partitions {
        partition.sort_unstable();
        sorted.extend_from_slice(partition);
    }
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "concatenation must be globally sorted"
    );
    let mut expected = data;
    expected.sort_unstable();
    assert_eq!(
        sorted, expected,
        "external sort must agree with an in-memory sort"
    );
    println!(
        "pass 3: all partitions sorted independently; concatenation verified against a full sort"
    );
    Ok(())
}
