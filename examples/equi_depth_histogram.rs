//! Equi-depth histograms for selectivity estimation — the query-optimizer
//! use case that motivates the paper's introduction (`[PS84]`, `[PIHS96]`).
//!
//! ```text
//! cargo run --release --example equi_depth_histogram
//! ```
//!
//! An equi-depth histogram with `B` buckets is exactly the set of
//! `B`-quantiles: every bucket holds ~n/B tuples.  The example builds a
//! 32-bucket histogram of a skewed (Zipf 0.86) attribute in one pass, then
//! uses it to estimate the selectivity of range predicates and compares the
//! estimates with the exact answers.

use opaq::datagen::DatasetSpec;
use opaq::{GroundTruth, MemRunStore, OpaqConfig, OpaqEstimator};

/// A simple equi-depth histogram: bucket boundaries plus the per-bucket count.
struct EquiDepthHistogram {
    /// Upper bound (inclusive) of each bucket.
    boundaries: Vec<u64>,
    /// Number of tuples per bucket (~n/B by construction).
    depth: f64,
    n: u64,
}

impl EquiDepthHistogram {
    /// Estimated number of tuples with `value <= x`.
    fn estimate_rank(&self, x: u64) -> f64 {
        let bucket = self.boundaries.partition_point(|&b| b < x);
        if bucket >= self.boundaries.len() {
            return self.n as f64;
        }
        // Assume uniformity inside the bucket (the classic optimizer
        // assumption); interpolate between the bucket's bounds.
        let hi = self.boundaries[bucket] as f64;
        let lo = if bucket == 0 {
            0.0
        } else {
            self.boundaries[bucket - 1] as f64
        };
        let within = if hi > lo {
            ((x as f64 - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        bucket as f64 * self.depth + within * self.depth
    }

    /// Estimated selectivity of the predicate `lo <= value <= hi`.
    fn estimate_selectivity(&self, lo: u64, hi: u64) -> f64 {
        (self.estimate_rank(hi) - self.estimate_rank(lo)).max(0.0) / self.n as f64
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1_000_000;
    let buckets: u64 = 32;
    let spec = DatasetSpec::paper_zipf(n, 7);
    let data = spec.generate();

    // One pass over the "relation" to build the histogram boundaries.
    let store = MemRunStore::new(data.clone(), 100_000);
    let config = OpaqConfig::builder()
        .run_length(100_000)
        .sample_size(2_000)
        .build()?;
    let sketch = OpaqEstimator::new(config).build_sketch(&store)?;
    let boundaries: Vec<u64> = sketch
        .estimate_q_quantiles(buckets)?
        .into_iter()
        .map(|e| e.upper)
        .chain(std::iter::once(sketch.dataset_max()))
        .collect();
    let histogram = EquiDepthHistogram {
        boundaries,
        depth: n as f64 / buckets as f64,
        n,
    };

    // Evaluate a few range predicates against the exact selectivity.
    let truth = GroundTruth::new(&data);
    let predicates = [
        (0u64, 100u64),
        (0, 10_000),
        (10_000, 1_000_000),
        (1_000_000, 100_000_000),
        (5_000_000, 2_000_000_000),
    ];
    println!(
        "{:>24} {:>12} {:>12} {:>10}",
        "predicate", "estimated", "exact", "abs err"
    );
    for (lo, hi) in predicates {
        let est = histogram.estimate_selectivity(lo, hi);
        let exact = (truth.rank_le(hi) - truth.rank_lt(lo)) as f64 / n as f64;
        println!(
            "{:>10} ..= {:>10} {:>12.4} {:>12.4} {:>10.4}",
            lo,
            hi,
            est,
            exact,
            (est - exact).abs()
        );
    }
    println!(
        "\n32-bucket equi-depth histogram built from one pass; every boundary is within n/s = {} tuples of its exact position",
        n / 2_000
    );
    Ok(())
}
