//! Quickstart: estimate dectiles of a disk-resident dataset in one pass.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example writes a 2-million-key binary file, streams it back as runs
//! of 200k keys, builds the OPAQ sketch and prints the nine dectiles with
//! their deterministic bounds, comparing each against the exact value.

use opaq::datagen::DatasetSpec;
use opaq::storage::FileRunStoreBuilder;
use opaq::{GroundTruth, OpaqConfig, OpaqEstimator, RunStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. create a "disk-resident" dataset --------------------------------
    let n: u64 = 2_000_000;
    let run_length: u64 = 200_000;
    let spec = DatasetSpec::paper_uniform(n, 2024);
    let data = spec.generate();

    let path = std::env::temp_dir().join(format!("opaq-quickstart-{}.bin", std::process::id()));
    let store = FileRunStoreBuilder::<u64>::new(&path, run_length)?
        .append(&data)?
        .finish()?;
    println!(
        "wrote {} keys to {} ({} runs of {} keys)",
        n,
        path.display(),
        store.layout().runs(),
        run_length
    );

    // --- 2. one pass: build the sketch ---------------------------------------
    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(1_000)
        .build()?;
    let estimator = OpaqEstimator::new(config);
    let (sketch, stats) = estimator.build_sketch_with_stats(&store)?;
    println!(
        "sample phase done: {} sample points, io {:?}, sampling {:?}, merge {:?}",
        sketch.len(),
        stats.io,
        stats.sampling,
        stats.merge
    );

    // --- 3. quantile phase: dectiles with deterministic bounds --------------
    let truth = GroundTruth::new(&data);
    println!(
        "\n{:>8} {:>12} {:>12} {:>12} {:>8}",
        "phi", "lower", "exact", "upper", "ok?"
    );
    for estimate in sketch.estimate_q_quantiles(10)? {
        let exact = truth.quantile_value(estimate.phi);
        let ok = estimate.lower <= exact && exact <= estimate.upper;
        println!(
            "{:>8.1} {:>12} {:>12} {:>12} {:>8}",
            estimate.phi, estimate.lower, exact, estimate.upper, ok
        );
    }
    println!(
        "\nguarantee: at most {} elements (≤ n/s = {}) between the true quantile and either bound",
        sketch.max_elements_per_bound(),
        n / 1_000
    );

    store.remove_file()?;
    Ok(())
}
