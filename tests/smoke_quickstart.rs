//! Workspace smoke test: the `examples/quickstart.rs` flow end-to-end through
//! the `opaq` facade re-exports, scaled down to stay fast in tier-1.
//!
//! Builds a sketch over 100k reversed keys, estimates the median, and checks
//! the paper's guarantees: the true median is enclosed by the bounds and, per
//! Lemma 3, at most `2n/s` elements lie strictly between the bounds.

use opaq::{GroundTruth, MemRunStore, OpaqConfig, OpaqEstimator};

#[test]
fn quickstart_flow_estimates_median_of_reversed_keys() {
    let n: u64 = 100_000;
    let run_length: u64 = 10_000;
    let sample_size: u64 = 500;

    // 100k reversed keys 99_999, 99_998, …, 0 — the adversarial layout for a
    // one-pass algorithm, exercised entirely through facade re-exports.
    let data: Vec<u64> = (0..n).rev().collect();
    let store = MemRunStore::new(data.clone(), run_length);

    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(sample_size)
        .build()
        .expect("valid config");
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&store)
        .expect("sketch builds in one pass");
    let median = sketch.estimate(0.5).expect("median estimate");

    // Enclosure: the exact median (rank ⌈n/2⌉ = 50_000, value 49_999) is
    // inside the deterministic bounds.
    let truth = GroundTruth::new(&data);
    let exact = truth.quantile_value(0.5);
    assert_eq!(exact, 49_999);
    assert!(
        median.lower <= exact && exact <= median.upper,
        "bounds [{}, {}] miss the exact median {exact}",
        median.lower,
        median.upper
    );

    // Lemma 3: at most 2n/s elements strictly between the bounds.  The data
    // is a permutation of 0..n, so values count ranks directly.
    let lemma3_cap = 2 * n / sample_size;
    assert!(
        sketch.max_elements_between_bounds() <= lemma3_cap,
        "advertised bound {} exceeds Lemma 3 cap {lemma3_cap}",
        sketch.max_elements_between_bounds()
    );
    let strictly_between = (median.upper - median.lower).saturating_sub(1);
    assert!(
        strictly_between <= lemma3_cap,
        "{strictly_between} elements between bounds exceeds 2n/s = {lemma3_cap}"
    );
}
