//! Cross-crate integration tests: generator → storage → OPAQ → metrics,
//! sequential vs parallel vs baselines, file-backed and memory-backed.

use opaq::datagen::{DatasetSpec, Distribution};
use opaq::parallel::block_partition;
use opaq::storage::FileRunStoreBuilder;
use opaq::{
    compute_error_rates, exact_quantile, GroundTruth, MemRunStore, MergeAlgorithm, OpaqConfig,
    OpaqEstimator, ParallelOpaq, QuantileBoundsView, TheoreticalBounds,
};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "opaq-e2e-{tag}-{}-{}.bin",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

/// The full pipeline on a file-backed dataset: error rates must respect the
/// paper's closed-form bounds.
#[test]
fn file_backed_pipeline_respects_theoretical_bounds() {
    let n: u64 = 200_000;
    let m: u64 = 20_000;
    let s: u64 = 500;
    let spec = DatasetSpec::paper_uniform(n, 77);
    let data = spec.generate();

    let path = temp_path("pipeline");
    let store = FileRunStoreBuilder::<u64>::new(&path, m)
        .unwrap()
        .append(&data)
        .unwrap()
        .finish()
        .unwrap();

    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
    let estimates = sketch.estimate_q_quantiles(10).unwrap();

    let truth = GroundTruth::new(&data);
    let bounds: Vec<QuantileBoundsView> = estimates
        .iter()
        .map(|e| QuantileBoundsView {
            phi: e.phi,
            lower: e.lower,
            upper: e.upper,
        })
        .collect();
    let rates = compute_error_rates(&truth, &bounds);
    let theory = TheoreticalBounds::new(&config, n, 10);

    assert!(
        rates.rer_a_max() <= theory.rer_a_percent + 1e-9,
        "{rates:?} vs {theory:?}"
    );
    assert!(rates.rer_n <= theory.rer_n_percent + 1e-9);
    for e in &estimates {
        let exact = truth.quantile_value(e.phi);
        assert!(e.lower <= exact && exact <= e.upper);
    }
    store.remove_file().unwrap();
}

/// Sequential and parallel OPAQ over the same data and run structure must
/// produce the same sample values and equally valid bounds.
#[test]
fn parallel_agrees_with_sequential() {
    let n: u64 = 160_000;
    let p = 4usize;
    let m: u64 = 10_000;
    let s: u64 = 200;
    let data = DatasetSpec::paper_zipf(n, 5).generate();

    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s)
        .build()
        .unwrap();
    let sequential = OpaqEstimator::new(config)
        .build_sketch(&MemRunStore::new(data.clone(), m))
        .unwrap();

    for merge in [MergeAlgorithm::Bitonic, MergeAlgorithm::Sample] {
        let report = ParallelOpaq::new(config, p)
            .with_merge(merge)
            .run_on_partitions(block_partition(&data, p))
            .unwrap();
        assert_eq!(report.sketch.total_elements(), sequential.total_elements());
        assert_eq!(report.sketch.runs(), sequential.runs());
        let par: Vec<u64> = report.sketch.samples().iter().map(|sp| sp.value).collect();
        let seq: Vec<u64> = sequential.samples().iter().map(|sp| sp.value).collect();
        assert_eq!(par, seq, "{merge:?}");

        let truth = GroundTruth::new(&data);
        for e in report.sketch.estimate_q_quantiles(10).unwrap() {
            let exact = truth.quantile_value(e.phi);
            assert!(
                e.lower <= exact && exact <= e.upper,
                "{merge:?} phi {}",
                e.phi
            );
        }
    }
}

/// The exact-quantile second pass must agree with a full sort for every
/// distribution the generator can produce.
#[test]
fn exact_pass_agrees_with_full_sort_across_distributions() {
    let distributions = [
        Distribution::Uniform { domain: 1 << 20 },
        Distribution::Zipf {
            domain: 1 << 20,
            parameter: 0.86,
        },
        Distribution::Normal {
            domain: 1 << 20,
            mean: 500_000.0,
            std_dev: 100_000.0,
        },
        Distribution::Sorted,
        Distribution::ReverseSorted,
        Distribution::Constant(7),
    ];
    for distribution in distributions {
        let spec = DatasetSpec {
            n: 50_000,
            distribution,
            duplicate_fraction: 0.1,
            seed: 3,
        };
        let data = spec.generate();
        let truth = GroundTruth::new(&data);
        let store = MemRunStore::new(data, 5_000);
        let config = OpaqConfig::builder()
            .run_length(5_000)
            .sample_size(100)
            .build()
            .unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        for phi in [0.25, 0.5, 0.75, 0.99] {
            let exact = exact_quantile(&store, &sketch, phi).unwrap();
            assert_eq!(
                exact.value,
                truth.quantile_value(phi),
                "{distribution:?} phi {phi}"
            );
        }
    }
}

/// OPAQ under an equal memory budget must beat or match the baselines'
/// worst-case accuracy on skewed data (Table 7's qualitative claim).
#[test]
fn opaq_accuracy_is_competitive_with_baselines_under_equal_memory() {
    use opaq::baselines::{AdaptiveIntervalEstimator, ReservoirSampler};
    use opaq::StreamingEstimator;

    let n: u64 = 300_000;
    let memory_points = 3_000usize;
    let data = DatasetSpec::paper_zipf(n, 31).generate();
    let truth = GroundTruth::new(&data);

    // OPAQ: r = 10 runs, s = memory/10.
    let m = n / 10;
    let s = memory_points as u64 / 10;
    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&MemRunStore::new(data.clone(), m))
        .unwrap();
    let opaq_bounds: Vec<QuantileBoundsView> = sketch
        .estimate_q_quantiles(10)
        .unwrap()
        .iter()
        .map(|e| QuantileBoundsView {
            phi: e.phi,
            lower: e.lower,
            upper: e.upper,
        })
        .collect();
    let opaq_rates = compute_error_rates(&truth, &opaq_bounds);

    let mut worst_baseline = 0.0f64;
    let mut reservoir = ReservoirSampler::new(memory_points, 9);
    let mut intervals = AdaptiveIntervalEstimator::new(memory_points);
    reservoir.observe_all(&data);
    intervals.observe_all(&data);
    for estimator in [&reservoir as &dyn StreamingEstimator, &intervals] {
        let bounds: Vec<QuantileBoundsView> = (1..10)
            .map(|i| {
                let phi = i as f64 / 10.0;
                let v = estimator.estimate(phi).unwrap();
                QuantileBoundsView {
                    phi,
                    lower: v,
                    upper: v,
                }
            })
            .collect();
        worst_baseline = worst_baseline.max(compute_error_rates(&truth, &bounds).rer_n);
    }

    // Compare worst dectile *displacement* from the truth (RER_N): that is
    // the error a point estimator actually commits.  (RER_A would be
    // meaningless here — a point interval [v, v] contains ~1 element however
    // wrong v is, while OPAQ's deterministic interval must contain up to
    // 2n/s by design.)  The paper claims comparable-or-better accuracy;
    // allow a factor for sampling luck on the baselines' side.
    assert!(
        opaq_rates.rer_n <= worst_baseline * 1.5 + 0.05,
        "OPAQ displacement {} vs worst baseline displacement {}",
        opaq_rates.rer_n,
        worst_baseline
    );
    // And OPAQ must respect its deterministic cap, which the baselines do not have.
    assert!(opaq_rates.rer_a_max() <= 2.0 / s as f64 * 100.0 + 1e-9);
}

/// Incremental absorption of a second store must answer over the union.
#[test]
fn incremental_union_of_two_stores() {
    use opaq::IncrementalOpaq;

    let config = OpaqConfig::builder()
        .run_length(10_000)
        .sample_size(200)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::<u64>::new(config).unwrap();

    let old = DatasetSpec::paper_uniform(100_000, 1).generate();
    let new = DatasetSpec::paper_uniform(50_000, 2).generate();
    inc.add_store(&MemRunStore::new(old.clone(), 10_000))
        .unwrap();
    inc.add_store(&MemRunStore::new(new.clone(), 10_000))
        .unwrap();

    let mut all = old;
    all.extend(new);
    let truth = GroundTruth::new(&all);
    for i in 1..10 {
        let phi = i as f64 / 10.0;
        let est = inc.estimate(phi).unwrap();
        let exact = truth.quantile_value(phi);
        assert!(est.lower <= exact && exact <= est.upper, "phi {phi}");
    }
    assert_eq!(inc.total_elements(), 150_000);
}
