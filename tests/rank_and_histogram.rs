//! Integration tests for the §4 extensions used by the examples: rank
//! estimation, equi-depth histogram boundaries and quantile-based
//! partitioning on realistic workloads.

use opaq::parallel::{quantile_partition, scatter_by_splitters};
use opaq::{DatasetSpec, GroundTruth, MemRunStore, OpaqConfig, OpaqEstimator};

fn build(data: &[u64], m: u64, s: u64) -> opaq::QuantileSketch<u64> {
    let store = MemRunStore::new(data.to_vec(), m);
    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s)
        .build()
        .unwrap();
    OpaqEstimator::new(config).build_sketch(&store).unwrap()
}

#[test]
fn rank_bounds_enclose_exact_ranks_on_skewed_data() {
    let data = DatasetSpec::paper_zipf(100_000, 17).generate();
    let truth = GroundTruth::new(&data);
    let sketch = build(&data, 10_000, 500);
    // Probe a mix of present and absent keys across the whole domain.
    for probe in [0u64, 1, 5, 100, 1_000, 50_000, 1_000_000, u64::MAX / 2] {
        let rb = sketch.rank_bounds(probe);
        let exact = truth.rank_le(probe);
        assert!(
            rb.min_rank <= exact && exact <= rb.max_rank,
            "probe {probe}: exact rank {exact} outside [{}, {}]",
            rb.min_rank,
            rb.max_rank
        );
        // The width of the rank interval is bounded by r*(g-1).
        assert!(rb.width() <= sketch.runs() * (sketch.max_gap() - 1));
    }
}

#[test]
fn equi_depth_buckets_are_balanced_within_the_guarantee() {
    let n: u64 = 200_000;
    let buckets = 16u64;
    let data = DatasetSpec::paper_uniform(n, 23).generate();
    let sketch = build(&data, 20_000, 1_000);

    let splitters = quantile_partition(&sketch, buckets).unwrap();
    assert_eq!(splitters.len(), buckets as usize - 1);
    let scattered = scatter_by_splitters(&data, &splitters);
    assert_eq!(scattered.len(), buckets as usize);
    assert_eq!(scattered.iter().map(Vec::len).sum::<usize>(), n as usize);

    let fair = n / buckets;
    let slack = sketch.max_elements_per_bound();
    for (i, bucket) in scattered.iter().enumerate() {
        let len = bucket.len() as u64;
        assert!(
            len <= fair + 2 * slack && len + 2 * slack >= fair,
            "bucket {i} holds {len}, fair share {fair}, slack {slack}"
        );
    }
}

#[test]
fn point_estimates_are_monotone_in_phi() {
    let data = DatasetSpec::paper_uniform(150_000, 3).generate();
    let sketch = build(&data, 15_000, 750);
    let estimates = sketch.estimate_q_quantiles(100).unwrap();
    for pair in estimates.windows(2) {
        assert!(
            pair[0].lower <= pair[1].lower,
            "lower bounds must be monotone"
        );
        assert!(
            pair[0].upper <= pair[1].upper,
            "upper bounds must be monotone"
        );
    }
}

#[test]
fn sorted_sample_list_is_reusable_for_many_quantile_sets() {
    // "The same sorted sample list can potentially be used for finding other
    // quantiles" — estimating different q values must all stay correct.
    let data = DatasetSpec::paper_zipf(80_000, 8).generate();
    let truth = GroundTruth::new(&data);
    let sketch = build(&data, 8_000, 400);
    for q in [2u64, 4, 10, 25, 100] {
        for e in sketch.estimate_q_quantiles(q).unwrap() {
            let exact = truth.quantile_value(e.phi);
            assert!(e.lower <= exact && exact <= e.upper, "q={q} phi={}", e.phi);
        }
    }
}
