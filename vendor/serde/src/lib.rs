//! Hermetic stand-in for the subset of `serde` used by OPAQ.
//!
//! OPAQ derives `Serialize`/`Deserialize` on its report and config types so
//! they can be exported by downstream users, but the workspace itself never
//! serializes through serde (the on-disk formats are hand-rolled and
//! versioned).  This shim therefore provides the two marker traits and the
//! derive macros, which is enough for the derives and trait bounds to
//! compile hermetically.
//!
//! To switch to the real crate, point the `serde` entry in the root
//! `[workspace.dependencies]` at a registry version (with the `derive`
//! feature) instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

// The derives emit `impl ::serde::... for T`; inside this crate's own tests
// that absolute path must resolve back to us.
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// The shim carries no serializer plumbing; the trait exists so bounds and
/// derives compile identically to real serde.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data of
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl Serialize for std::time::Duration {}
impl<'de> Deserialize<'de> for std::time::Duration {}

#[cfg(test)]
mod tests {
    #[derive(Debug, super::Serialize, super::Deserialize)]
    struct Report {
        #[serde(skip, default)]
        hidden: u64,
        value: f64,
    }

    #[derive(Debug, super::Serialize, super::Deserialize)]
    enum Kind {
        A,
        B(u32),
    }

    #[test]
    fn derived_types_satisfy_the_bounds() {
        fn assert_serde<T: super::Serialize + for<'a> super::Deserialize<'a>>() {}
        assert_serde::<Report>();
        assert_serde::<Kind>();
        assert_serde::<Vec<Report>>();
        assert_serde::<std::time::Duration>();
        let report = Report {
            hidden: 1,
            value: 2.5,
        };
        assert_eq!((report.hidden, report.value), (1, 2.5));
        for kind in [Kind::A, Kind::B(3)] {
            match kind {
                Kind::A => {}
                Kind::B(inner) => assert_eq!(inner, 3),
            }
        }
    }
}
