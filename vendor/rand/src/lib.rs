//! Hermetic stand-in for the subset of the `rand` 0.8 API used by OPAQ.
//!
//! The workspace builds with no network access, so the real `rand` crate
//! cannot be fetched from a registry.  This shim implements exactly the
//! surface the OPAQ crates consume — [`Rng::gen_range`], [`Rng::gen`] for
//! `f64`, [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`] — on top of
//! the xoshiro256++ generator.  The streams are deterministic, which is a
//! feature here: every generator in the workspace is explicitly seeded and
//! experiment outputs are reproducible across runs and machines.
//!
//! To switch to the real crate, point the `rand` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` samples uniformly from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform value in `[0, span)` without modulo bias.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection sampling over the top multiple of `span` below 2^128; u128
    // keeps the arithmetic exact even for full-width u64/i64 spans.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if draw <= zone {
            return draw % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a 64-bit state with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn full_width_u64_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
            let _ = rng.gen_range(i64::MIN..i64::MAX);
        }
    }
}
