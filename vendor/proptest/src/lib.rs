//! Hermetic stand-in for the subset of `proptest` used by OPAQ.
//!
//! Provides the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! integer-range and `any::<T>()` strategies and `collection::vec`, running
//! each property over a deterministic, per-test seeded stream of cases.
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case number and message and panics immediately.  Streams are seeded from
//! the test's name, so failures reproduce exactly across runs and machines.
//!
//! To switch to the real crate, point the `proptest` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// Alias of [`TestCaseError::fail`], mirroring proptest's constructor.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

pub mod test_runner {
    //! The deterministic case generator driving `proptest!`.

    use super::*;

    pub use super::{TestCaseError, TestCaseResult};

    /// Deterministic RNG for one property test, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Build the generator for the test named `name`.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            Self(SmallRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one property-test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate the next value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value, biased toward boundary cases.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Generate a boundary-biased arbitrary integer: edges and small values show
/// up far more often than under a uniform draw, which is where off-by-one
/// bugs live.
macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.next_u64() % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    4 => (rng.next_u64() % 16) as $t,
                    // A draw with a random bit-width, so magnitudes spread
                    // across the whole range instead of clustering at the top.
                    5 | 6 => {
                        let shift = rng.next_u64() % 64;
                        (rng.next_u64() >> shift) as $t
                    }
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            _ => {
                // Uniform in (-2^32, 2^32): finite, spans signs and magnitudes.
                let unit = rng.0.gen::<f64>() - 0.5;
                unit * 2.0 * (1u64 << 32) as f64
            }
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::*;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_inclusive: len,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs in scope.

    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests.
///
/// Supports the `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::new_value(&($strategy), &mut rng); )+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case when an assumption does not hold.
///
/// The shim has no rejection bookkeeping; the case simply passes vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 3i32..=5, len in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
            prop_assert!((1..4).contains(&len));
        }

        #[test]
        fn vec_strategy_respects_lengths(
            v in collection::vec(any::<u64>(), 2..10),
            nested in collection::vec(collection::vec(any::<u32>(), 0..3), 1..4),
        ) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!((1..4).contains(&nested.len()));
            for inner in &nested {
                prop_assert!(inner.len() < 3);
            }
        }

        #[test]
        fn question_mark_propagates(ok in any::<bool>()) {
            fn helper(_: bool) -> TestCaseResult {
                Ok(())
            }
            helper(ok)?;
            prop_assert_eq!(1 + 1, 2);
            prop_assert_ne!(1, 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assume!(x > 10); // always discards — must not fail
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn arbitrary_integers_hit_boundaries() {
        let mut rng = TestRng::for_test("boundaries");
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..500 {
            let v = u64::arbitrary(&mut rng);
            saw_zero |= v == 0;
            saw_max |= v == u64::MAX;
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_the_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(_x in 0u64..5) {
                prop_assert!(false, "boom");
            }
        }
        always_fails();
    }
}
