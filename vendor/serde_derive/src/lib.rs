//! Derive macros for the hermetic `serde` shim.
//!
//! The shim traits are pure markers, so the derives only need to find the
//! type's name (and generics, rejected explicitly since no OPAQ type needs
//! them) and emit an empty impl.  Implemented with the bare `proc_macro`
//! API — no `syn`/`quote` — so the workspace stays dependency-free.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following `struct`/`enum`/`union`, panicking with a
/// useful message if the item has generic parameters (unsupported here).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        // Skip attributes (`#[...]`) and visibility; look for the item keyword.
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "the serde shim derive does not support generic type `{name}`; \
                                     implement the marker traits by hand"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected a type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: input is not a struct, enum or union");
}

/// Derive the `serde::Serialize` marker; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derive the `serde::Deserialize` marker; accepts (and ignores)
/// `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
