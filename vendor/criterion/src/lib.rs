//! Hermetic stand-in for the subset of `criterion` used by OPAQ.
//!
//! Implements `Criterion`, benchmark groups, `Bencher::iter`, `black_box`
//! and the `criterion_group!`/`criterion_main!` macros.  Rather than
//! criterion's statistical engine, each benchmark is warmed up once and then
//! timed over a fixed number of sampled batches; the per-iteration median is
//! printed as a single line.  That keeps `cargo bench` functional (and
//! `cargo bench --no-run` compiling) with zero external dependencies.
//!
//! To switch to the real crate, point the `criterion` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function that inhibits constant-folding of its argument.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: name,
            parameter: None,
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Run the benchmark `id` with the closure `routine`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        routine(&mut bencher);
        self.criterion
            .report(&self.name, &id.label(), bencher.median());
        self
    }

    /// Run the benchmark `id`, handing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        routine(&mut bencher, input);
        self.criterion
            .report(&self.name, &id.label(), bencher.median());
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: 10,
            measured: Vec::new(),
        };
        routine(&mut bencher);
        self.report("standalone", &id.label(), bencher.median());
        self
    }

    fn report(&mut self, group: &str, label: &str, median: Duration) {
        self.benchmarks_run += 1;
        println!("{group}/{label:<48} median {median:>12.3?}");
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            eprintln!(
                "[criterion shim] group `{}`: {} benchmarks done",
                stringify!($group),
                criterion.benchmarks_run()
            );
        }
    };
}

/// Entry point running every group listed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.sample_size(3);
        group.bench_function("sum_1000", |b| {
            b.iter(|| (0..1000u64).map(|i| i * i).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).map(|i| i * i).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, squares);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut bencher = Bencher {
            samples: 4,
            measured: Vec::new(),
        };
        bencher.iter(|| black_box(2 + 2));
        assert_eq!(bencher.measured.len(), 4);
        let _ = bencher.median();
    }
}
