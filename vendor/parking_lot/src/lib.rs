//! Hermetic stand-in for the subset of `parking_lot` used by OPAQ.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind `parking_lot`'s panic-free,
//! poison-free locking API (`lock()` returns the guard directly).  Poisoned
//! locks are recovered rather than propagated, matching `parking_lot`'s
//! semantics of not poisoning at all.
//!
//! To switch to the real crate, point the `parking_lot` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<u64> = Mutex::default();
        assert_eq!(*m.lock(), 0);
        assert!(format!("{m:?}").contains("Mutex"));
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.try_read().expect("uncontended"), 7);
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "writer blocks try_read");
            assert!(l.try_write().is_none(), "writer blocks try_write");
        }
        *l.try_write().expect("uncontended") = 8;
        assert_eq!(*l.read(), 8);
    }
}
