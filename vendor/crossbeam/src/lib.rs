//! Hermetic stand-in for the subset of `crossbeam` used by OPAQ.
//!
//! The simulated distributed-memory machine needs unbounded MPSC channels
//! and scoped threads, and the sharded ingestion path additionally needs
//! *bounded* channels for backpressure; all are delegated to `std`
//! (`std::sync::mpsc` and `std::thread::scope`) behind crossbeam's
//! signatures — in particular, `bounded()` and `unbounded()` both hand out
//! the same cloneable [`channel::Sender`] type, as the real crate does.
//!
//! To switch to the real crate, point the `crossbeam` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod channel {
    //! Multi-producer channels with crossbeam's `unbounded()` and
    //! `bounded()` constructors.

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver disconnected.
    pub use std::sync::mpsc::SendError;

    /// Error returned by [`Sender::try_send`]: the channel was full (bounded
    /// channels only) or the receiver disconnected.
    pub use std::sync::mpsc::TrySendError;

    /// The sending half of a channel (cloneable).  Wraps either an
    /// unbounded or a bounded (blocking-on-full) std sender so both
    /// constructors hand out the same type, matching crossbeam's API.
    #[derive(Debug)]
    pub struct Sender<T>(SenderKind<T>);

    #[derive(Debug)]
    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the value back if the receiving half has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx.send(value),
                SenderKind::Bounded(tx) => tx.send(value),
            }
        }

        /// Send `value` without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] if a bounded channel is at capacity,
        /// [`TrySendError::Disconnected`] if the receiver is gone (both give
        /// the value back).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                SenderKind::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), rx)
    }

    /// Create a bounded FIFO channel holding at most `cap` messages;
    /// senders block while the channel is full (`cap = 0` is a rendezvous
    /// channel, exactly as in crossbeam).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), rx)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_channel_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let sender = std::thread::spawn(move || {
                // This send must block until the consumer drains one slot.
                tx.send(3).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 1);
            sender.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            assert!(rx.recv().is_err(), "sender dropped");
        }

        #[test]
        fn senders_clone_and_report_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            tx2.send(8).unwrap();
            drop(rx);
            assert!(tx.send(9).is_err());
            let (btx, brx) = bounded::<u32>(1);
            drop(brx);
            assert!(btx.clone().send(1).is_err());
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| ...)` shape.

    use std::any::Any;

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type ThreadResult<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope in which borrowed-data threads can be spawned.
    ///
    /// `Copy` so it can be handed to spawned closures by value, matching the
    /// `|scope| ... scope.spawn(|_| ...)` call shape of crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope; the closure receives the scope
        /// again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a [`Scope`]; all spawned threads are joined before this
    /// returns.  Panics from unjoined threads propagate (so the `Err` arm is
    /// never constructed here, matching how OPAQ consumes the result).
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::thread;

    #[test]
    fn channels_and_scoped_threads_cooperate() {
        let (tx, rx) = unbounded::<u64>();
        let mut data = vec![1u64, 2, 3];
        let total = thread::scope(|scope| {
            let tx2 = tx.clone();
            let slice = &data;
            let h = scope.spawn(move |_| {
                for &v in slice {
                    tx2.send(v * 10).unwrap();
                }
                slice.len()
            });
            let n = h.join().expect("worker panicked");
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            (n, sum)
        })
        .expect("scope failed");
        assert_eq!(total, (3, 60));
        data.push(4);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
