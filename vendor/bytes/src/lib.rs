//! Hermetic stand-in for the subset of the `bytes` crate used by OPAQ.
//!
//! OPAQ's storage codec and CLI persistence only need the [`Buf`] / [`BufMut`]
//! traits over `&[u8]` and `Vec<u8>` with little-endian fixed-width accessors,
//! so that is exactly what this shim provides.
//!
//! To switch to the real crate, point the `bytes` entry in the root
//! `[workspace.dependencies]` at a registry version instead of this path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

macro_rules! get_le {
    ($(#[$doc:meta] $name:ident -> $t:ty),* $(,)?) => {$(
        #[$doc]
        #[inline]
        fn $name(&mut self) -> $t {
            const W: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; W];
            raw.copy_from_slice(&self.chunk()[..W]);
            self.advance(W);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Read access to a contiguous buffer of bytes, mirroring `bytes::Buf`.
pub trait Buf {
    /// Number of bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes from the cursor into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    get_le! {
        /// Read a little-endian `u32` and advance.
        get_u32_le -> u32,
        /// Read a little-endian `u64` and advance.
        get_u64_le -> u64,
        /// Read a little-endian `i32` and advance.
        get_i32_le -> i32,
        /// Read a little-endian `i64` and advance.
        get_i64_le -> i64,
        /// Read a little-endian `f64` and advance.
        get_f64_le -> f64,
    }

    /// Read a single byte and advance.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! put_le {
    ($(#[$doc:meta] $name:ident($t:ty)),* $(,)?) => {$(
        #[$doc]
        #[inline]
        fn $name(&mut self, value: $t) {
            self.put_slice(&value.to_le_bytes());
        }
    )*};
}

/// Append-only write access to a growable byte buffer, mirroring
/// `bytes::BufMut`.
pub trait BufMut {
    /// Append `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    put_le! {
        /// Append a little-endian `u32`.
        put_u32_le(u32),
        /// Append a little-endian `u64`.
        put_u64_le(u64),
        /// Append a little-endian `i32`.
        put_i32_le(i32),
        /// Append a little-endian `i64`.
        put_i64_le(i64),
        /// Append a little-endian `f64`.
        put_f64_le(f64),
    }

    /// Append a single byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i32_le(-7);
        buf.put_i64_le(i64::MIN);
        buf.put_f64_le(3.25);
        buf.put_slice(b"tail");

        let mut view: &[u8] = &buf;
        assert_eq!(view.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(view.get_u64_le(), u64::MAX - 1);
        assert_eq!(view.get_i32_le(), -7);
        assert_eq!(view.get_i64_le(), i64::MIN);
        assert_eq!(view.get_f64_le(), 3.25);
        assert_eq!(view.remaining(), 4);
        view.advance(1);
        assert_eq!(view.chunk(), b"ail");
    }

    #[test]
    #[should_panic]
    fn advancing_past_the_end_panics() {
        let mut view: &[u8] = b"ab";
        view.advance(3);
    }
}
