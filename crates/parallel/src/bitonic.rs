//! Bitonic merge of `p` distributed sorted lists.
//!
//! The paper's first global-merge option: "These are variations of the
//! Bitonic sort … the only difference between Bitonic sort and Bitonic merge
//! is that the initial sorting step is not required because the local lists
//! are already sorted."  We implement the classic block-bitonic network
//! (Batcher's network over processors, compare-split over whole blocks, as
//! in Kumar–Grama–Gupta–Karypis): every processor keeps its block sorted
//! ascending; a compare-split step exchanges blocks with the partner, merges
//! them, and keeps either the smallest or the largest `len` elements.
//!
//! Requires `p` to be a power of two (the paper's experiments use 1–16
//! processors, all powers of two).

use crate::machine::{Machine, ProcessorCtx};

/// A block element during the merge: a real value or the `+∞` padding that
/// equalises block sizes (compare-split is only correct for equal blocks).
///
/// The derived `Ord` places every `Value` before `Infinity`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Padded<T> {
    Value(T),
    Infinity,
}

/// Merge `p = lists.len()` locally sorted lists into a globally sorted
/// sequence, distributed across the same `p` processors (processor `i`
/// returns slot `i` of the output; the concatenation of the slots is sorted).
///
/// Each processor keeps exactly its original number of elements.  Blocks of
/// unequal length are padded to a common length with `+∞` sentinels for the
/// duration of the network (block compare-split obeys the 0-1 principle only
/// for equal blocks), then a final routing round moves every value to the
/// processor that owns its output rank.
///
/// # Panics
/// Panics if `lists.len()` is not a power of two, does not match the
/// machine's processor count, or any list is unsorted (debug builds only).
pub fn bitonic_merge<T>(machine: &Machine, lists: Vec<Vec<T>>) -> Vec<Vec<T>>
where
    T: Ord + Clone + Send + Sync,
{
    let p = machine.p();
    assert_eq!(lists.len(), p, "one list per processor is required");
    assert!(
        p.is_power_of_two(),
        "bitonic merge requires a power-of-two processor count"
    );
    debug_assert!(
        lists.iter().all(|l| l.windows(2).all(|w| w[0] <= w[1])),
        "lists must be sorted"
    );
    if p == 1 {
        return lists;
    }

    let sizes: Vec<usize> = lists.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().sum();
    let pad_len = sizes.iter().copied().max().unwrap_or(0);
    // offsets[j] = first global output rank owned by processor j.
    let offsets: Vec<usize> = sizes
        .iter()
        .scan(0usize, |acc, &s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();

    let results = machine.run::<Vec<Padded<T>>, Vec<T>, _>(|ctx| {
        let id = ctx.id();
        let mut block: Vec<Padded<T>> = lists[id].iter().cloned().map(Padded::Value).collect();
        block.resize(pad_len, Padded::Infinity);

        let stages = p.trailing_zeros();
        for k in 1..=stages {
            for j in (0..k).rev() {
                let partner = id ^ (1usize << j);
                // Ascending region if the k-th bit of id is 0.
                let ascending = id & (1usize << k) == 0;
                let keep_low = ascending == (id < partner);
                block = compare_split(ctx, block, partner, keep_low);
            }
        }

        // `block` now holds global ranks [id·pad_len, (id+1)·pad_len) of the
        // padded sorted sequence (real values occupy ranks < total).  Route
        // each value to the processor owning its output rank; sending every
        // peer a (possibly empty) segment keeps the receive order static.
        let mut outgoing: Vec<Vec<Padded<T>>> = (0..ctx.p()).map(|_| Vec::new()).collect();
        for (i, element) in block.into_iter().enumerate() {
            if let Padded::Value(value) = element {
                let rank = id * pad_len + i;
                debug_assert!(rank < total, "padding must sort after every value");
                let owner = offsets.partition_point(|&start| start <= rank) - 1;
                outgoing[owner].push(Padded::Value(value));
            }
        }
        for (dest, segment) in outgoing.into_iter().enumerate() {
            let words = segment.len() as u64;
            ctx.send(dest, words, segment);
        }
        // Sources hold increasing rank ranges, so concatenating the segments
        // in source order reassembles this processor's sorted output block.
        let mut mine: Vec<T> = Vec::with_capacity(sizes[id]);
        for src in 0..ctx.p() {
            mine.extend(ctx.recv_from(src).into_iter().filter_map(|e| match e {
                Padded::Value(v) => Some(v),
                Padded::Infinity => None,
            }));
        }
        debug_assert_eq!(mine.len(), sizes[id]);
        mine
    });
    results.into_iter().map(|(block, _)| block).collect()
}

/// One compare-split step: exchange blocks with `partner`, merge, keep either
/// the lowest or the highest `my_len` elements.
fn compare_split<T>(
    ctx: &mut ProcessorCtx<Vec<T>>,
    block: Vec<T>,
    partner: usize,
    keep_low: bool,
) -> Vec<T>
where
    T: Ord + Clone + Send,
{
    let my_len = block.len();
    ctx.send(partner, my_len as u64, block.clone());
    let theirs = ctx.recv_from(partner);
    let merged = merge_sorted(block, theirs);
    if keep_low {
        merged[..my_len].to_vec()
    } else {
        merged[merged.len() - my_len..].to_vec()
    }
}

/// Merge two sorted vectors.
fn merge_sorted<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    fn check_global_sort(p: usize, lists: Vec<Vec<u64>>) {
        let machine = Machine::new(p, CostModel::sp2());
        let mut expected: Vec<u64> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        let sizes: Vec<usize> = lists.iter().map(Vec::len).collect();
        let out = bitonic_merge(&machine, lists);
        assert_eq!(out.len(), p);
        for (i, block) in out.iter().enumerate() {
            assert_eq!(
                block.len(),
                sizes[i],
                "processor {i} keeps its element count"
            );
        }
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn merges_equal_blocks() {
        let lists: Vec<Vec<u64>> = vec![
            vec![1, 5, 9, 13],
            vec![2, 6, 10, 14],
            vec![3, 7, 11, 15],
            vec![4, 8, 12, 16],
        ];
        check_global_sort(4, lists);
    }

    #[test]
    fn merges_disjoint_ranges_already_in_place() {
        let lists: Vec<Vec<u64>> = vec![
            vec![0, 1, 2],
            vec![10, 11, 12],
            vec![20, 21, 22],
            vec![30, 31, 32],
        ];
        check_global_sort(4, lists);
    }

    #[test]
    fn merges_reverse_placed_ranges() {
        let lists: Vec<Vec<u64>> = vec![
            vec![30, 31, 32],
            vec![20, 21, 22],
            vec![10, 11, 12],
            vec![0, 1, 2],
        ];
        check_global_sort(4, lists);
    }

    #[test]
    fn merges_with_duplicates_and_unequal_sizes() {
        let lists: Vec<Vec<u64>> = vec![
            vec![5; 10],
            vec![1, 5, 5, 9],
            vec![0, 2, 4, 6, 8, 10, 12, 14],
            vec![5, 7],
        ];
        check_global_sort(4, lists);
    }

    #[test]
    fn merges_larger_pseudorandom_lists_on_8_processors() {
        let lists: Vec<Vec<u64>> = (0..8)
            .map(|pid| {
                let mut l: Vec<u64> = (0..500u64)
                    .map(|i| (i * 2654435761 + pid * 977) % 100_000)
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        check_global_sort(8, lists);
    }

    #[test]
    fn two_processors() {
        check_global_sort(2, vec![vec![4, 5, 6], vec![1, 2, 3]]);
    }

    #[test]
    fn single_processor_is_identity() {
        let machine = Machine::new(1, CostModel::sp2());
        let out = bitonic_merge(&machine, vec![vec![3u64, 4, 5]]);
        assert_eq!(out, vec![vec![3, 4, 5]]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let machine = Machine::new(3, CostModel::sp2());
        let _ = bitonic_merge(&machine, vec![vec![1u64], vec![2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "one list per processor")]
    fn wrong_list_count_panics() {
        let machine = Machine::new(2, CostModel::sp2());
        let _ = bitonic_merge(&machine, vec![vec![1u64]]);
    }
}
