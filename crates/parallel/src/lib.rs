//! Parallel OPAQ on a simulated distributed-memory machine.
//!
//! Section 3 of the paper parallelises OPAQ for coarse-grained machines
//! (their testbed is a 16-node IBM SP-2): every processor holds `n/p`
//! elements, runs the sample phase locally, and the `p` local sorted sample
//! lists are merged globally by either a **bitonic merge** or a **sample
//! merge** (the merge-only variants of bitonic sort and sample sort / PSRS).
//! The quantile phase is unchanged except that the total number of runs is
//! `r·p`.  All the sequential error lemmas carry over.
//!
//! The original hardware is simulated (see DESIGN.md §3): each "processor"
//! is an OS thread with private data, communicating exclusively through
//! explicit messages ([`machine`]); a two-level cost model
//! ([`cost_model::CostModel`], the paper's `τ`/`μ` parameters) charges every
//! message so the analytical complexities of Table 8 can be reported next to
//! the measured wall-clock times.
//!
//! Entry points: [`ParallelOpaq`] (simulated distributed-memory machine) and
//! [`ShardedOpaq`] ([`sharded`]: real multi-threaded ingestion over a
//! [`opaq_storage::RunStore`], bit-identical to the sequential fold).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bitonic;
pub mod cost_model;
pub mod machine;
pub mod parallel_opaq;
pub mod partitioner;
pub mod sample_merge;
pub mod sharded;
pub mod speedup;

pub use bitonic::bitonic_merge;
pub use cost_model::CostModel;
pub use machine::{CommStats, Machine, ProcessorCtx};
pub use parallel_opaq::{MergeAlgorithm, ParallelOpaq, ParallelRunReport, PhaseTimes};
pub use partitioner::{block_partition, quantile_partition, scatter_by_splitters};
pub use sample_merge::sample_merge;
pub use sharded::{ShardedIngestReport, ShardedOpaq};
pub use speedup::{ScalingPoint, ScalingReport};
