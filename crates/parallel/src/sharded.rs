//! Sharded multi-threaded ingestion: OPAQ's sample phase fanned out to OS
//! worker threads, with a deterministic sketch-merge tree.
//!
//! The paper's one-pass structure makes every run independent until the
//! final sample merge, which §5 exploits on the SP-2; [`ShardedOpaq`] is the
//! shared-memory version of that observation:
//!
//! ```text
//!            ┌────────────┐   bounded channels    ┌──────────┐
//! RunStore ─▶│ dispatcher │──▶ shard 0 runs ─────▶│ worker 0 │─┐
//!            │ (prefetch  │──▶ shard 1 runs ─────▶│ worker 1 │─┤  sketch
//!            │  thread)   │──▶ …                  │ …        │ ├─▶ merge
//!            └────────────┘──▶ shard S−1 runs ───▶│ worker S │─┘   tree
//!            one sequential                        IncrementalOpaq
//!            pass over disk                        per shard
//! ```
//!
//! * **One reader, many samplers.**  The dispatcher performs the single
//!   sequential pass over the store — via the storage crate's
//!   double-buffered prefetcher, so the read of run `i + 1` overlaps the
//!   fan-out of run `i` — and hands each run to the worker that owns it.
//!   Disk access stays strictly sequential (the access pattern the paper's
//!   cost model assumes) while the `O(m log s)` multi-selection work, the
//!   dominant CPU cost, runs on all shards concurrently.
//! * **Contiguous shard assignment.**  Shard `k` of `S` owns the contiguous
//!   run range `[k·r/S, (k+1)·r/S)`.  Combined with the tie-breaking rule of
//!   [`QuantileSketch::merge`] (equal values keep left-operand order), this
//!   makes the final sketch **bit-identical to the sequential
//!   [`IncrementalOpaq`] fold over the same store, for any shard count and
//!   any worker completion order**: each worker folds its runs in ascending
//!   run order, and the merge tree combines shard sketches in ascending
//!   shard order, so equal sample values are globally ordered by the run
//!   they came from — exactly as in the sequential left-to-right fold.
//! * **Bounded memory, zero steady-state allocation.**  Every run channel
//!   holds at most `prefetch_depth` runs, so a slow worker back-pressures
//!   the dispatcher instead of letting buffered runs pile up; peak memory
//!   stays at most `(S·(depth + 1) + depth + 2) · m` keys (per shard:
//!   `depth` buffered plus one being sampled; plus the prefetch pipeline's
//!   `depth + 2`) on top of the `r·s` sample points.  Those buffers
//!   *recycle*: workers return each sampled run to a shared
//!   [`BufferPool`] that the prefetching reader refills via
//!   `RunStore::read_run_into`, so after warm-up no run read allocates
//!   (watch the `buffer_allocs`/`buffer_reuses` counters in the report's
//!   [`IoStatsSnapshot`]).
//! * **Observability.**  Each worker reports an [`opaq_metrics::ShardStats`]
//!   (runs, elements, busy vs. starved wall-clock), and the report carries
//!   the store's [`IoStatsSnapshot`] delta, so "is ingest I/O-bound or
//!   CPU-bound?" is answerable per run — the multi-threaded analogue of the
//!   paper's Table 11/12 I/O-fraction breakdown.

use crossbeam::channel;
use opaq_core::{IncrementalOpaq, Key, OpaqConfig, OpaqError, OpaqResult, QuantileSketch};
use opaq_metrics::trace::{SpanTag, Stage, TraceSink};
use opaq_metrics::{render_shard_table, ShardStats};
use opaq_storage::{BufferPool, IoStatsSnapshot, RunStore, DEFAULT_PREFETCH_DEPTH};
use std::time::{Duration, Instant};

/// Multi-threaded OPAQ ingestion over any [`RunStore`].
///
/// Produces a sketch bit-identical to the sequential
/// [`IncrementalOpaq::add_store`] fold over the same store — see the module
/// docs for why — while sampling runs on `threads` OS threads.
#[derive(Debug, Clone, Copy)]
pub struct ShardedOpaq {
    config: OpaqConfig,
    threads: usize,
    prefetch_depth: usize,
}

/// What one sharded ingest did: per-shard statistics plus the phase and I/O
/// totals of the whole pass.
#[derive(Debug, Clone)]
pub struct ShardedIngestReport {
    /// Per-shard statistics, ordered by shard index.
    pub shards: Vec<ShardStats>,
    /// The store's I/O counter deltas for this ingest.
    pub io: IoStatsSnapshot,
    /// Wall-clock time of the dispatch loop (sequential read + fan-out).
    pub dispatch: Duration,
    /// Wall-clock time of the final sketch-merge tree.
    pub merge: Duration,
    /// Wall-clock time of the whole ingest.
    pub total: Duration,
}

impl ShardedIngestReport {
    /// Render the per-shard statistics as a fixed-width text table.
    pub fn render_table(&self) -> String {
        render_shard_table(&self.shards)
    }
}

/// Field-wise difference of two I/O snapshots taken around one ingest.
fn io_delta(before: IoStatsSnapshot, after: IoStatsSnapshot) -> IoStatsSnapshot {
    IoStatsSnapshot {
        bytes_read: after.bytes_read.saturating_sub(before.bytes_read),
        bytes_written: after.bytes_written.saturating_sub(before.bytes_written),
        read_calls: after.read_calls.saturating_sub(before.read_calls),
        write_calls: after.write_calls.saturating_sub(before.write_calls),
        measured: after.measured.saturating_sub(before.measured),
        modelled: after.modelled.saturating_sub(before.modelled),
        buffer_allocs: after.buffer_allocs.saturating_sub(before.buffer_allocs),
        buffer_reuses: after.buffer_reuses.saturating_sub(before.buffer_reuses),
    }
}

impl ShardedOpaq {
    /// Create a sharded ingester with `threads` worker threads.
    ///
    /// # Errors
    /// [`OpaqError::InvalidConfig`] if the configuration is invalid or
    /// `threads == 0`.
    pub fn new(config: OpaqConfig, threads: usize) -> OpaqResult<Self> {
        config.validate()?;
        if threads == 0 {
            return Err(OpaqError::InvalidConfig(
                "at least one ingestion thread is required".into(),
            ));
        }
        Ok(Self {
            config,
            threads,
            prefetch_depth: DEFAULT_PREFETCH_DEPTH,
        })
    }

    /// Override the read-ahead / per-shard channel depth (clamped to ≥ 1,
    /// default [`DEFAULT_PREFETCH_DEPTH`]).  Larger depths smooth out uneven
    /// run processing times at the cost of `depth · m` extra buffered keys
    /// per shard.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &OpaqConfig {
        &self.config
    }

    /// The configured worker thread count (the effective shard count is
    /// capped at the store's run count).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ingest every run of `store` and return the sketch.
    ///
    /// # Errors
    /// [`OpaqError::EmptyDataset`] for an empty store; storage errors from
    /// the sequential read pass are propagated.
    pub fn build_sketch<K, S>(&self, store: &S) -> OpaqResult<QuantileSketch<K>>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_sketch_with_report(store).map(|(s, _)| s)
    }

    /// Like [`Self::build_sketch`], also returning the per-shard report.
    pub fn build_sketch_with_report<K, S>(
        &self,
        store: &S,
    ) -> OpaqResult<(QuantileSketch<K>, ShardedIngestReport)>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_inner(store, None)
    }

    /// Like [`Self::build_sketch_with_report`], additionally recording
    /// ingest-side trace spans into `sink`: one [`Stage::Ingest`] span per
    /// shard worker (covering the worker's whole lifetime, so starvation is
    /// visible as span length vs. busy time in the report) and one
    /// [`Stage::Merge`] span for the final merge tree, all parented under
    /// `parent` (typically the refresh job's root span).
    pub fn build_sketch_traced<K, S>(
        &self,
        store: &S,
        sink: &TraceSink,
        parent: u32,
    ) -> OpaqResult<(QuantileSketch<K>, ShardedIngestReport)>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_inner(store, Some((sink, parent)))
    }

    fn build_inner<K, S>(
        &self,
        store: &S,
        trace: Option<(&TraceSink, u32)>,
    ) -> OpaqResult<(QuantileSketch<K>, ShardedIngestReport)>
    where
        K: Key,
        S: RunStore<K>,
    {
        if store.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let runs = store.layout().runs();
        let shards = self.threads.min(runs as usize).max(1);
        // Contiguous balanced blocks: shard k owns [starts[k], starts[k+1]).
        let starts: Vec<u64> = (0..=shards)
            .map(|k| (k as u64 * runs) / shards as u64)
            .collect();

        let io_before = store.io_stats().snapshot();
        let total_start = Instant::now();

        type WorkerResult<K> = OpaqResult<(Option<QuantileSketch<K>>, ShardStats)>;

        // One buffer pool shared by the prefetching reader and every worker:
        // a worker finishes sampling a run and parks the buffer for the
        // reader to refill, so steady state recycles ~`shards·(depth+1)`
        // buffers instead of allocating one per run.
        let pool = BufferPool::<K>::new();

        let scope_result: OpaqResult<(QuantileSketch<K>, Vec<ShardStats>, Duration, Duration)> =
            crossbeam::thread::scope(|scope| {
                let (result_tx, result_rx) = channel::unbounded::<(usize, WorkerResult<K>)>();
                let mut run_txs: Vec<channel::Sender<Vec<K>>> = Vec::with_capacity(shards);
                for shard in 0..shards {
                    let (run_tx, run_rx) = channel::bounded::<Vec<K>>(self.prefetch_depth);
                    run_txs.push(run_tx);
                    let result_tx = result_tx.clone();
                    let config = self.config;
                    let pool = &pool;
                    scope.spawn(move |_| {
                        // One Ingest span per shard worker, spanning its
                        // whole lifetime (recv waits included).
                        let span = trace.map(|(sink, _)| (sink.allocate(), sink.now_nanos()));
                        let finish = |tag: SpanTag| {
                            if let (Some((sink, parent)), Some((id, start))) = (trace, span) {
                                sink.complete(id, parent, Stage::Ingest, tag, start);
                            }
                        };
                        let mut inc = match IncrementalOpaq::<K>::new(config) {
                            Ok(inc) => inc,
                            Err(e) => {
                                let _ = result_tx.send((shard, Err(e)));
                                finish(SpanTag::Error);
                                return;
                            }
                        };
                        let mut busy = Duration::ZERO;
                        let mut starved = Duration::ZERO;
                        loop {
                            let wait_start = Instant::now();
                            // Channel closed = all of this shard's runs seen.
                            let Ok(mut run) = run_rx.recv() else { break };
                            starved += wait_start.elapsed();
                            let work_start = Instant::now();
                            let absorbed = inc.add_run_slice(&mut run);
                            pool.put(run);
                            if let Err(e) = absorbed {
                                let _ = result_tx.send((shard, Err(e)));
                                finish(SpanTag::Error);
                                return;
                            }
                            busy += work_start.elapsed();
                        }
                        let stats = ShardStats {
                            shard,
                            runs: inc.runs_absorbed(),
                            elements: inc.total_elements(),
                            sample_points: inc.sketch().map_or(0, QuantileSketch::len),
                            busy,
                            starved,
                        };
                        let _ = result_tx.send((shard, Ok((inc.into_sketch(), stats))));
                        finish(SpanTag::Untagged);
                    });
                }
                drop(result_tx);

                // The dispatcher runs on this thread: one sequential,
                // prefetched pass over the store, fanning each run out to
                // its owning shard.  A send only fails if the worker died
                // (which parks an error on the results channel), so errors
                // are picked up below rather than here.
                let dispatch_start = Instant::now();
                let mut current = 0usize;
                let dispatched = opaq_storage::for_each_run_prefetched_pooled(
                    store,
                    self.prefetch_depth,
                    &pool,
                    |run, data| {
                        while current + 1 < shards && run >= starts[current + 1] {
                            current += 1;
                        }
                        let _ = run_txs[current].send(data);
                    },
                );
                drop(run_txs);
                let dispatch = dispatch_start.elapsed();

                let mut sketches: Vec<Option<QuantileSketch<K>>> =
                    (0..shards).map(|_| None).collect();
                let mut stats: Vec<Option<ShardStats>> = (0..shards).map(|_| None).collect();
                let mut first_error: Option<OpaqError> = None;
                for (shard, result) in result_rx {
                    match result {
                        Ok((sketch, stat)) => {
                            sketches[shard] = sketch;
                            stats[shard] = Some(stat);
                        }
                        Err(e) => {
                            let _ = first_error.get_or_insert(e);
                        }
                    }
                }
                dispatched?;
                if let Some(e) = first_error {
                    return Err(e);
                }

                // Deterministic merge tree: adjacent pairs, ascending shard
                // index, repeated until one sketch remains.  Any
                // order-respecting tree yields the same sketch; pairing
                // halves the depth compared to a left fold.
                let merge_start = Instant::now();
                let merge_span_start = trace.map(|(sink, _)| sink.now_nanos());
                let mut level: Vec<QuantileSketch<K>> = sketches.into_iter().flatten().collect();
                if level.is_empty() {
                    return Err(OpaqError::EmptyDataset);
                }
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    let mut pairs = level.into_iter();
                    while let Some(left) = pairs.next() {
                        match pairs.next() {
                            Some(right) => next.push(left.merge(&right)?),
                            None => next.push(left),
                        }
                    }
                    level = next;
                }
                let sketch = level.pop().expect("one sketch remains");
                let merge = merge_start.elapsed();
                if let (Some((sink, parent)), Some(start)) = (trace, merge_span_start) {
                    sink.child(parent, Stage::Merge, SpanTag::Untagged, start);
                }
                let shard_stats = stats.into_iter().flatten().collect();
                Ok((sketch, shard_stats, dispatch, merge))
            })
            .expect("sharded ingest scope does not panic");

        let (sketch, shards, dispatch, merge) = scope_result?;
        let report = ShardedIngestReport {
            shards,
            io: io_delta(io_before, store.io_stats().snapshot()),
            dispatch,
            merge,
            total: total_start.elapsed(),
        };
        Ok((sketch, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_storage::{FileRunStoreBuilder, MemRunStore};

    fn config(m: u64, s: u64) -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap()
    }

    fn sequential(store: &MemRunStore<u64>, cfg: OpaqConfig) -> QuantileSketch<u64> {
        let mut inc = IncrementalOpaq::new(cfg).unwrap();
        inc.add_store(store).unwrap();
        inc.into_sketch().unwrap()
    }

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let data: Vec<u64> = (0..30_000).map(|i| (i * 2654435761) % 10_007).collect();
        let cfg = config(1000, 100);
        let store = MemRunStore::new(data, 1000);
        let reference = sequential(&store, cfg);
        for threads in 1..=8 {
            let sharded = ShardedOpaq::new(cfg, threads)
                .unwrap()
                .build_sketch(&store)
                .unwrap();
            assert_eq!(sharded, reference, "threads {threads}");
        }
    }

    #[test]
    fn matches_sequential_on_file_store_with_tail_run() {
        let mut path = std::env::temp_dir();
        path.push(format!("opaq-sharded-test-{}.bin", std::process::id()));
        let data: Vec<u64> = (0..12_345).rev().collect();
        let file = FileRunStoreBuilder::<u64>::new(&path, 1000)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        let mem = MemRunStore::new(data, 1000);
        let cfg = config(1000, 64);
        let reference = sequential(&mem, cfg);
        let (sharded, report) = ShardedOpaq::new(cfg, 4)
            .unwrap()
            .build_sketch_with_report(&file)
            .unwrap();
        assert_eq!(sharded, reference);
        // 13 runs over 4 shards; the report accounts for every run and byte.
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards.iter().map(|s| s.runs).sum::<u64>(), 13);
        assert_eq!(
            report.shards.iter().map(|s| s.elements).sum::<u64>(),
            12_345
        );
        assert_eq!(report.io.bytes_read, 12_345 * 8);
        assert_eq!(report.io.read_calls, 13);
        assert!(report.render_table().contains("4 shards"));
        file.remove_file().unwrap();
    }

    #[test]
    fn more_threads_than_runs_caps_shard_count() {
        let store = MemRunStore::new((0u64..3000).collect(), 1000);
        let cfg = config(1000, 100);
        let (sketch, report) = ShardedOpaq::new(cfg, 8)
            .unwrap()
            .build_sketch_with_report(&store)
            .unwrap();
        assert_eq!(report.shards.len(), 3, "shards capped at the run count");
        assert_eq!(sketch, sequential(&store, cfg));
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let store = MemRunStore::new((0u64..5000).collect(), 500);
        let cfg = config(500, 50);
        let sketch = ShardedOpaq::new(cfg, 1)
            .unwrap()
            .build_sketch(&store)
            .unwrap();
        assert_eq!(sketch, sequential(&store, cfg));
    }

    #[test]
    fn estimates_from_sharded_sketch_enclose_truth() {
        let data: Vec<u64> = (0..20_000).map(|i| (i * 48271) % 65_537).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let store = MemRunStore::new(data, 2000);
        let sketch = ShardedOpaq::new(config(2000, 200), 5)
            .unwrap()
            .build_sketch(&store)
            .unwrap();
        for i in 1..10u64 {
            let est = sketch.estimate(i as f64 / 10.0).unwrap();
            let truth = sorted[(est.target_rank - 1) as usize];
            assert!(est.lower <= truth && truth <= est.upper);
        }
    }

    #[test]
    fn run_buffers_recycle_across_the_ingest() {
        // 40 runs over 4 shards with depth 2: at most
        // shards·(depth+1) + depth + 2 = 16 buffers can be in flight before
        // recycling kicks in, so most of the 40 reads must be reuses.
        let data: Vec<u64> = (0..40_000).map(|i| (i * 48271) % 9973).collect();
        let store = MemRunStore::new(data, 1000);
        let cfg = config(1000, 100);
        let (_, report) = ShardedOpaq::new(cfg, 4)
            .unwrap()
            .build_sketch_with_report(&store)
            .unwrap();
        assert_eq!(report.io.buffer_allocs + report.io.buffer_reuses, 40);
        assert!(
            report.io.buffer_allocs <= 16,
            "allocs: {}",
            report.io.buffer_allocs
        );
    }

    #[test]
    fn traced_build_records_ingest_and_merge_spans() {
        use opaq_metrics::trace::{SpanRecorder, TraceId, ROOT_SPAN_ID};
        let store = MemRunStore::new((0u64..10_000).collect(), 1000);
        let cfg = config(1000, 100);
        let recorder = std::sync::Arc::new(SpanRecorder::new(64));
        let sink = TraceSink::new(std::sync::Arc::clone(&recorder), TraceId::mint());
        let (sketch, report) = ShardedOpaq::new(cfg, 4)
            .unwrap()
            .build_sketch_traced(&store, &sink, ROOT_SPAN_ID)
            .unwrap();
        assert_eq!(sketch, sequential(&store, cfg));
        let spans = recorder.trace(sink.trace());
        let ingest = spans.iter().filter(|s| s.stage == Stage::Ingest).count();
        assert_eq!(ingest, report.shards.len(), "one ingest span per shard");
        assert_eq!(spans.iter().filter(|s| s.stage == Stage::Merge).count(), 1);
        assert!(spans.iter().all(|s| s.parent == ROOT_SPAN_ID));
        assert!(spans.iter().all(|s| s.tag == SpanTag::Untagged));
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(matches!(
            ShardedOpaq::new(config(100, 10), 0),
            Err(OpaqError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_store_errors() {
        let store = MemRunStore::<u64>::new(vec![], 10);
        let sharded = ShardedOpaq::new(config(100, 10), 4).unwrap();
        assert!(matches!(
            sharded.build_sketch(&store),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn prefetch_depth_is_clamped_and_preserves_identity() {
        let store = MemRunStore::new((0u64..9000).collect(), 900);
        let cfg = config(900, 90);
        let reference = sequential(&store, cfg);
        for depth in [0, 1, 7] {
            let sketch = ShardedOpaq::new(cfg, 3)
                .unwrap()
                .with_prefetch_depth(depth)
                .build_sketch(&store)
                .unwrap();
            assert_eq!(sketch, reference, "depth {depth}");
        }
    }
}
