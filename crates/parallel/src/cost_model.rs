//! The paper's two-level machine model.
//!
//! "The two-level model assumes a fixed cost for an off-processor access
//! independent of the distance between the communicating processors.  A unit
//! computation local to a processor has a cost of δ.  Communication between
//! processors has a start-up overhead of τ, while the data transfer rate is
//! 1/μ."  The model lets us report *modelled* communication and computation
//! times for the merge algorithms (Table 8) alongside measured wall-clock.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Two-level cost model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one unit of local computation (the paper's δ), in seconds.
    pub delta: f64,
    /// Start-up overhead of one message (the paper's τ), in seconds.
    pub tau: f64,
    /// Per-word transfer time (the paper's μ), in seconds.
    pub mu: f64,
}

impl CostModel {
    /// Parameters loosely calibrated to the IBM SP-2's switch: ~40 µs message
    /// latency, ~35 MB/s per-link bandwidth (≈ 0.11 µs per 4-byte word), and
    /// a ~10 ns unit computation (RS/6000-390 class core).
    pub fn sp2() -> Self {
        Self {
            delta: 10e-9,
            tau: 40e-6,
            mu: 0.11e-6,
        }
    }

    /// Modelled cost of sending one message of `words` words.
    pub fn message(&self, words: u64) -> Duration {
        Duration::from_secs_f64(self.tau + self.mu * words as f64)
    }

    /// Modelled cost of `units` units of local computation.
    pub fn compute(&self, units: u64) -> Duration {
        Duration::from_secs_f64(self.delta * units as f64)
    }

    /// Analytical cost of the **bitonic merge** of `p` lists of `x` elements
    /// each (Table 8): `O(δ·x·(1+log p)·log p + (1+log p)·log p·(τ + μ·x))`.
    pub fn bitonic_merge_cost(&self, p: u64, x: u64) -> Duration {
        if p <= 1 {
            return Duration::ZERO;
        }
        let logp = (p as f64).log2();
        let stages = (1.0 + logp) * logp;
        Duration::from_secs_f64(
            self.delta * (x as f64) * stages + stages * (self.tau + self.mu * x as f64),
        )
    }

    /// Analytical cost of the **sample merge** of `p` lists of `x` elements
    /// each with a secondary sample of `s2` pivot candidates per processor
    /// (Table 8): `O(δ·(s2 + (p−1)·log x + x·log p) + (1+log p)·log p·(τ + μ·s2)
    /// + 2·(τ·p + μ·x))` with the bucket-expansion factor folded into `x`.
    pub fn sample_merge_cost(&self, p: u64, x: u64, s2: u64) -> Duration {
        if p <= 1 {
            return Duration::ZERO;
        }
        let logp = (p as f64).log2();
        let logx = (x.max(2) as f64).log2();
        let compute = self.delta * (s2 as f64 + (p as f64 - 1.0) * logx + x as f64 * logp);
        let gather = (1.0 + logp) * logp * (self.tau + self.mu * s2 as f64);
        let exchange = 2.0 * (self.tau * p as f64 + self.mu * x as f64);
        Duration::from_secs_f64(compute + gather + exchange)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_words() {
        let m = CostModel {
            delta: 0.0,
            tau: 1.0,
            mu: 0.5,
        };
        assert_eq!(m.message(0), Duration::from_secs_f64(1.0));
        assert_eq!(m.message(4), Duration::from_secs_f64(3.0));
    }

    #[test]
    fn compute_cost_scales_linearly() {
        let m = CostModel {
            delta: 2e-9,
            tau: 0.0,
            mu: 0.0,
        };
        assert_eq!(m.compute(1_000_000), Duration::from_secs_f64(2e-3));
    }

    #[test]
    fn single_processor_merges_are_free() {
        let m = CostModel::sp2();
        assert_eq!(m.bitonic_merge_cost(1, 1000), Duration::ZERO);
        assert_eq!(m.sample_merge_cost(1, 1000, 64), Duration::ZERO);
    }

    #[test]
    fn bitonic_wins_for_small_lists_sample_wins_for_large() {
        // The paper: "We expect the Bitonic merge to have better performance
        // for small data sets and small number of processors.  In other cases
        // the sample merge should perform better."
        let m = CostModel::sp2();
        let p = 8;
        let small = 128u64;
        let large = 1 << 20;
        assert!(m.bitonic_merge_cost(p, small) < m.sample_merge_cost(p, small, 64));
        assert!(m.bitonic_merge_cost(p, large) > m.sample_merge_cost(p, large, 64));
    }

    #[test]
    fn costs_grow_with_p_and_x() {
        let m = CostModel::sp2();
        assert!(m.bitonic_merge_cost(16, 1000) > m.bitonic_merge_cost(4, 1000));
        assert!(m.sample_merge_cost(8, 10_000, 64) > m.sample_merge_cost(8, 1000, 64));
    }

    #[test]
    fn default_is_sp2() {
        assert_eq!(CostModel::default(), CostModel::sp2());
    }
}
