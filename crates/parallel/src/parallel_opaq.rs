//! The parallel OPAQ driver (§3).
//!
//! Every processor holds `n/p` elements (one [`RunStore`] per processor),
//! runs the sequential sample phase locally, and the `p` local sorted sample
//! lists are merged globally with either the bitonic merge or the sample
//! merge.  The quantile phase then runs on the merged sketch, whose run count
//! is `r·p` — which is exactly what makes Lemmas 1–3 carry over unchanged.
//!
//! Besides the merged [`QuantileSketch`], a run produces a
//! [`ParallelRunReport`] with *measured* wall-clock phase times and
//! *modelled* phase times under the SP-2-like cost models, which the
//! Table 11/12 and Figure 4–6 experiments consume.

use crate::bitonic::bitonic_merge;
use crate::cost_model::CostModel;
use crate::machine::Machine;
use crate::sample_merge::sample_merge;
use opaq_core::{
    sample_run, Key, OpaqConfig, OpaqError, OpaqResult, QuantileSketch, RunSample, SamplePoint,
};
use opaq_storage::{DiskModel, FixedWidthCodec, MemRunStore, RunStore};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which global merge algorithm to use (paper §3, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MergeAlgorithm {
    /// Block-bitonic merge: better for small lists / few processors.
    Bitonic,
    /// PSRS-style sample merge: better for large lists / many processors.
    #[default]
    Sample,
}

/// Durations of the four phases the paper reports (Table 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Reading runs from disk.
    pub io: Duration,
    /// Extracting the regular samples from every run.
    pub sampling: Duration,
    /// Merging the per-run sample lists into the local sorted sample list.
    pub local_merge: Duration,
    /// The global merge of the `p` local sample lists.
    pub global_merge: Duration,
}

impl PhaseTimes {
    /// Total across the four phases.
    pub fn total(&self) -> Duration {
        self.io + self.sampling + self.local_merge + self.global_merge
    }

    /// Fraction of the total spent in I/O (Table 11's metric).
    pub fn io_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.io.as_secs_f64() / total
        }
    }

    /// `(io, sampling, local merge, global merge)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.io.as_secs_f64() / total,
            self.sampling.as_secs_f64() / total,
            self.local_merge.as_secs_f64() / total,
            self.global_merge.as_secs_f64() / total,
        )
    }

    fn max_elementwise(a: PhaseTimes, b: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            io: a.io.max(b.io),
            sampling: a.sampling.max(b.sampling),
            local_merge: a.local_merge.max(b.local_merge),
            global_merge: a.global_merge.max(b.global_merge),
        }
    }
}

/// Everything a parallel OPAQ run produces.
#[derive(Debug, Clone)]
pub struct ParallelRunReport<K> {
    /// The globally merged sketch (quantile phase runs on this).
    pub sketch: QuantileSketch<K>,
    /// Measured wall-clock phase times (max over processors per phase).
    pub measured: PhaseTimes,
    /// Modelled phase times under the SP-2-like disk and communication
    /// models (max over processors per phase) — what Tables 11/12 and the
    /// scalability figures report.
    pub modelled: PhaseTimes,
    /// Modelled communication time charged by the global merge.
    pub modelled_comm: Duration,
    /// Number of processors used.
    pub processors: usize,
}

/// The parallel OPAQ estimator.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOpaq {
    config: OpaqConfig,
    processors: usize,
    merge: MergeAlgorithm,
    cost: CostModel,
    disk: DiskModel,
}

impl ParallelOpaq {
    /// Create a parallel estimator over `processors` simulated processors.
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    pub fn new(config: OpaqConfig, processors: usize) -> Self {
        assert!(processors > 0, "at least one processor is required");
        Self {
            config,
            processors,
            merge: MergeAlgorithm::default(),
            cost: CostModel::sp2(),
            disk: DiskModel::sp2_node_disk(),
        }
    }

    /// Select the global merge algorithm.
    pub fn with_merge(mut self, merge: MergeAlgorithm) -> Self {
        self.merge = merge;
        self
    }

    /// Override the communication cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the disk model used for modelled I/O time.
    pub fn with_disk_model(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// The number of processors.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The configuration in use.
    pub fn config(&self) -> &OpaqConfig {
        &self.config
    }

    /// Run parallel OPAQ, processor `i` reading its data from `stores[i]`.
    ///
    /// # Errors
    /// Fails if the number of stores does not match the processor count, if
    /// any store is empty, or if the configuration is invalid.
    pub fn run_on_stores<K, S>(&self, stores: &[S]) -> OpaqResult<ParallelRunReport<K>>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.config.validate()?;
        if stores.len() != self.processors {
            return Err(OpaqError::InvalidConfig(format!(
                "{} stores supplied for {} processors",
                stores.len(),
                self.processors
            )));
        }
        if stores.iter().any(|s| s.is_empty()) {
            return Err(OpaqError::EmptyDataset);
        }
        if self.merge == MergeAlgorithm::Bitonic && !self.processors.is_power_of_two() {
            return Err(OpaqError::InvalidConfig(
                "the bitonic merge requires a power-of-two processor count".into(),
            ));
        }

        // ---- local phases: one thread per processor -------------------------
        type LocalOutcome<K> = OpaqResult<(LocalResult<K>, PhaseTimes, PhaseTimes)>;
        let locals: Vec<LocalOutcome<K>> = std::thread::scope(|scope| {
            let handles: Vec<_> = stores
                .iter()
                .map(|store| scope.spawn(move || self.local_phases(store)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("local phase thread panicked"))
                .collect()
        });
        let mut local_results = Vec::with_capacity(self.processors);
        let mut measured = PhaseTimes::default();
        let mut modelled = PhaseTimes::default();
        for outcome in locals {
            let (local, meas, model) = outcome?;
            measured = PhaseTimes::max_elementwise(measured, meas);
            modelled = PhaseTimes::max_elementwise(modelled, model);
            local_results.push(local);
        }

        // ---- global merge of the p local sample lists -----------------------
        let machine = Machine::new(self.processors, self.cost);
        let lists: Vec<Vec<SamplePoint<K>>> =
            local_results.iter().map(|l| l.samples.clone()).collect();
        let per_proc_list: u64 = lists.iter().map(|l| l.len() as u64).max().unwrap_or(0);
        let keyed: Vec<Vec<KeyedPoint<K>>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(KeyedPoint).collect())
            .collect();

        let global_start = Instant::now();
        let (merged_blocks, modelled_comm) = match self.merge {
            MergeAlgorithm::Bitonic => {
                let out = bitonic_merge(&machine, keyed);
                (
                    out,
                    self.cost
                        .bitonic_merge_cost(self.processors as u64, per_proc_list),
                )
            }
            MergeAlgorithm::Sample => {
                let out = sample_merge(&machine, keyed);
                (
                    out,
                    self.cost.sample_merge_cost(
                        self.processors as u64,
                        per_proc_list,
                        (self.processors * self.processors) as u64,
                    ),
                )
            }
        };
        measured.global_merge = global_start.elapsed();
        modelled.global_merge = modelled_comm;

        // ---- assemble the global sketch --------------------------------------
        let samples: Vec<SamplePoint<K>> = merged_blocks
            .into_iter()
            .flatten()
            .map(|KeyedPoint(sp)| sp)
            .collect();
        let total_elements: u64 = local_results.iter().map(|l| l.total_elements).sum();
        let runs: u64 = local_results.iter().map(|l| l.runs).sum();
        let max_gap = local_results.iter().map(|l| l.max_gap).max().unwrap_or(1);
        let dataset_min = local_results
            .iter()
            .map(|l| l.min)
            .min()
            .expect("at least one processor");
        let dataset_max = local_results
            .iter()
            .map(|l| l.max)
            .max()
            .expect("at least one processor");
        let sketch = QuantileSketch::assemble(
            samples,
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
        )?;

        Ok(ParallelRunReport {
            sketch,
            measured,
            modelled,
            modelled_comm,
            processors: self.processors,
        })
    }

    /// Convenience wrapper: partition in-memory data across processors (block
    /// partitioning) and run on memory-backed stores.
    pub fn run_on_partitions<K>(&self, partitions: Vec<Vec<K>>) -> OpaqResult<ParallelRunReport<K>>
    where
        K: Key + FixedWidthCodec,
    {
        let stores: Vec<MemRunStore<K>> = partitions
            .into_iter()
            .map(|part| MemRunStore::new(part, self.config.run_length).with_disk_model(self.disk))
            .collect();
        self.run_on_stores(&stores)
    }

    /// Local phases of one processor: read runs, sample them, merge the
    /// per-run sample lists into the local sorted sample list.
    fn local_phases<K, S>(&self, store: &S) -> OpaqResult<(LocalResult<K>, PhaseTimes, PhaseTimes)>
    where
        K: Key,
        S: RunStore<K>,
    {
        let layout = store.layout();
        let mut run_samples: Vec<RunSample<K>> = Vec::with_capacity(layout.runs() as usize);
        let mut measured = PhaseTimes::default();
        let mut modelled = PhaseTimes::default();
        let s = self.config.sample_size;
        let log_s = (s.max(2) as f64).log2();

        // One recycled run buffer per simulated processor (see the
        // sample-phase buffer-reuse contract).
        let mut run_buf: Vec<K> = Vec::new();
        for run_idx in 0..layout.runs() {
            let io_start = Instant::now();
            store.read_run_into(run_idx, &mut run_buf)?;
            measured.io += io_start.elapsed();
            modelled.io += self.disk.transfer_time(run_buf.len() as u64 * 8);

            let sample_start = Instant::now();
            let rs = sample_run(&mut run_buf, s, self.config.strategy)?;
            measured.sampling += sample_start.elapsed();
            modelled.sampling += self.cost.compute((run_buf.len() as f64 * log_s) as u64);
            run_samples.push(rs);
        }

        let r = run_samples.len() as u64;
        let merge_start = Instant::now();
        let local_sketch = QuantileSketch::from_run_samples(run_samples)?;
        measured.local_merge = merge_start.elapsed();
        modelled.local_merge = self
            .cost
            .compute((r as f64 * s as f64 * (r.max(2) as f64).log2()) as u64);

        Ok((
            LocalResult {
                samples: local_sketch.samples().to_vec(),
                total_elements: local_sketch.total_elements(),
                runs: local_sketch.runs(),
                max_gap: local_sketch.max_gap(),
                min: local_sketch.dataset_min(),
                max: local_sketch.dataset_max(),
            },
            measured,
            modelled,
        ))
    }
}

/// The outcome of one processor's local phases.
struct LocalResult<K> {
    samples: Vec<SamplePoint<K>>,
    total_elements: u64,
    runs: u64,
    max_gap: u64,
    min: K,
    max: K,
}

/// Wrapper giving [`SamplePoint`] a total order on its value so the generic
/// merge algorithms can move whole sample points around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KeyedPoint<K>(SamplePoint<K>);

impl<K: Ord> PartialOrd for KeyedPoint<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for KeyedPoint<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .value
            .cmp(&other.0.value)
            .then(self.0.gap.cmp(&other.0.gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::OpaqConfig;

    fn config(m: u64, s: u64) -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap()
    }

    fn partitioned_data(n: u64, p: usize) -> (Vec<u64>, Vec<Vec<u64>>) {
        let data: Vec<u64> = (0..n)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_003)
            .collect();
        let per = n as usize / p;
        let parts = data.chunks(per).take(p).map(|c| c.to_vec()).collect();
        (data, parts)
    }

    fn check_dectiles(data: &[u64], report: &ParallelRunReport<u64>) {
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        for i in 1..10 {
            let phi = i as f64 / 10.0;
            let est = report.sketch.estimate(phi).unwrap();
            let truth = sorted[(est.target_rank - 1) as usize];
            assert!(est.lower <= truth && truth <= est.upper, "phi {phi}");
        }
    }

    #[test]
    fn parallel_bounds_enclose_truth_with_sample_merge() {
        let (data, parts) = partitioned_data(40_000, 4);
        let popaq = ParallelOpaq::new(config(1000, 100), 4).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(parts).unwrap();
        assert_eq!(report.sketch.total_elements(), 40_000);
        assert_eq!(report.sketch.runs(), 40);
        assert_eq!(report.processors, 4);
        check_dectiles(&data, &report);
    }

    #[test]
    fn parallel_bounds_enclose_truth_with_bitonic_merge() {
        let (data, parts) = partitioned_data(32_000, 8);
        let popaq = ParallelOpaq::new(config(1000, 100), 8).with_merge(MergeAlgorithm::Bitonic);
        let report = popaq.run_on_partitions(parts).unwrap();
        check_dectiles(&data, &report);
    }

    #[test]
    fn parallel_matches_sequential_sketch_counts() {
        let (data, parts) = partitioned_data(20_000, 4);
        let cfg = config(500, 50);
        let popaq = ParallelOpaq::new(cfg, 4);
        let report = popaq.run_on_partitions(parts).unwrap();

        let store = MemRunStore::new(data, 500);
        let sequential = opaq_core::OpaqEstimator::new(cfg)
            .build_sketch(&store)
            .unwrap();
        assert_eq!(report.sketch.total_elements(), sequential.total_elements());
        assert_eq!(report.sketch.runs(), sequential.runs());
        assert_eq!(report.sketch.len(), sequential.len());
        // Identical data split identically -> identical sample values.
        let a: Vec<u64> = report.sketch.samples().iter().map(|s| s.value).collect();
        let b: Vec<u64> = sequential.samples().iter().map(|s| s.value).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn phase_times_are_populated() {
        let (_, parts) = partitioned_data(16_000, 2);
        let popaq = ParallelOpaq::new(config(1000, 100), 2);
        let report = popaq.run_on_partitions(parts).unwrap();
        assert!(report.modelled.io > Duration::ZERO);
        assert!(report.modelled.sampling > Duration::ZERO);
        assert!(report.modelled.total() > report.modelled.io);
        assert!(report.measured.total() > Duration::ZERO);
        let (io_f, samp_f, lm_f, gm_f) = report.modelled.fractions();
        assert!((io_f + samp_f + lm_f + gm_f - 1.0).abs() < 1e-9);
        assert!(report.modelled.io_fraction() > 0.0);
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let (data, _) = partitioned_data(5_000, 1);
        let popaq = ParallelOpaq::new(config(500, 50), 1);
        let report = popaq.run_on_partitions(vec![data.clone()]).unwrap();
        check_dectiles(&data, &report);
    }

    #[test]
    fn bitonic_with_non_power_of_two_rejected() {
        let (_, parts) = partitioned_data(3_000, 3);
        let popaq = ParallelOpaq::new(config(100, 10), 3).with_merge(MergeAlgorithm::Bitonic);
        assert!(matches!(
            popaq.run_on_partitions(parts),
            Err(OpaqError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sample_merge_with_non_power_of_two_works() {
        let (data, parts) = partitioned_data(9_000, 3);
        let popaq = ParallelOpaq::new(config(300, 30), 3).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(parts).unwrap();
        check_dectiles(&data, &report);
    }

    #[test]
    fn mismatched_store_count_rejected() {
        let popaq = ParallelOpaq::new(config(100, 10), 4);
        let stores: Vec<MemRunStore<u64>> = vec![MemRunStore::new((0..100).collect(), 100)];
        assert!(matches!(
            popaq.run_on_stores(&stores),
            Err(OpaqError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_partition_rejected() {
        let popaq = ParallelOpaq::new(config(100, 10), 2);
        assert!(matches!(
            popaq.run_on_partitions(vec![(0..100u64).collect(), vec![]]),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        ParallelOpaq::new(config(10, 2), 0);
    }
}
