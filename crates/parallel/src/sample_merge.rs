//! Sample merge of `p` distributed sorted lists (PSRS-style).
//!
//! The paper's second global-merge option, derived from sample sort /
//! parallel sorting by regular sampling (`[LLS+93]`): because every local
//! list is already sorted, only the splitter selection, the all-to-all
//! exchange and the final local merges remain.
//!
//! 1. every processor picks `p` regular samples of its local sorted list and
//!    sends them to processor 0;
//! 2. processor 0 sorts the `p²` candidates, picks `p − 1` regular splitters
//!    and broadcasts them;
//! 3. every processor partitions its list by the splitters and sends piece
//!    `j` to processor `j` (the all-to-all);
//! 4. every processor k-way merges the pieces it received.
//!
//! The output is globally sorted across processors; per-processor sizes may
//! differ by the usual bucket-expansion factor (bounded by ~3/2 for regular
//! sampling).

use crate::machine::Machine;

/// Messages exchanged during the sample merge.
enum Msg<T> {
    /// Pivot candidates sent to processor 0.
    Candidates(Vec<T>),
    /// Splitters broadcast from processor 0.
    Splitters(Vec<T>),
    /// A partition destined for its bucket owner.
    Partition(Vec<T>),
}

/// Merge `p = lists.len()` locally sorted lists into a globally sorted
/// sequence distributed across the same `p` processors.
///
/// Unlike [`crate::bitonic_merge`], any processor count is supported, but
/// per-processor output sizes are only approximately balanced.
///
/// # Panics
/// Panics if `lists.len()` does not match the machine's processor count or
/// (in debug builds) if any list is unsorted.
pub fn sample_merge<T>(machine: &Machine, lists: Vec<Vec<T>>) -> Vec<Vec<T>>
where
    T: Ord + Clone + Send + Sync,
{
    let p = machine.p();
    assert_eq!(lists.len(), p, "one list per processor is required");
    debug_assert!(
        lists.iter().all(|l| l.windows(2).all(|w| w[0] <= w[1])),
        "lists must be sorted"
    );
    if p == 1 {
        return lists;
    }

    let results = machine.run::<Msg<T>, Vec<T>, _>(|ctx| {
        let id = ctx.id();
        let local = &lists[id];

        // --- step 1: regular samples of the local list -> processor 0 ------
        let candidates = regular_samples(local, p);
        let words = candidates.len() as u64;
        ctx.send(0, words, Msg::Candidates(candidates));

        // --- step 2: processor 0 selects and broadcasts the splitters ------
        let splitters: Vec<T> = if id == 0 {
            let mut all: Vec<T> = Vec::with_capacity(p * p);
            for src in 0..p {
                match ctx.recv_from(src) {
                    Msg::Candidates(c) => all.extend(c),
                    _ => unreachable!("processor 0 expects candidates first"),
                }
            }
            all.sort_unstable();
            let splitters = regular_splitters(&all, p);
            for dst in 0..p {
                ctx.send(
                    dst,
                    splitters.len() as u64,
                    Msg::Splitters(splitters.clone()),
                );
            }
            splitters
        } else {
            match ctx.recv_from(0) {
                Msg::Splitters(s) => s,
                _ => unreachable!("non-root processors expect splitters first from 0"),
            }
        };
        // Processor 0 also sent the splitters to itself; drain that message.
        if id == 0 {
            match ctx.recv_from(0) {
                Msg::Splitters(_) => {}
                _ => unreachable!("self-broadcast must be splitters"),
            }
        }

        // --- step 3: partition the local list and exchange ------------------
        let partitions = partition_by_splitters(local, &splitters);
        debug_assert_eq!(partitions.len(), p);
        for (dst, part) in partitions.into_iter().enumerate() {
            let words = part.len() as u64;
            ctx.send(dst, words, Msg::Partition(part));
        }

        // --- step 4: k-way merge of the received pieces ----------------------
        let mut pieces: Vec<Vec<T>> = Vec::with_capacity(p);
        for src in 0..p {
            match ctx.recv_from(src) {
                Msg::Partition(part) => pieces.push(part),
                _ => unreachable!("after splitters only partitions are exchanged"),
            }
        }
        merge_k_sorted(pieces)
    });
    results.into_iter().map(|(block, _)| block).collect()
}

/// `count` regular samples (last element always included when non-empty).
fn regular_samples<T: Clone>(sorted: &[T], count: usize) -> Vec<T> {
    if sorted.is_empty() || count == 0 {
        return Vec::new();
    }
    let n = sorted.len();
    (1..=count.min(n))
        .map(|i| sorted[(i * n).div_ceil(count.min(n)) - 1].clone())
        .collect()
}

/// `p − 1` regular splitters of the sorted candidate list.
fn regular_splitters<T: Clone>(sorted: &[T], p: usize) -> Vec<T> {
    if sorted.is_empty() || p <= 1 {
        return Vec::new();
    }
    let n = sorted.len();
    (1..p)
        .map(|i| sorted[(i * n / p).min(n - 1)].clone())
        .collect()
}

/// Split a sorted list into `splitters.len() + 1` sorted pieces such that
/// piece `j` holds the elements in `(splitter[j-1], splitter[j]]`-ish ranges
/// (boundary elements go to the lower bucket, keeping the split stable).
fn partition_by_splitters<T: Ord + Clone>(sorted: &[T], splitters: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(splitters.len() + 1);
    let mut start = 0usize;
    for s in splitters {
        let end = start + sorted[start..].partition_point(|x| x <= s);
        out.push(sorted[start..end].to_vec());
        start = end;
    }
    out.push(sorted[start..].to_vec());
    out
}

/// Merge `k` sorted vectors (simple repeated two-way merge over a small `k`).
fn merge_k_sorted<T: Ord + Clone>(mut pieces: Vec<Vec<T>>) -> Vec<T> {
    while pieces.len() > 1 {
        let mut next = Vec::with_capacity(pieces.len().div_ceil(2));
        let mut iter = pieces.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        pieces = next;
    }
    pieces.pop().unwrap_or_default()
}

fn merge_two<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    fn check_global_sort(p: usize, lists: Vec<Vec<u64>>) {
        let machine = Machine::new(p, CostModel::sp2());
        let mut expected: Vec<u64> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        let out = sample_merge(&machine, lists);
        assert_eq!(out.len(), p);
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn merges_equal_blocks() {
        check_global_sort(
            4,
            vec![
                vec![1, 5, 9, 13],
                vec![2, 6, 10, 14],
                vec![3, 7, 11, 15],
                vec![4, 8, 12, 16],
            ],
        );
    }

    #[test]
    fn works_for_non_power_of_two_processors() {
        check_global_sort(3, vec![vec![9, 10, 11], vec![0, 5, 20], vec![1, 2, 3]]);
        check_global_sort(
            5,
            vec![
                vec![1, 2],
                vec![3],
                vec![0, 10],
                vec![7, 8, 9],
                vec![4, 5, 6],
            ],
        );
    }

    #[test]
    fn merges_duplicate_heavy_lists() {
        check_global_sort(
            4,
            vec![vec![5; 50], vec![5; 10], vec![1, 5, 9], vec![5, 5, 5, 7]],
        );
    }

    #[test]
    fn merges_empty_and_tiny_lists() {
        check_global_sort(4, vec![vec![], vec![3], vec![], vec![1, 2]]);
    }

    #[test]
    fn merges_larger_pseudorandom_lists_on_8_processors() {
        let lists: Vec<Vec<u64>> = (0..8)
            .map(|pid| {
                let mut l: Vec<u64> = (0..1000u64)
                    .map(|i| (i * 48271 + pid * 131) % 65_536)
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        check_global_sort(8, lists);
    }

    #[test]
    fn output_sizes_are_roughly_balanced_for_uniform_data() {
        let p = 4;
        let lists: Vec<Vec<u64>> = (0..p as u64)
            .map(|pid| {
                let mut l: Vec<u64> = (0..2000u64)
                    .map(|i| (i * 2654435761 + pid) % 1_000_000)
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        let machine = Machine::new(p, CostModel::sp2());
        let out = sample_merge(&machine, lists);
        let per = 2000usize;
        for (i, block) in out.iter().enumerate() {
            assert!(
                block.len() <= per * 2,
                "bucket {i} holds {} elements, more than twice the fair share",
                block.len()
            );
        }
    }

    #[test]
    fn single_processor_is_identity() {
        let machine = Machine::new(1, CostModel::sp2());
        let out = sample_merge(&machine, vec![vec![1u64, 2, 3]]);
        assert_eq!(out, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn helper_regular_samples() {
        assert_eq!(
            regular_samples(&[1, 2, 3, 4, 5, 6, 7, 8], 4),
            vec![2, 4, 6, 8]
        );
        assert_eq!(regular_samples::<u64>(&[], 4), Vec::<u64>::new());
        assert_eq!(regular_samples(&[7], 4), vec![7]);
    }

    #[test]
    fn helper_partition_by_splitters() {
        let parts = partition_by_splitters(&[1, 2, 3, 4, 5, 6], &[2, 4]);
        assert_eq!(parts, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        let parts = partition_by_splitters(&[5, 5, 5], &[5]);
        assert_eq!(parts, vec![vec![5, 5, 5], vec![]]);
    }

    #[test]
    #[should_panic(expected = "one list per processor")]
    fn wrong_list_count_panics() {
        let machine = Machine::new(2, CostModel::sp2());
        let _ = sample_merge(&machine, vec![vec![1u64]]);
    }
}
