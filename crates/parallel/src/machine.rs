//! The simulated distributed-memory machine.
//!
//! Each "processor" is an OS thread with private state; processors
//! communicate only through explicit point-to-point messages carried by
//! channels (the "virtual crossbar" the paper assumes).  Every message is
//! charged against the [`CostModel`] and accumulated per processor, so each
//! experiment can report modelled communication time next to measured
//! wall-clock time.

use crate::CostModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Per-processor communication accounting.
#[derive(Debug, Default)]
pub struct CommStats {
    messages_sent: Mutex<u64>,
    words_sent: Mutex<u64>,
    modelled: Mutex<Duration>,
}

impl CommStats {
    fn record(&self, words: u64, modelled: Duration) {
        *self.messages_sent.lock() += 1;
        *self.words_sent.lock() += words;
        *self.modelled.lock() += modelled;
    }

    /// Number of messages this processor sent.
    pub fn messages_sent(&self) -> u64 {
        *self.messages_sent.lock()
    }

    /// Number of words this processor sent.
    pub fn words_sent(&self) -> u64 {
        *self.words_sent.lock()
    }

    /// Modelled communication time charged to this processor.
    pub fn modelled_time(&self) -> Duration {
        *self.modelled.lock()
    }
}

/// A message in flight: `(source processor, word count, payload)`.
type Envelope<M> = (usize, u64, M);

/// The per-processor context handed to every worker closure.
pub struct ProcessorCtx<M> {
    id: usize,
    p: usize,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    /// Messages received out of order, parked per source processor.
    parked: Vec<VecDeque<(u64, M)>>,
    cost: CostModel,
    stats: Arc<CommStats>,
}

impl<M: Send> ProcessorCtx<M> {
    /// This processor's id in `0..p`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processors in the machine.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The communication statistics handle of this processor.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Send `msg` (declared as `words` machine words) to processor `to`.
    ///
    /// Sending to oneself is allowed (and free in the cost model), which
    /// keeps collective patterns simple to write.
    ///
    /// # Panics
    /// Panics if `to >= p`.
    pub fn send(&self, to: usize, words: u64, msg: M) {
        assert!(
            to < self.p,
            "destination processor {to} out of range (p = {})",
            self.p
        );
        let modelled = if to == self.id {
            Duration::ZERO
        } else {
            self.cost.message(words)
        };
        self.stats.record(words, modelled);
        self.senders[to]
            .send((self.id, words, msg))
            .expect("receiving processor hung up before the algorithm finished");
    }

    /// Receive the next message from any processor: `(source, payload)`.
    pub fn recv(&mut self) -> (usize, M) {
        // Drain parked messages first (oldest source first for fairness).
        for (src, queue) in self.parked.iter_mut().enumerate() {
            if let Some((_, msg)) = queue.pop_front() {
                return (src, msg);
            }
        }
        let (src, _, msg) = self.receiver.recv().expect("all senders disconnected");
        (src, msg)
    }

    /// Receive the next message sent by processor `from`, parking any
    /// messages from other processors that arrive in the meantime.
    pub fn recv_from(&mut self, from: usize) -> M {
        assert!(from < self.p, "source processor {from} out of range");
        if let Some((_, msg)) = self.parked[from].pop_front() {
            return msg;
        }
        loop {
            let (src, words, msg) = self.receiver.recv().expect("all senders disconnected");
            if src == from {
                return msg;
            }
            self.parked[src].push_back((words, msg));
        }
    }
}

/// The simulated machine: `p` processors over a virtual crossbar.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    p: usize,
    cost: CostModel,
}

impl Machine {
    /// Create a machine with `p` processors and the given cost model.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p > 0, "a machine needs at least one processor");
        Self { p, cost }
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Run `worker` on every processor concurrently and collect the results
    /// in processor order, together with each processor's [`CommStats`].
    ///
    /// The closure receives a mutable [`ProcessorCtx`] it can use to send and
    /// receive messages.  Worker panics propagate.
    pub fn run<M, R, F>(&self, worker: F) -> Vec<(R, Arc<CommStats>)>
    where
        M: Send,
        R: Send,
        F: Fn(&mut ProcessorCtx<M>) -> R + Send + Sync,
    {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..self.p).map(|_| unbounded()).unzip();
        let stats: Vec<Arc<CommStats>> = (0..self.p)
            .map(|_| Arc::new(CommStats::default()))
            .collect();

        let mut ctxs: Vec<ProcessorCtx<M>> = receivers
            .into_iter()
            .enumerate()
            .map(|(id, receiver)| ProcessorCtx {
                id,
                p: self.p,
                senders: senders.clone(),
                receiver,
                parked: (0..self.p).map(|_| VecDeque::new()).collect(),
                cost: self.cost,
                stats: Arc::clone(&stats[id]),
            })
            .collect();
        // Drop the original senders so channels close when all workers finish.
        drop(senders);

        let worker = &worker;
        let results: Vec<R> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ctxs
                .iter_mut()
                .map(|ctx| scope.spawn(move |_| worker(ctx)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("machine scope panicked");

        results.into_iter().zip(stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_run_and_return_in_processor_order() {
        let machine = Machine::new(4, CostModel::sp2());
        let out = machine.run::<(), usize, _>(|ctx| ctx.id() * 10);
        let values: Vec<usize> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ring_message_passing() {
        let machine = Machine::new(4, CostModel::sp2());
        let out = machine.run::<u64, u64, _>(|ctx| {
            let next = (ctx.id() + 1) % ctx.p();
            ctx.send(next, 1, ctx.id() as u64);
            let (src, value) = ctx.recv();
            assert_eq!(src, (ctx.id() + ctx.p() - 1) % ctx.p());
            value
        });
        let values: Vec<u64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![3, 0, 1, 2]);
    }

    #[test]
    fn recv_from_parks_out_of_order_messages() {
        let machine = Machine::new(3, CostModel::sp2());
        let out = machine.run::<u64, u64, _>(|ctx| {
            match ctx.id() {
                0 => {
                    // Receive specifically from 2 first, then from 1.
                    let a = ctx.recv_from(2);
                    let b = ctx.recv_from(1);
                    a * 100 + b
                }
                id => {
                    ctx.send(0, 1, id as u64);
                    0
                }
            }
        });
        assert_eq!(out[0].0, 201);
    }

    #[test]
    fn gather_to_root_counts_stats() {
        let machine = Machine::new(4, CostModel::sp2());
        let out = machine.run::<Vec<u64>, u64, _>(|ctx| {
            if ctx.id() == 0 {
                let mut total = 0;
                for _ in 1..ctx.p() {
                    let (_, v) = ctx.recv();
                    total += v.iter().sum::<u64>();
                }
                total
            } else {
                let payload: Vec<u64> = vec![ctx.id() as u64; 10];
                ctx.send(0, 10, payload);
                0
            }
        });
        assert_eq!(out[0].0, 10 + 20 + 30);
        // Non-root processors each sent one 10-word message.
        for (id, (_, stats)) in out.iter().enumerate().skip(1) {
            assert_eq!(stats.messages_sent(), 1, "proc {id}");
            assert_eq!(stats.words_sent(), 10);
            assert!(
                stats.modelled_time() >= CostModel::sp2().message(10) - Duration::from_nanos(1)
            );
        }
    }

    #[test]
    fn self_send_is_free_in_the_model() {
        let machine = Machine::new(1, CostModel::sp2());
        let out = machine.run::<u64, u64, _>(|ctx| {
            ctx.send(0, 1000, 7);
            let (_, v) = ctx.recv();
            v
        });
        assert_eq!(out[0].0, 7);
        assert_eq!(out[0].1.modelled_time(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        Machine::new(0, CostModel::sp2());
    }
}
