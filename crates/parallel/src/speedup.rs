//! Scalability bookkeeping for the Figure 4–6 experiments.
//!
//! The paper evaluates three scalability properties:
//!
//! * **scale-up** (Figure 4): per-processor data fixed, `p` grows — total
//!   time should stay flat;
//! * **size-up** (Figure 5): `p` fixed, per-processor data grows — total
//!   time should grow linearly;
//! * **speed-up** (Figure 6): total data fixed, `p` grows — time should drop
//!   as `1/p`.
//!
//! [`ScalingReport`] holds a series of `(p, n, time)` points and derives the
//! figures' y-axes.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One measured point of a scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of processors.
    pub processors: usize,
    /// Total number of elements across all processors.
    pub total_elements: u64,
    /// Total execution time (modelled or measured, consistently per sweep).
    pub time: Duration,
}

/// A series of scalability points, ordered as collected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScalingReport {
    /// The collected points.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// Create an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one point.
    pub fn push(&mut self, processors: usize, total_elements: u64, time: Duration) {
        self.points.push(ScalingPoint {
            processors,
            total_elements,
            time,
        });
    }

    /// Speed-up relative to the first point (typically `p = 1`):
    /// `speedup_i = time_0 / time_i`.
    ///
    /// Returns an empty vector if no points were collected.
    pub fn speedups(&self) -> Vec<f64> {
        let Some(base) = self.points.first() else {
            return Vec::new();
        };
        self.points
            .iter()
            .map(|p| base.time.as_secs_f64() / p.time.as_secs_f64().max(f64::MIN_POSITIVE))
            .collect()
    }

    /// Parallel efficiency: `speedup_i / (p_i / p_0)`.
    pub fn efficiencies(&self) -> Vec<f64> {
        let Some(base) = self.points.first() else {
            return Vec::new();
        };
        self.speedups()
            .iter()
            .zip(&self.points)
            .map(|(s, p)| s / (p.processors as f64 / base.processors as f64))
            .collect()
    }

    /// Scale-up metric: `time_0 / time_i` when both `p` and `n` grow by the
    /// same factor (1.0 = perfect scale-up, the flat line of Figure 4).
    pub fn scaleups(&self) -> Vec<f64> {
        self.speedups()
    }

    /// Throughput (elements per second) of each point — the natural size-up
    /// y-axis: flat throughput means linear size-up (Figure 5).
    pub fn throughputs(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.total_elements as f64 / p.time.as_secs_f64().max(f64::MIN_POSITIVE))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_relative_to_first_point() {
        let mut r = ScalingReport::new();
        r.push(1, 1000, Duration::from_secs(8));
        r.push(2, 1000, Duration::from_secs(4));
        r.push(4, 1000, Duration::from_secs(2));
        assert_eq!(r.speedups(), vec![1.0, 2.0, 4.0]);
        assert_eq!(r.efficiencies(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn imperfect_speedup_has_lower_efficiency() {
        let mut r = ScalingReport::new();
        r.push(1, 1000, Duration::from_secs(8));
        r.push(4, 1000, Duration::from_secs(4));
        assert_eq!(r.speedups(), vec![1.0, 2.0]);
        assert_eq!(r.efficiencies(), vec![1.0, 0.5]);
    }

    #[test]
    fn throughputs_for_sizeup() {
        let mut r = ScalingReport::new();
        r.push(4, 1000, Duration::from_secs(1));
        r.push(4, 2000, Duration::from_secs(2));
        let t = r.throughputs();
        assert!(
            (t[0] - t[1]).abs() < 1e-9,
            "linear size-up means flat throughput"
        );
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ScalingReport::new();
        assert!(r.speedups().is_empty());
        assert!(r.efficiencies().is_empty());
        assert!(r.throughputs().is_empty());
    }

    #[test]
    fn scaleup_alias() {
        let mut r = ScalingReport::new();
        r.push(1, 1000, Duration::from_secs(5));
        r.push(2, 2000, Duration::from_secs(5));
        assert_eq!(r.scaleups(), vec![1.0, 1.0]);
    }
}
