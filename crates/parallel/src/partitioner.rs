//! Data partitioning helpers.
//!
//! Two flavours are useful around OPAQ:
//!
//! * [`block_partition`] — split a dataset into `p` contiguous blocks, the
//!   way the experiments distribute `n/p` elements to each processor.
//! * [`quantile_partition`] — use an OPAQ sketch's quantile estimates as
//!   splitter values so that each of the `p` ranges holds roughly the same
//!   number of elements; this is the "load balancing many parallel
//!   applications" / external-sorting use case the introduction motivates
//!   (`[DNS91]`).

use opaq_core::{Key, OpaqResult, QuantileSketch};

/// Split `data` into `p` contiguous blocks whose sizes differ by at most one.
///
/// # Panics
/// Panics if `p == 0`.
pub fn block_partition<K: Clone>(data: &[K], p: usize) -> Vec<Vec<K>> {
    assert!(p > 0, "at least one partition is required");
    let n = data.len();
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(data[start..start + len].to_vec());
        start += len;
    }
    out
}

/// Derive `p − 1` splitter values from a sketch so that the `p` resulting
/// key ranges hold approximately `n/p` elements each.
///
/// The splitters are the upper bounds of the `i/p` quantile estimates, which
/// guarantees (by Lemma 2) that at most `n/s` elements per splitter can end
/// up on the "wrong" side relative to an exact split.
///
/// `p = 1` needs no splitters and returns an empty list.
///
/// # Errors
/// Propagates estimation errors (empty sketch, `p = 0` is reported as an
/// invalid quantile configuration).
pub fn quantile_partition<K: Key>(sketch: &QuantileSketch<K>, p: u64) -> OpaqResult<Vec<K>> {
    if sketch.is_empty() {
        return Err(opaq_core::OpaqError::EmptyDataset);
    }
    if p == 1 {
        return Ok(Vec::new());
    }
    Ok(sketch
        .estimate_q_quantiles(p)?
        .into_iter()
        .map(|e| e.upper)
        .collect())
}

/// Assign every key of `data` to its bucket under the given splitters
/// (bucket `i` receives keys `≤ splitters[i]`, the last bucket the rest).
pub fn scatter_by_splitters<K: Ord + Clone>(data: &[K], splitters: &[K]) -> Vec<Vec<K>> {
    let mut out = vec![Vec::new(); splitters.len() + 1];
    for key in data {
        let bucket = splitters.partition_point(|s| s < key);
        out[bucket].push(key.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::{OpaqConfig, OpaqEstimator};
    use opaq_storage::MemRunStore;

    #[test]
    fn block_partition_sizes_balanced() {
        let data: Vec<u64> = (0..103).collect();
        let parts = block_partition(&data, 4);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        let flat: Vec<u64> = parts.into_iter().flatten().collect();
        assert_eq!(flat, data);
    }

    #[test]
    fn block_partition_more_parts_than_elements() {
        let parts = block_partition(&[1u64, 2], 5);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        block_partition::<u64>(&[], 0);
    }

    #[test]
    fn quantile_partition_balances_buckets() {
        let data: Vec<u64> = (0..50_000).map(|i| (i * 48271) % 1_000_003).collect();
        let store = MemRunStore::new(data.clone(), 5000);
        let config = OpaqConfig::builder()
            .run_length(5000)
            .sample_size(500)
            .build()
            .unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        let p = 8u64;
        let splitters = quantile_partition(&sketch, p).unwrap();
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));

        let buckets = scatter_by_splitters(&data, &splitters);
        let fair = data.len() as f64 / p as f64;
        for (i, b) in buckets.iter().enumerate() {
            let deviation = (b.len() as f64 - fair).abs() / fair;
            assert!(
                deviation < 0.15,
                "bucket {i} holds {} elements (fair share {fair})",
                b.len()
            );
        }
    }

    #[test]
    fn scatter_respects_splitter_boundaries() {
        let buckets = scatter_by_splitters(&[1, 2, 3, 4, 5, 6], &[2, 4]);
        assert_eq!(buckets, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn quantile_partition_boundary_p_values() {
        let store = MemRunStore::new((0u64..100).collect(), 10);
        let config = OpaqConfig::builder()
            .run_length(10)
            .sample_size(5)
            .build()
            .unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        assert!(quantile_partition(&sketch, 0).is_err());
        // A single partition needs no splitters.
        assert_eq!(quantile_partition(&sketch, 1).unwrap(), Vec::<u64>::new());
    }
}
