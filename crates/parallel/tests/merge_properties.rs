//! Property-based tests for the distributed merge algorithms: for any input
//! lists, the concatenation of the per-processor outputs must equal the
//! sorted concatenation of the inputs.

use opaq_parallel::{bitonic_merge, sample_merge, CostModel, Machine};
use proptest::prelude::*;

fn sorted_lists(p: usize, raw: &[Vec<u64>]) -> Vec<Vec<u64>> {
    (0..p)
        .map(|i| {
            let mut l = raw.get(i).cloned().unwrap_or_default();
            l.sort_unstable();
            l
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitonic_merge_globally_sorts(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..200), 1..9),
        p_exp in 1u32..4,
    ) {
        let p = 1usize << p_exp; // 2, 4, 8
        let lists = sorted_lists(p, &raw);
        let mut expected: Vec<u64> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        let sizes: Vec<usize> = lists.iter().map(Vec::len).collect();

        let machine = Machine::new(p, CostModel::sp2());
        let out = bitonic_merge(&machine, lists);
        prop_assert_eq!(out.iter().map(Vec::len).collect::<Vec<_>>(), sizes,
            "bitonic keeps per-processor sizes");
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn sample_merge_globally_sorts(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..200), 1..7),
        p in 2usize..7,
    ) {
        let lists = sorted_lists(p, &raw);
        let mut expected: Vec<u64> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();

        let machine = Machine::new(p, CostModel::sp2());
        let out = sample_merge(&machine, lists);
        prop_assert_eq!(out.len(), p);
        // Each block must itself be sorted and blocks must not overlap.
        for w in out.windows(2) {
            if let (Some(last), Some(first)) = (w[0].last(), w[1].first()) {
                prop_assert!(last <= first, "blocks must be range-disjoint");
            }
        }
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn both_merges_agree_on_identical_input(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 1..100), 4..5),
    ) {
        let p = 4usize;
        let lists: Vec<Vec<u64>> = sorted_lists(p, &raw.iter()
            .map(|l| l.iter().map(|&x| x as u64).collect())
            .collect::<Vec<_>>());
        let machine = Machine::new(p, CostModel::sp2());
        let a: Vec<u64> = bitonic_merge(&machine, lists.clone()).into_iter().flatten().collect();
        let b: Vec<u64> = sample_merge(&machine, lists).into_iter().flatten().collect();
        prop_assert_eq!(a, b);
    }
}
