//! Property-based pin of the sharded-ingestion invariant: for any input,
//! any run length, and any thread count in `1..=8`, [`ShardedOpaq`] must
//! produce a sketch **identical** to the sequential [`IncrementalOpaq`]
//! fold over the same store — same samples, same gaps, same bounds, same
//! metadata — regardless of worker completion order.

use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_parallel::ShardedOpaq;
use opaq_storage::{MemRunStore, RunStore};
use proptest::prelude::*;

fn sequential_sketch(data: Vec<u64>, m: u64, s: u64) -> QuantileSketch<u64> {
    let store = MemRunStore::new(data, m);
    let config = OpaqConfig::builder()
        .run_length(store.layout().m())
        .sample_size(s.min(store.layout().m()))
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_store(&store).unwrap();
    inc.into_sketch().unwrap()
}

fn assert_sharded_identical(data: Vec<u64>, m: u64, s: u64) -> Result<(), TestCaseError> {
    let reference = sequential_sketch(data.clone(), m, s);
    let store = MemRunStore::new(data, m);
    let config = OpaqConfig::builder()
        .run_length(store.layout().m())
        .sample_size(s.min(store.layout().m()))
        .build()
        .unwrap();
    for threads in 1..=8usize {
        let sharded = ShardedOpaq::new(config, threads)
            .unwrap()
            .build_sketch(&store)
            .unwrap();
        // `QuantileSketch: PartialEq` covers samples, gaps, prefix sums,
        // element/run counts, max gap and dataset bounds in one comparison.
        prop_assert_eq!(&sharded, &reference, "threads {}", threads);
        // Bounds derived from the sketches must agree too (belt and braces:
        // the quantile phase only reads what PartialEq already compared).
        for q in [2u64, 5, 10] {
            let a = sharded.estimate_q_quantiles(q).unwrap();
            let b = reference.estimate_q_quantiles(q).unwrap();
            prop_assert_eq!(a, b, "threads {} q {}", threads, q);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_equals_sequential_random(
        data in proptest::collection::vec(any::<u64>(), 1..4_000),
        m_seed in 1u64..600,
        s in 1u64..64,
    ) {
        let m = m_seed.min(data.len() as u64);
        assert_sharded_identical(data, m, s)?;
    }

    #[test]
    fn sharded_equals_sequential_duplicate_heavy(
        len in 1usize..4_000,
        domain in 1u64..6,
        m_seed in 1u64..400,
        s in 1u64..32,
    ) {
        // Tiny domains force massive duplication, the regime where merge
        // tie-breaking order could diverge between shard counts.
        let data: Vec<u64> = (0..len as u64).map(|i| (i * 48271) % domain).collect();
        let m = m_seed.min(data.len() as u64);
        assert_sharded_identical(data, m, s)?;
    }

    #[test]
    fn sharded_equals_sequential_reversed(
        len in 1usize..4_000,
        m_seed in 1u64..500,
        s in 1u64..48,
    ) {
        let data: Vec<u64> = (0..len as u64).rev().collect();
        let m = m_seed.min(data.len() as u64);
        assert_sharded_identical(data, m, s)?;
    }
}
