//! Failure-injection tests for the storage layer: the store must surface
//! clean errors (never panic, never return wrong data) when the underlying
//! file disappears, shrinks or is corrupted after it was opened.

use opaq_storage::{FileRunStore, FileRunStoreBuilder, RunStore, StorageError};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "opaq-failure-{tag}-{}-{}.bin",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

fn build_store(path: &PathBuf, n: u64, m: u64) -> FileRunStore<u64> {
    let data: Vec<u64> = (0..n).collect();
    FileRunStoreBuilder::<u64>::new(path, m)
        .unwrap()
        .append(&data)
        .unwrap()
        .finish()
        .unwrap()
}

#[test]
fn opening_a_missing_file_is_an_io_error() {
    let path = temp_path("missing");
    let err = FileRunStore::<u64>::open(&path, 10, 5).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err}");
}

#[test]
fn wrong_declared_length_is_detected_at_open() {
    let path = temp_path("wrong-length");
    let store = build_store(&path, 100, 10);
    drop(store);
    // Declare more keys than the file holds.
    let err = FileRunStore::<u64>::open(&path, 200, 10).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_after_open_fails_reads_cleanly() {
    let path = temp_path("truncate");
    let store = build_store(&path, 1_000, 100);
    // Shrink the file behind the store's back to half a run.
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(50 * 8).unwrap();
    drop(file);

    // Reading the first half-run still succeeds only if fully present; later
    // runs must error rather than fabricate data.
    let mut saw_error = false;
    for run in 0..store.layout().runs() {
        match store.read_run(run) {
            Ok(keys) => assert!(keys.iter().all(|&k| k < 1_000), "no fabricated keys"),
            Err(StorageError::Io(_)) => saw_error = true,
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(
        saw_error,
        "at least one run read must fail after truncation"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn deleting_the_file_after_open_fails_reads_cleanly() {
    let path = temp_path("unlink");
    let store = build_store(&path, 500, 100);
    std::fs::remove_file(&path).unwrap();
    // On Unix the open handle keeps the data readable; either outcome (ok or
    // a clean Io error) is acceptable, but never a panic or wrong length.
    for run in 0..store.layout().runs() {
        if let Ok(keys) = store.read_run(run) {
            assert_eq!(keys.len() as u64, store.layout().run_len(run));
        }
    }
}

#[test]
fn concurrent_readers_see_consistent_runs() {
    let path = temp_path("concurrent");
    let store = std::sync::Arc::new(build_store(&path, 10_000, 1_000));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let store = std::sync::Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut total = 0u64;
            for run in 0..store.layout().runs() {
                let keys = store.read_run(run).unwrap();
                assert_eq!(keys.len(), 1_000);
                // Runs are contiguous slices of 0..10_000.
                assert_eq!(keys[0] % 1_000, 0);
                assert!(keys.windows(2).all(|w| w[1] == w[0] + 1));
                total += keys.len() as u64;
            }
            total
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 10_000);
    }
    std::sync::Arc::try_unwrap(store)
        .unwrap()
        .remove_file()
        .unwrap();
}
