//! Property-based tests for the storage substrate: file and memory stores
//! must agree with each other and with the raw data for any layout.

use opaq_storage::{FileRunStoreBuilder, MemRunStore, RunLayout, RunStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "opaq-storage-prop-{}-{}.bin",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The file store returns exactly what was written, run by run, for any
    /// run length, and its I/O statistics account for every byte.
    #[test]
    fn file_store_round_trips_any_layout(
        data in proptest::collection::vec(any::<u64>(), 1..2_000),
        m_seed in 1u64..500,
    ) {
        let m = m_seed.min(data.len() as u64);
        let path = temp_path();
        let store = FileRunStoreBuilder::<u64>::new(&path, m)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();

        let mut reassembled = Vec::new();
        for run in 0..store.layout().runs() {
            reassembled.extend(store.read_run(run).unwrap());
        }
        prop_assert_eq!(&reassembled, &data);
        let stats = store.io_stats().snapshot();
        prop_assert_eq!(stats.bytes_read, data.len() as u64 * 8);
        prop_assert_eq!(stats.read_calls, store.layout().runs());
        store.remove_file().unwrap();
    }

    /// Memory and file stores expose identical layouts and run contents.
    #[test]
    fn mem_and_file_stores_agree(
        data in proptest::collection::vec(any::<u32>(), 1..1_500),
        m_seed in 1u64..200,
    ) {
        let m = m_seed.min(data.len() as u64);
        let mem = MemRunStore::new(data.clone(), m);
        let path = temp_path();
        let file = FileRunStoreBuilder::<u32>::new(&path, m)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        prop_assert_eq!(mem.layout(), file.layout());
        for run in 0..mem.layout().runs() {
            prop_assert_eq!(mem.read_run(run).unwrap(), file.read_run(run).unwrap());
        }
        file.remove_file().unwrap();
    }

    /// Run layout arithmetic covers every element exactly once.
    #[test]
    fn layout_partitions_exactly(n in 1u64..1_000_000, m_seed in 1u64..10_000) {
        let m = m_seed.min(n);
        let layout = RunLayout::new(n, m);
        let mut covered = 0u64;
        let mut next_start = 0u64;
        for (idx, start, len) in layout.iter() {
            prop_assert_eq!(start, next_start);
            prop_assert!(len <= m);
            prop_assert!(len > 0, "run {} empty", idx);
            covered += len;
            next_start += len;
        }
        prop_assert_eq!(covered, n);
        prop_assert_eq!(layout.runs(), n.div_ceil(m));
    }
}
