//! Replay racing a live writer: a reader replaying the manifest while a
//! `ManifestWriter` is appending must only ever see a clean prefix of the
//! true history — possibly with a torn tail it ignores — and never a decode
//! error or an out-of-order/invented record.  This is the file-level
//! guarantee the replica bootstrap path leans on: a peer's manifest is
//! always safe to read, even mid-append.

use opaq_storage::manifest::{self, ManifestRecord, ManifestWriter, MANIFEST_NO_TTL};
use opaq_storage::version_vector;
use std::path::PathBuf;

fn scratch_path(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "opaq-manifest-race-{tag}-{}-{nanos}.manifest",
        std::process::id()
    ))
}

fn publish(version: u64) -> ManifestRecord {
    ManifestRecord::Publish {
        tenant: "acme".into(),
        dataset: "clicks".into(),
        version,
        ttl_nanos: MANIFEST_NO_TTL,
        sketch_file: format!("acme--clicks--v{version}.sketch"),
    }
}

#[test]
fn replay_racing_a_concurrent_append_only_sees_clean_prefixes() {
    let path = scratch_path("prefix");
    const RECORDS: u64 = 300;
    let expected: Vec<ManifestRecord> = (1..=RECORDS).map(publish).collect();

    std::thread::scope(|scope| {
        let writer = {
            let path = path.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut writer = ManifestWriter::open(path).unwrap();
                for record in expected {
                    writer.append(record).unwrap();
                }
            })
        };

        // Replay as fast as possible while the writer runs.  Every replay
        // must decode (no Corrupt, no VersionMismatch), and its record list
        // must be a prefix of the true history that never shrinks.
        let mut max_seen = 0usize;
        let mut mid_append_replays = 0u64;
        while !writer.is_finished() {
            let replayed = manifest::replay(&path).unwrap();
            let seen = replayed.records.len();
            assert!(
                seen >= max_seen,
                "replay went backwards: {seen} after {max_seen}"
            );
            max_seen = seen;
            assert_eq!(
                replayed.records[..],
                expected[..seen],
                "replay saw something that is not a prefix of the history"
            );
            mid_append_replays += 1;
        }
        writer.join().unwrap();
        assert!(mid_append_replays > 0, "the race never actually raced");
    });

    // With the writer done, the full history replays with a clean tail, and
    // the derived version vector lands on the final version.
    let replayed = manifest::replay(&path).unwrap();
    assert_eq!(replayed.records, expected);
    assert_eq!(replayed.torn_tail_bytes, 0);
    let vector = version_vector(&replayed.records);
    assert_eq!(
        vector.get(&("acme".to_string(), "clicks".to_string())),
        Some(&RECORDS)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn replay_of_a_half_written_record_is_a_torn_tail_never_an_error() {
    // Deterministic twin of the race: materialize every byte-length prefix
    // a reader could observe mid-append and replay each one.
    let records: Vec<ManifestRecord> = (1..=3).map(publish).collect();
    let bytes: Vec<u8> = records.iter().flat_map(manifest::encode_record).collect();
    let mut clean_offsets = vec![0usize];
    {
        let mut offset = 0;
        while offset < bytes.len() {
            let (_, consumed) = manifest::decode_record(&bytes[offset..])
                .unwrap()
                .expect("complete record");
            offset += consumed;
            clean_offsets.push(offset);
        }
    }
    for cut in 0..=bytes.len() {
        let replayed = manifest::replay_bytes(&bytes[..cut]).unwrap();
        let complete = clean_offsets.iter().filter(|&&o| o <= cut).count() - 1;
        assert_eq!(replayed.records[..], records[..complete], "cut at {cut}");
        let tail_start = clean_offsets[complete];
        assert_eq!(
            replayed.torn_tail_bytes,
            (cut - tail_start) as u64,
            "cut at {cut}"
        );
    }
}
