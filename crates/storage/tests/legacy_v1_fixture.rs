//! Pin the legacy (version-1, checksum-less) sketch file format with a
//! checked-in binary fixture.
//!
//! The fixture at `tests/fixtures/legacy_v1.sketch` was written by the
//! original v1 encoder: `"OPAQSKT" '1'` followed by the raw body
//! (`total_elements=30, runs=3, max_gap=10, min=5, max=900`, three
//! `(value, gap)` samples).  These tests assert that
//!
//! 1. the bytes decode exactly (field for field) forever — old spill and
//!    `--out` files keep loading across format bumps;
//! 2. a decode → re-encode round trip upgrades to the current (v2,
//!    checksummed) format and survives its own decode;
//! 3. truncation at *every* field boundary of the v1 layout fails with the
//!    typed `Corrupt` error rather than decoding garbage, and a checksum
//!    flip at every field boundary of the upgraded v2 bytes is caught.

use opaq_storage::sketch_codec::{self, SketchWire, FORMAT_VERSION, LEGACY_VERSION, MAGIC};
use opaq_storage::StorageError;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/legacy_v1.sketch")
}

fn fixture_bytes() -> Vec<u8> {
    std::fs::read(fixture_path()).expect("fixture file is checked in")
}

fn expected() -> SketchWire<u64> {
    SketchWire {
        total_elements: 30,
        runs: 3,
        max_gap: 10,
        dataset_min: 5,
        dataset_max: 900,
        samples: vec![(5, 10), (450, 10), (900, 10)],
    }
}

/// v1 layout field boundaries (byte offsets into the file).
fn v1_field_boundaries() -> Vec<usize> {
    let mut offsets = vec![
        0,  // magic
        7,  // version digit
        8,  // total_elements
        16, // runs
        24, // max_gap
        32, // dataset_min
        40, // dataset_max
        48, // sample count
        56, // first sample
    ];
    // Every (value, gap) pair and its halves.
    for sample in 0..3usize {
        offsets.push(56 + sample * 16 + 8);
        offsets.push(56 + sample * 16 + 16);
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

#[test]
fn fixture_decodes_byte_exactly() {
    let bytes = fixture_bytes();
    assert_eq!(bytes.len(), 104, "fixture layout drifted");
    assert_eq!(&bytes[..7], MAGIC);
    assert_eq!(bytes[7], LEGACY_VERSION);
    let wire = sketch_codec::from_bytes::<u64>(&bytes).unwrap();
    assert_eq!(wire, expected());
    // Loading through the file API gives the identical value.
    assert_eq!(sketch_codec::load::<u64>(fixture_path()).unwrap(), wire);
}

#[test]
fn fixture_reencodes_as_v2_and_round_trips() {
    let wire = sketch_codec::from_bytes::<u64>(&fixture_bytes()).unwrap();
    let v2 = sketch_codec::to_bytes(&wire);
    assert_eq!(v2[7], FORMAT_VERSION, "re-encode must upgrade the version");
    assert_eq!(
        v2.len(),
        fixture_bytes().len() + 8,
        "v2 = v1 + the 8-byte checksum"
    );
    let back = sketch_codec::from_bytes::<u64>(&v2).unwrap();
    assert_eq!(back, wire);
    // And the body bytes after (magic, version, checksum) are identical to
    // the v1 body: the upgrade only prepends integrity, never rewrites data.
    assert_eq!(&v2[16..], &fixture_bytes()[8..]);
}

#[test]
fn truncation_at_every_v1_field_boundary_is_a_typed_error() {
    let bytes = fixture_bytes();
    for &cut in &v1_field_boundaries() {
        if cut == bytes.len() {
            continue;
        }
        let err = sketch_codec::from_bytes::<u64>(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt(_)),
            "cut at {cut}: expected Corrupt, got {err}"
        );
    }
    // One byte short of complete, and one byte of trailing garbage.
    assert!(sketch_codec::from_bytes::<u64>(&bytes[..bytes.len() - 1]).is_err());
    let mut padded = bytes.clone();
    padded.push(0);
    let err = sketch_codec::from_bytes::<u64>(&padded).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn checksum_flip_at_every_field_boundary_of_the_upgraded_file_is_caught() {
    let wire = sketch_codec::from_bytes::<u64>(&fixture_bytes()).unwrap();
    let v2 = sketch_codec::to_bytes(&wire);
    // v2 boundaries = v1 boundaries shifted by the 8-byte checksum, plus the
    // checksum field itself.
    let mut boundaries = vec![8usize]; // checksum start
    boundaries.extend(
        v1_field_boundaries()
            .into_iter()
            .filter(|&b| b >= 8)
            .map(|b| b + 8),
    );
    for &boundary in &boundaries {
        if boundary >= v2.len() {
            continue;
        }
        let mut corrupted = v2.clone();
        corrupted[boundary] ^= 0x01;
        let err = sketch_codec::from_bytes::<u64>(&corrupted).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt(_)),
            "flip at {boundary}: expected Corrupt, got {err}"
        );
    }
}

#[test]
fn legacy_fixture_loads_into_a_servable_sketch() {
    // The whole point of keeping v1 readable: a pre-upgrade file still
    // becomes a working sketch (semantic validation included).
    let wire = sketch_codec::load::<u64>(fixture_path()).unwrap();
    let sketch = opaq_core::QuantileSketch::from_wire(wire).unwrap();
    assert_eq!(sketch.total_elements(), 30);
    let est = sketch.estimate(0.5).unwrap();
    assert!(est.lower <= est.upper);
    assert!(est.lower >= 5 && est.upper <= 900);
}
