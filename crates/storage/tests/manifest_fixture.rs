//! Pin the version-1 write-ahead manifest record format with a checked-in
//! binary fixture (the manifest twin of `legacy_v1_fixture.rs`).
//!
//! The fixture at `tests/fixtures/manifest_v1.manifest` holds one record of
//! every kind, in append order: a `Publish` (acme/clicks v3, 5 s TTL,
//! `acme--clicks--v3.sketch`), a `TtlSet` clearing the TTL, and an `Evict`.
//! These tests assert that
//!
//! 1. the bytes replay exactly (record for record) forever — durable data
//!    dirs written today keep recovering across format bumps;
//! 2. the current encoder still produces these exact bytes, so the fixture
//!    pins the write path as well as the read path;
//! 3. truncation at *every* field boundary is reported as a torn tail (the
//!    expected residue of a crash), never as corruption;
//! 4. a checksum-visible flip at every field boundary of a complete record
//!    is caught as a typed error, never replayed as data.

use opaq_storage::manifest::{
    self, ManifestRecord, HEADER_LEN, MANIFEST_MAGIC, MANIFEST_NO_TTL, MANIFEST_VERSION,
};
use opaq_storage::StorageError;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/manifest_v1.manifest")
}

fn fixture_bytes() -> Vec<u8> {
    std::fs::read(fixture_path()).expect("fixture file is checked in")
}

fn expected() -> Vec<ManifestRecord> {
    vec![
        ManifestRecord::Publish {
            tenant: "acme".into(),
            dataset: "clicks".into(),
            version: 3,
            ttl_nanos: 5_000_000_000,
            sketch_file: "acme--clicks--v3.sketch".into(),
        },
        ManifestRecord::TtlSet {
            tenant: "acme".into(),
            dataset: "clicks".into(),
            ttl_nanos: MANIFEST_NO_TTL,
        },
        ManifestRecord::Evict {
            tenant: "acme".into(),
            dataset: "clicks".into(),
            version: 3,
        },
    ]
}

/// Field boundaries of one record, as offsets from its start.  Every record
/// kind shares the one body layout (tenant "acme", dataset "clicks"), so the
/// fixed-field offsets are identical across the fixture's three records.
fn record_field_boundaries(record_len: usize) -> Vec<usize> {
    let mut offsets = vec![
        0,  // magic
        7,  // version digit
        8,  // checksum
        16, // body_len
        24, // kind
        25, // tenant_len
        33, // tenant bytes ("acme")
        37, // dataset_len
        45, // dataset bytes ("clicks")
        51, // version
        59, // ttl_nanos
        67, // file_len
        75, // sketch file name bytes
        record_len,
    ];
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// `(start_offset, encoded_len)` of each record in the fixture.
fn record_extents(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    let mut offset = 0;
    while offset < bytes.len() {
        let (_, consumed) = manifest::decode_record(&bytes[offset..])
            .expect("fixture record decodes")
            .expect("fixture record is complete");
        extents.push((offset, consumed));
        offset += consumed;
    }
    extents
}

#[test]
fn fixture_replays_byte_exactly() {
    let bytes = fixture_bytes();
    assert_eq!(bytes.len(), 248, "fixture layout drifted");
    let replayed = manifest::replay_bytes(&bytes).unwrap();
    assert_eq!(replayed.records, expected());
    assert_eq!(replayed.torn_tail_bytes, 0);
    // Every record leads with the shared magic + version framing.
    for &(start, _) in &record_extents(&bytes) {
        assert_eq!(&bytes[start..start + 7], MANIFEST_MAGIC);
        assert_eq!(bytes[start + 7], MANIFEST_VERSION);
    }
    // Replaying through the file API gives the identical history.
    let from_file = manifest::replay(fixture_path()).unwrap();
    assert_eq!(from_file, replayed);
}

#[test]
fn current_encoder_regenerates_the_fixture_byte_for_byte() {
    // The fixture pins the write path too: if the encoder drifts, old data
    // dirs would stop being byte-compatible with new appends.
    let regenerated: Vec<u8> = expected()
        .iter()
        .flat_map(manifest::encode_record)
        .collect();
    assert_eq!(regenerated, fixture_bytes());
}

#[test]
fn truncation_at_every_field_boundary_is_a_torn_tail_not_corruption() {
    let bytes = fixture_bytes();
    let records = expected();
    for (idx, &(start, len)) in record_extents(&bytes).iter().enumerate() {
        for &boundary in &record_field_boundaries(len) {
            // A cut at the record's end is a clean prefix, not a torn tail;
            // the next record's `boundary == 0` covers that same offset.
            if boundary == len {
                continue;
            }
            let cut = start + boundary;
            let replayed = manifest::replay_bytes(&bytes[..cut]).unwrap();
            assert_eq!(
                replayed.records,
                records[..idx],
                "cut at {cut} (record {idx} + {boundary})"
            );
            assert_eq!(
                replayed.torn_tail_bytes, boundary as u64,
                "cut at {cut} (record {idx} + {boundary})"
            );
        }
    }
}

#[test]
fn checksum_flip_at_every_field_boundary_is_caught() {
    let bytes = fixture_bytes();
    for (idx, &(start, len)) in record_extents(&bytes).iter().enumerate() {
        for &boundary in &record_field_boundaries(len) {
            if boundary == len {
                continue;
            }
            let mut damaged = bytes.clone();
            damaged[start + boundary] ^= 0x01;
            let err = manifest::replay_bytes(&damaged).unwrap_err();
            // A flip in the version digit is a typed version mismatch;
            // everywhere else (magic, checksum, body_len, body) it must
            // surface as corruption — never as replayable data or a tail.
            let ok = match boundary {
                7 => matches!(err, StorageError::VersionMismatch { .. }),
                _ => matches!(err, StorageError::Corrupt(_)),
            };
            assert!(ok, "flip at record {idx} + {boundary}: {err}");
        }
    }
}

#[test]
fn fixture_survives_a_simulated_crash_append_and_truncation() {
    // Copy the fixture into a scratch log, tear half a record onto its tail
    // (what a power cut mid-append leaves), and verify recovery truncates
    // back to exactly the pinned history.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let path = std::env::temp_dir().join(format!(
        "opaq-manifest-fixture-{}-{nanos}.manifest",
        std::process::id()
    ));
    let bytes = fixture_bytes();
    let torn = manifest::encode_record(&expected()[0]);
    let mut log = bytes.clone();
    log.extend_from_slice(&torn[..HEADER_LEN + 3]);
    std::fs::write(&path, &log).unwrap();

    let replayed = manifest::replay_and_truncate(&path).unwrap();
    assert_eq!(replayed.records, expected());
    assert_eq!(replayed.torn_tail_bytes, (HEADER_LEN + 3) as u64);
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "log truncated clean");
    std::fs::remove_file(&path).unwrap();
}
