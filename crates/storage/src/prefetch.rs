//! Double-buffered read-ahead over a [`RunStore`].
//!
//! OPAQ's sample phase alternates between reading a run (I/O-bound) and
//! multi-selecting its regular samples (CPU-bound).  Issued sequentially the
//! two costs add; with a read-ahead thread they overlap, which is exactly the
//! trick the paper's SP-2 implementation used ("the I/O time can be almost
//! completely overlapped with the computation").  The reader thread buffers
//! at most `depth` runs in the channel — `depth = 2` is classic double
//! buffering — so peak memory is bounded by `(depth + 2) · m` keys (`depth`
//! buffered, plus one held by a reader blocked on a full channel, plus one
//! being processed by the consumer), preserving the paper's `r·s + m ≤ M`
//! memory discipline up to the small constant.
//!
//! The prefetcher is the I/O front end of `opaq-parallel`'s `ShardedOpaq`
//! dispatcher: one thread reads runs in order and fans them out to the
//! sampling workers while the next run is already on its way from disk.

use crate::{RunStore, StorageResult};
use std::sync::mpsc::sync_channel;

/// Classic double buffering: one run buffered while another is in flight.
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// Visit every run of `store` in order, reading up to `depth` runs ahead on
/// a background thread (`depth` is clamped to at least 1).
///
/// Runs are delivered to `f` strictly in layout order with exactly the bytes
/// [`RunStore::read_run`] would return; only the wall-clock overlap between
/// the read of run `i + 1` and the processing of run `i` distinguishes this
/// from [`RunStore::for_each_run`].
///
/// # Errors
/// The first [`crate::StorageError`] hit by the reader thread is returned
/// once every earlier run has been delivered; no later runs are read.
pub fn for_each_run_prefetched<K, S, F>(store: &S, depth: usize, mut f: F) -> StorageResult<()>
where
    K: Send,
    S: RunStore<K>,
    F: FnMut(u64, Vec<K>),
{
    let runs = store.layout().runs();
    if runs == 0 {
        return Ok(());
    }
    let depth = depth.max(1);
    std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<StorageResult<(u64, Vec<K>)>>(depth);
        scope.spawn(move || {
            for run in 0..runs {
                let item = store.read_run(run).map(|data| (run, data));
                let stop = item.is_err();
                // A send error means the consumer bailed out early; either
                // way there is nothing useful left to read.
                if tx.send(item).is_err() || stop {
                    return;
                }
            }
        });
        for item in rx {
            let (run, data) = item?;
            f(run, data);
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRunStore, StorageError};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn delivers_every_run_in_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let store = MemRunStore::new(data.clone(), 1024);
        let mut reassembled = Vec::new();
        let mut last_run = None;
        for_each_run_prefetched(&store, DEFAULT_PREFETCH_DEPTH, |run, chunk| {
            assert_eq!(run, last_run.map_or(0, |r: u64| r + 1), "strictly in order");
            last_run = Some(run);
            reassembled.extend(chunk);
        })
        .unwrap();
        assert_eq!(reassembled, data);
        assert_eq!(store.io_stats().snapshot().read_calls, 10);
    }

    #[test]
    fn matches_sequential_for_tail_runs_and_any_depth() {
        let data: Vec<u64> = (0..1037).map(|i| i * 7 % 97).collect();
        for depth in [0usize, 1, 2, 8] {
            let store = MemRunStore::new(data.clone(), 100);
            let mut sequential = Vec::new();
            store.for_each_run(|_, run| sequential.push(run)).unwrap();
            let mut prefetched = Vec::new();
            store
                .for_each_run_prefetched(depth, |_, run| prefetched.push(run))
                .unwrap();
            assert_eq!(sequential, prefetched, "depth {depth}");
        }
    }

    #[test]
    fn empty_store_is_a_no_op() {
        let store = MemRunStore::<u64>::new(vec![], 16);
        let mut calls = 0u64;
        for_each_run_prefetched(&store, 2, |_, _| calls += 1).unwrap();
        assert_eq!(calls, 0);
    }

    /// A store whose reads fail after a few runs: the error must surface
    /// after the successful prefix was delivered, and the reader must stop.
    struct FailingStore {
        inner: MemRunStore<u64>,
        fail_from: u64,
        reads: AtomicU64,
    }

    impl RunStore<u64> for FailingStore {
        fn layout(&self) -> crate::RunLayout {
            self.inner.layout()
        }

        fn read_run(&self, run: u64) -> StorageResult<Vec<u64>> {
            self.reads.fetch_add(1, Ordering::SeqCst);
            if run >= self.fail_from {
                return Err(StorageError::Corrupt(format!("injected failure at {run}")));
            }
            self.inner.read_run(run)
        }

        fn io_stats(&self) -> &crate::IoStats {
            self.inner.io_stats()
        }
    }

    #[test]
    fn reader_error_propagates_after_successful_prefix() {
        let store = FailingStore {
            inner: MemRunStore::new((0u64..1000).collect(), 100),
            fail_from: 4,
            reads: AtomicU64::new(0),
        };
        let mut delivered = Vec::new();
        let err = for_each_run_prefetched(&store, 2, |run, _| delivered.push(run)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert_eq!(delivered, vec![0, 1, 2, 3]);
        // The reader stops at the failure instead of hammering the store.
        assert_eq!(store.reads.load(Ordering::SeqCst), 5);
    }
}
