//! Double-buffered read-ahead over a [`RunStore`].
//!
//! OPAQ's sample phase alternates between reading a run (I/O-bound) and
//! multi-selecting its regular samples (CPU-bound).  Issued sequentially the
//! two costs add; with a read-ahead thread they overlap, which is exactly the
//! trick the paper's SP-2 implementation used ("the I/O time can be almost
//! completely overlapped with the computation").  The reader thread buffers
//! at most `depth` runs in the channel — `depth = 2` is classic double
//! buffering — so peak memory is bounded by `(depth + 2) · m` keys (`depth`
//! buffered, plus one held by a reader blocked on a full channel, plus one
//! being processed by the consumer), preserving the paper's `r·s + m ≤ M`
//! memory discipline up to the small constant.
//!
//! The prefetcher is the I/O front end of `opaq-parallel`'s `ShardedOpaq`
//! dispatcher: one thread reads runs in order and fans them out to the
//! sampling workers while the next run is already on its way from disk.
//!
//! ## Buffer recycling
//!
//! The reader thread draws its run buffers from a [`BufferPool`] and fills
//! them via [`RunStore::read_run_into`], so a consumer that returns each
//! buffer to the pool after processing ([`for_each_run_prefetched_pooled`])
//! keeps the whole pipeline running on the same `depth + 1` buffers — zero
//! per-run allocation in steady state.  The plain
//! [`for_each_run_prefetched`] hands the buffers to the consumer for keeps
//! (its callback takes ownership), matching the original semantics.

use crate::{RunStore, StorageResult};
use parking_lot::Mutex;
use std::sync::mpsc::sync_channel;

/// Classic double buffering: one run buffered while another is in flight.
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// A trivial free-list of run buffers shared between a reader and its
/// consumers.
///
/// `get` pops a recycled buffer (or hands out a fresh empty one) and `put`
/// clears and returns a buffer to the pool.  Locking happens once per run —
/// noise next to the run read itself.  Whether a pooled buffer actually
/// avoided an allocation is recorded by the store's
/// [`crate::IoStats`] buffer counters when the reader fills it.
#[derive(Debug)]
pub struct BufferPool<K> {
    bufs: Mutex<Vec<Vec<K>>>,
}

impl<K> Default for BufferPool<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> BufferPool<K> {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Take a buffer from the pool, or a fresh empty one if none is waiting.
    pub fn get(&self) -> Vec<K> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Clear `buf` and return it to the pool for the next [`BufferPool::get`].
    pub fn put(&self, mut buf: Vec<K>) {
        buf.clear();
        self.bufs.lock().push(buf);
    }

    /// How many buffers are currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().len()
    }
}

/// Visit every run of `store` in order, reading up to `depth` runs ahead on
/// a background thread (`depth` is clamped to at least 1).
///
/// Runs are delivered to `f` strictly in layout order with exactly the bytes
/// [`RunStore::read_run`] would return; only the wall-clock overlap between
/// the read of run `i + 1` and the processing of run `i` distinguishes this
/// from [`RunStore::for_each_run`].
///
/// # Errors
/// The first [`crate::StorageError`] hit by the reader thread is returned
/// once every earlier run has been delivered; no later runs are read.
pub fn for_each_run_prefetched<K, S, F>(store: &S, depth: usize, f: F) -> StorageResult<()>
where
    K: Send,
    S: RunStore<K>,
    F: FnMut(u64, Vec<K>),
{
    // A local pool that is never refilled (the callback keeps the buffers):
    // the reader draws fresh buffers every run, exactly as before.
    let pool = BufferPool::new();
    for_each_run_prefetched_pooled(store, depth, &pool, f)
}

/// [`for_each_run_prefetched`] drawing run buffers from `pool`.
///
/// The reader thread takes an empty buffer from the pool for every run and
/// fills it with [`RunStore::read_run_into`]; a consumer that calls
/// [`BufferPool::put`] when it is done with a run closes the recycling loop,
/// making the steady-state read path allocation-free.  Consumers are free
/// *not* to return a buffer (e.g. to keep the data) — the pool simply hands
/// out a fresh one next time.
///
/// # Errors
/// Identical to [`for_each_run_prefetched`].
pub fn for_each_run_prefetched_pooled<K, S, F>(
    store: &S,
    depth: usize,
    pool: &BufferPool<K>,
    mut f: F,
) -> StorageResult<()>
where
    K: Send,
    S: RunStore<K>,
    F: FnMut(u64, Vec<K>),
{
    let runs = store.layout().runs();
    if runs == 0 {
        return Ok(());
    }
    let depth = depth.max(1);
    std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<StorageResult<(u64, Vec<K>)>>(depth);
        scope.spawn(move || {
            for run in 0..runs {
                let mut buf = pool.get();
                let item = store.read_run_into(run, &mut buf).map(|()| (run, buf));
                let stop = item.is_err();
                // A send error means the consumer bailed out early; either
                // way there is nothing useful left to read.
                if tx.send(item).is_err() || stop {
                    return;
                }
            }
        });
        for item in rx {
            let (run, data) = item?;
            f(run, data);
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRunStore, StorageError};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn delivers_every_run_in_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let store = MemRunStore::new(data.clone(), 1024);
        let mut reassembled = Vec::new();
        let mut last_run = None;
        for_each_run_prefetched(&store, DEFAULT_PREFETCH_DEPTH, |run, chunk| {
            assert_eq!(run, last_run.map_or(0, |r: u64| r + 1), "strictly in order");
            last_run = Some(run);
            reassembled.extend(chunk);
        })
        .unwrap();
        assert_eq!(reassembled, data);
        assert_eq!(store.io_stats().snapshot().read_calls, 10);
    }

    #[test]
    fn matches_sequential_for_tail_runs_and_any_depth() {
        let data: Vec<u64> = (0..1037).map(|i| i * 7 % 97).collect();
        for depth in [0usize, 1, 2, 8] {
            let store = MemRunStore::new(data.clone(), 100);
            let mut sequential = Vec::new();
            store.for_each_run(|_, run| sequential.push(run)).unwrap();
            let mut prefetched = Vec::new();
            store
                .for_each_run_prefetched(depth, |_, run| prefetched.push(run))
                .unwrap();
            assert_eq!(sequential, prefetched, "depth {depth}");
        }
    }

    #[test]
    fn empty_store_is_a_no_op() {
        let store = MemRunStore::<u64>::new(vec![], 16);
        let mut calls = 0u64;
        for_each_run_prefetched(&store, 2, |_, _| calls += 1).unwrap();
        assert_eq!(calls, 0);
    }

    #[test]
    fn pooled_prefetch_recycles_buffers() {
        let data: Vec<u64> = (0..10_000).collect();
        let store = MemRunStore::new(data.clone(), 1000);
        let pool = BufferPool::new();
        let mut reassembled = Vec::new();
        for_each_run_prefetched_pooled(&store, 2, &pool, |_, chunk| {
            reassembled.extend_from_slice(&chunk);
            pool.put(chunk);
        })
        .unwrap();
        assert_eq!(reassembled, data);
        let s = store.io_stats().snapshot();
        assert_eq!(s.buffer_allocs + s.buffer_reuses, 10);
        // At most depth(2) buffered + 1 held by a blocked reader + 1 with the
        // consumer can be in flight before recycling kicks in, so at least
        // 6 of the 10 reads ride recycled capacity.
        assert!(s.buffer_allocs <= 4, "allocs: {}", s.buffer_allocs);
        assert!(pool.idle() >= 1);
    }

    #[test]
    fn pool_get_put_round_trip() {
        let pool: BufferPool<u32> = BufferPool::default();
        assert_eq!(pool.idle(), 0);
        let mut buf = pool.get();
        assert!(buf.is_empty());
        buf.extend_from_slice(&[1, 2, 3]);
        pool.put(buf);
        assert_eq!(pool.idle(), 1);
        let back = pool.get();
        assert!(back.is_empty(), "put clears the buffer");
        assert!(back.capacity() >= 3, "capacity survives the round trip");
    }

    /// A store whose reads fail after a few runs: the error must surface
    /// after the successful prefix was delivered, and the reader must stop.
    struct FailingStore {
        inner: MemRunStore<u64>,
        fail_from: u64,
        reads: AtomicU64,
    }

    impl RunStore<u64> for FailingStore {
        fn layout(&self) -> crate::RunLayout {
            self.inner.layout()
        }

        fn read_run(&self, run: u64) -> StorageResult<Vec<u64>> {
            self.reads.fetch_add(1, Ordering::SeqCst);
            if run >= self.fail_from {
                return Err(StorageError::Corrupt(format!("injected failure at {run}")));
            }
            self.inner.read_run(run)
        }

        fn io_stats(&self) -> &crate::IoStats {
            self.inner.io_stats()
        }
    }

    #[test]
    fn reader_error_propagates_after_successful_prefix() {
        let store = FailingStore {
            inner: MemRunStore::new((0u64..1000).collect(), 100),
            fail_from: 4,
            reads: AtomicU64::new(0),
        };
        let mut delivered = Vec::new();
        let err = for_each_run_prefetched(&store, 2, |run, _| delivered.push(run)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert_eq!(delivered, vec![0, 1, 2, 3]);
        // The reader stops at the failure instead of hammering the store.
        assert_eq!(store.reads.load(Ordering::SeqCst), 5);
    }
}
