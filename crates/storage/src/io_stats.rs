//! Shared I/O accounting.
//!
//! The paper reports that "the algorithm spends around 50% of the total
//! execution time in performing I/O" (Table 11) and breaks total time into
//! I/O / sampling / local merge / global merge fractions (Table 12).  To
//! reproduce those measurements we thread an [`IoStats`] handle through every
//! store: it counts bytes and read calls, accumulates the *measured* wall
//! time spent inside read system calls, and — when a
//! [`crate::DiskModel`] is attached to a store — the *modelled* disk time.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A cheap, cloneable handle to shared I/O counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Mutex<Counters>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    bytes_read: u64,
    bytes_written: u64,
    read_calls: u64,
    write_calls: u64,
    measured_nanos: u64,
    modelled_nanos: u64,
    buffer_allocs: u64,
    buffer_reuses: u64,
}

/// An immutable snapshot of the counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Total bytes read through instrumented stores.
    pub bytes_read: u64,
    /// Total bytes written through instrumented stores.
    pub bytes_written: u64,
    /// Number of run-read operations.
    pub read_calls: u64,
    /// Number of run/record write operations.
    pub write_calls: u64,
    /// Wall-clock time actually spent in read/write paths.
    pub measured: Duration,
    /// Disk time predicted by the attached [`crate::DiskModel`] (zero when no
    /// model is attached).
    pub modelled: Duration,
    /// Run reads that had to grow or allocate the destination key buffer
    /// (see [`crate::RunStore::read_run_into`]).
    pub buffer_allocs: u64,
    /// Run reads fully served by recycled buffer capacity — the
    /// allocation-free hot path.  `read_run` (which must hand out a fresh
    /// `Vec`) always counts as an alloc; stores that support
    /// `read_run_into` count a reuse whenever the caller's buffer already
    /// had room.
    pub buffer_reuses: u64,
}

impl IoStats {
    /// Create a fresh, zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes` bytes that took `measured` wall time and
    /// `modelled` modelled disk time.
    pub fn record_read(&self, bytes: u64, measured: Duration, modelled: Duration) {
        let mut c = self.inner.lock();
        c.bytes_read += bytes;
        c.read_calls += 1;
        c.measured_nanos += measured.as_nanos() as u64;
        c.modelled_nanos += modelled.as_nanos() as u64;
    }

    /// Record a write of `bytes` bytes that took `measured` wall time and
    /// `modelled` modelled disk time.
    pub fn record_write(&self, bytes: u64, measured: Duration, modelled: Duration) {
        let mut c = self.inner.lock();
        c.bytes_written += bytes;
        c.write_calls += 1;
        c.measured_nanos += measured.as_nanos() as u64;
        c.modelled_nanos += modelled.as_nanos() as u64;
    }

    /// Record whether a run read was served from recycled buffer capacity
    /// (`reused == true`) or had to allocate/grow the destination buffer.
    pub fn record_buffer(&self, reused: bool) {
        let mut c = self.inner.lock();
        if reused {
            c.buffer_reuses += 1;
        } else {
            c.buffer_allocs += 1;
        }
    }

    /// Take a snapshot of the current counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let c = *self.inner.lock();
        IoStatsSnapshot {
            bytes_read: c.bytes_read,
            bytes_written: c.bytes_written,
            read_calls: c.read_calls,
            write_calls: c.write_calls,
            measured: Duration::from_nanos(c.measured_nanos),
            modelled: Duration::from_nanos(c.modelled_nanos),
            buffer_allocs: c.buffer_allocs,
            buffer_reuses: c.buffer_reuses,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = Counters::default();
    }
}

impl IoStatsSnapshot {
    /// The I/O time to report: the modelled time when a disk model was in
    /// play (it dominates and is deterministic), otherwise the measured time.
    pub fn effective_io_time(&self) -> Duration {
        if self.modelled > Duration::ZERO {
            self.modelled
        } else {
            self.measured
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let s = IoStats::new().snapshot();
        assert_eq!(s, IoStatsSnapshot::default());
    }

    #[test]
    fn accumulates_reads_and_writes() {
        let stats = IoStats::new();
        stats.record_read(100, Duration::from_micros(5), Duration::from_micros(50));
        stats.record_read(200, Duration::from_micros(5), Duration::from_micros(100));
        stats.record_write(50, Duration::from_micros(1), Duration::ZERO);
        let s = stats.snapshot();
        assert_eq!(s.bytes_read, 300);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.read_calls, 2);
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.measured, Duration::from_micros(11));
        assert_eq!(s.modelled, Duration::from_micros(150));
    }

    #[test]
    fn clones_share_counters() {
        let stats = IoStats::new();
        let clone = stats.clone();
        clone.record_read(8, Duration::ZERO, Duration::ZERO);
        assert_eq!(stats.snapshot().bytes_read, 8);
    }

    #[test]
    fn buffer_counters_accumulate() {
        let stats = IoStats::new();
        stats.record_buffer(false);
        stats.record_buffer(true);
        stats.record_buffer(true);
        let s = stats.snapshot();
        assert_eq!(s.buffer_allocs, 1);
        assert_eq!(s.buffer_reuses, 2);
    }

    #[test]
    fn reset_clears() {
        let stats = IoStats::new();
        stats.record_read(8, Duration::from_secs(1), Duration::ZERO);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn effective_io_time_prefers_modelled() {
        let mut s = IoStatsSnapshot {
            measured: Duration::from_millis(1),
            ..Default::default()
        };
        assert_eq!(s.effective_io_time(), Duration::from_millis(1));
        s.modelled = Duration::from_millis(7);
        assert_eq!(s.effective_io_time(), Duration::from_millis(7));
    }
}
