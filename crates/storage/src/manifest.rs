//! Write-ahead publication manifest for the serving catalog.
//!
//! The serving layer (`opaq-serve`) swaps sketch versions in memory with an
//! epoch swap; this module is what makes those swaps *durable*.  Every
//! publish, evict and TTL change appends one self-framed record here — synced
//! to disk **before** the in-memory swap — so a restarted process can replay
//! the log and rebuild the exact catalog: entries, sequential versions and
//! TTLs.  The record framing deliberately mirrors [`crate::sketch_codec`]
//! (magic + ASCII version digit + FNV-1a checksum + LE body) so one set of
//! integrity idioms covers every persisted artefact.
//!
//! ## Record format (version 1)
//!
//! ```text
//! magic     "OPAQMAN"                      7 bytes
//! version   ASCII digit, currently '1'     1 byte
//! checksum  FNV-1a 64 over the body        u64 LE
//! body_len                                 u64 LE
//! body:
//!   kind                                   u8  (1 publish, 2 evict, 3 ttl-set)
//!   tenant_len, tenant bytes               u64 LE + UTF-8
//!   dataset_len, dataset bytes             u64 LE + UTF-8
//!   version                                u64 LE
//!   ttl_nanos (u64::MAX = no TTL)          u64 LE
//!   file_len, sketch file name bytes       u64 LE + UTF-8
//! ```
//!
//! Every record kind shares the one body layout (unused fields are zero /
//! empty), which keeps the field-boundary truncation analysis — and the
//! fixture that pins it — exhaustive and simple.
//!
//! ## Crash semantics
//!
//! A crash can leave exactly one *incomplete* record at the tail of the log
//! (appends are sequential and synced).  [`replay`] distinguishes the two
//! failure shapes:
//!
//! * **Torn tail** — the remaining bytes are shorter than the record they
//!   started: expected after a crash, reported via
//!   [`ManifestReplay::torn_tail_bytes`] and truncated away by
//!   [`replay_and_truncate`] so the log is clean for the next writer.
//! * **Corruption** — a *complete* record whose magic, version digit,
//!   checksum or structure is wrong: never produced by a crash, surfaced as
//!   a typed [`StorageError::Corrupt`] (or
//!   [`StorageError::VersionMismatch`]) instead of being silently dropped.

use crate::{StorageError, StorageResult};
use bytes::{Buf, BufMut};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of every manifest record, followed by the version digit.
pub const MANIFEST_MAGIC: &[u8; 7] = b"OPAQMAN";

/// The manifest record version this build writes.
pub const MANIFEST_VERSION: u8 = b'1';

/// Fixed prefix of every record: magic, version, checksum, body length.
pub const HEADER_LEN: usize = 7 + 1 + 8 + 8;

/// Upper bound on a declared body length.  Bodies hold a kind byte, three
/// u64s and three length-prefixed names; anything near this limit is damage,
/// and rejecting it keeps a corrupt length from masquerading as a torn tail
/// (or allocating unbounded memory).
const MAX_BODY_LEN: u64 = 1 << 20;

/// TTL sentinel meaning "never goes stale" — mirrors the catalog's `NO_TTL`.
pub const MANIFEST_NO_TTL: u64 = u64::MAX;

/// One durable catalog state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestRecord {
    /// A new sketch version became the entry's servable truth.  The sketch
    /// bytes live in `sketch_file` (relative to the manifest's directory),
    /// synced before this record was appended.
    Publish {
        /// Owning tenant.
        tenant: String,
        /// Dataset within the tenant.
        dataset: String,
        /// The published version (strictly increasing per entry).
        version: u64,
        /// TTL in nanoseconds at publish time; [`MANIFEST_NO_TTL`] for none.
        ttl_nanos: u64,
        /// File name of the persisted sketch, relative to the data dir.
        sketch_file: String,
    },
    /// The entry's resident copy was dropped to its persisted file (the
    /// spill tier); the version is unchanged and still servable from disk.
    Evict {
        /// Owning tenant.
        tenant: String,
        /// Dataset within the tenant.
        dataset: String,
        /// Version that was evicted (still the entry's current version).
        version: u64,
    },
    /// The entry's TTL was changed without publishing a new version.
    TtlSet {
        /// Owning tenant.
        tenant: String,
        /// Dataset within the tenant.
        dataset: String,
        /// New TTL in nanoseconds; [`MANIFEST_NO_TTL`] for none.
        ttl_nanos: u64,
    },
}

impl ManifestRecord {
    /// The record's tenant/dataset key, for replay bookkeeping.
    pub fn key(&self) -> (&str, &str) {
        match self {
            ManifestRecord::Publish {
                tenant, dataset, ..
            }
            | ManifestRecord::Evict {
                tenant, dataset, ..
            }
            | ManifestRecord::TtlSet {
                tenant, dataset, ..
            } => (tenant, dataset),
        }
    }

    fn kind(&self) -> u8 {
        match self {
            ManifestRecord::Publish { .. } => 1,
            ManifestRecord::Evict { .. } => 2,
            ManifestRecord::TtlSet { .. } => 3,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u64_le(s.len() as u64);
    out.put_slice(s.as_bytes());
}

/// Encode one record into its self-framed byte form.
pub fn encode_record(record: &ManifestRecord) -> Vec<u8> {
    let (tenant, dataset) = record.key();
    let (version, ttl_nanos, sketch_file) = match record {
        ManifestRecord::Publish {
            version,
            ttl_nanos,
            sketch_file,
            ..
        } => (*version, *ttl_nanos, sketch_file.as_str()),
        ManifestRecord::Evict { version, .. } => (*version, 0, ""),
        ManifestRecord::TtlSet { ttl_nanos, .. } => (0, *ttl_nanos, ""),
    };

    let mut body = Vec::new();
    body.put_u8(record.kind());
    put_str(&mut body, tenant);
    put_str(&mut body, dataset);
    body.put_u64_le(version);
    body.put_u64_le(ttl_nanos);
    put_str(&mut body, sketch_file);

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.put_slice(MANIFEST_MAGIC);
    out.put_u8(MANIFEST_VERSION);
    out.put_u64_le(fnv1a(&body));
    out.put_u64_le(body.len() as u64);
    out.put_slice(&body);
    out
}

fn get_str(body: &mut &[u8], what: &str) -> StorageResult<String> {
    if body.remaining() < 8 {
        return Err(StorageError::Corrupt(format!(
            "manifest record body ends inside the {what} length"
        )));
    }
    let len = body.get_u64_le() as usize;
    if body.remaining() < len {
        return Err(StorageError::Corrupt(format!(
            "manifest record declares a {len}-byte {what} but only {} bytes remain",
            body.remaining()
        )));
    }
    let (head, tail) = body.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| StorageError::Corrupt(format!("manifest record {what} is not UTF-8")))?
        .to_owned();
    *body = tail;
    Ok(s)
}

/// Decode the record at the front of `bytes`.
///
/// Returns `Ok(Some((record, consumed)))` on success and `Ok(None)` when the
/// bytes are a *prefix* of a record (a torn tail: fewer bytes than the header
/// plus declared body — the expected residue of a crash mid-append).
///
/// # Errors
/// [`StorageError::Corrupt`] for a structurally complete but damaged record
/// (bad magic, checksum mismatch, unknown kind, malformed body) and
/// [`StorageError::VersionMismatch`] for a version digit this build does not
/// understand — damage is never misreported as a torn tail.
pub fn decode_record(bytes: &[u8]) -> StorageResult<Option<(ManifestRecord, usize)>> {
    if bytes.len() >= 7 && &bytes[..7] != MANIFEST_MAGIC {
        // Even a torn record starts with the full magic (appends are
        // sequential), so a wrong prefix is corruption, not a crash.
        return Err(StorageError::Corrupt(
            "not an OPAQ manifest record (bad magic)".into(),
        ));
    }
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    let version = bytes[7];
    if version != MANIFEST_VERSION {
        return Err(StorageError::VersionMismatch {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if body_len > MAX_BODY_LEN {
        return Err(StorageError::Corrupt(format!(
            "manifest record declares an implausible {body_len}-byte body (limit {MAX_BODY_LEN})"
        )));
    }
    let body_len = body_len as usize;
    if bytes.len() < HEADER_LEN + body_len {
        return Ok(None);
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    let actual = fnv1a(body);
    if declared != actual {
        return Err(StorageError::Corrupt(format!(
            "manifest record checksum mismatch: header declares {declared:#018x}, body hashes to \
             {actual:#018x}"
        )));
    }

    let mut cursor = body;
    if cursor.remaining() < 1 {
        return Err(StorageError::Corrupt(
            "manifest record body is empty".into(),
        ));
    }
    let kind = cursor.get_u8();
    let tenant = get_str(&mut cursor, "tenant")?;
    let dataset = get_str(&mut cursor, "dataset")?;
    if cursor.remaining() < 16 {
        return Err(StorageError::Corrupt(
            "manifest record body ends inside the version/ttl fields".into(),
        ));
    }
    let version = cursor.get_u64_le();
    let ttl_nanos = cursor.get_u64_le();
    let sketch_file = get_str(&mut cursor, "sketch file name")?;
    if cursor.remaining() > 0 {
        return Err(StorageError::Corrupt(format!(
            "manifest record has {} trailing bytes after its fields",
            cursor.remaining()
        )));
    }

    let record = match kind {
        1 => ManifestRecord::Publish {
            tenant,
            dataset,
            version,
            ttl_nanos,
            sketch_file,
        },
        2 => ManifestRecord::Evict {
            tenant,
            dataset,
            version,
        },
        3 => ManifestRecord::TtlSet {
            tenant,
            dataset,
            ttl_nanos,
        },
        other => {
            return Err(StorageError::Corrupt(format!(
                "manifest record has unknown kind {other}"
            )))
        }
    };
    Ok(Some((record, HEADER_LEN + body_len)))
}

/// The result of replaying a manifest log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestReplay {
    /// Every complete record, in append order.
    pub records: Vec<ManifestRecord>,
    /// Bytes of incomplete record left at the tail by a crash (0 for a
    /// cleanly closed log).
    pub torn_tail_bytes: u64,
}

fn io_context(op: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(std::io::Error::new(
        e.kind(),
        format!("{op} manifest {}: {e}", path.display()),
    ))
}

/// Replay every complete record in `path` without modifying the file.
/// A missing file replays as empty (a fresh data dir has no history yet).
///
/// # Errors
/// Typed [`StorageError::Corrupt`] / [`StorageError::VersionMismatch`] on a
/// damaged complete record; I/O errors with path context.
pub fn replay(path: impl AsRef<Path>) -> StorageResult<ManifestReplay> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_context("read", path, e)),
    };
    replay_bytes(&bytes)
}

/// Replay an in-memory manifest image (the workhorse behind [`replay`]).
///
/// # Errors
/// Same contract as [`replay`].
pub fn replay_bytes(mut bytes: &[u8]) -> StorageResult<ManifestReplay> {
    let mut out = ManifestReplay::default();
    while !bytes.is_empty() {
        match decode_record(bytes)? {
            Some((record, consumed)) => {
                out.records.push(record);
                bytes = &bytes[consumed..];
            }
            None => {
                out.torn_tail_bytes = bytes.len() as u64;
                break;
            }
        }
    }
    Ok(out)
}

/// Fold a replayed record sequence into its **version vector**: the last
/// published version per `(tenant, dataset)`.  This is the canonical
/// derivation the replication layer reconciles against — `Evict` keeps the
/// version (the entry is still servable from disk) and `TtlSet` is a local
/// serving policy, so only `Publish` records move the vector, and a record
/// sequence replayed on any replica folds to the same vector.
pub fn version_vector(
    records: &[ManifestRecord],
) -> std::collections::BTreeMap<(String, String), u64> {
    let mut vector = std::collections::BTreeMap::new();
    for record in records {
        if let ManifestRecord::Publish {
            tenant,
            dataset,
            version,
            ..
        } = record
        {
            vector.insert((tenant.clone(), dataset.clone()), *version);
        }
    }
    vector
}

/// Replay `path` and, if a torn tail was found, truncate the file back to
/// its last complete record so the next writer appends onto a clean log.
///
/// # Errors
/// Same contract as [`replay`], plus I/O errors from the truncation itself.
pub fn replay_and_truncate(path: impl AsRef<Path>) -> StorageResult<ManifestReplay> {
    let path = path.as_ref();
    let replayed = replay(path)?;
    if replayed.torn_tail_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_context("open", path, e))?;
        let keep: u64 = replayed
            .records
            .iter()
            .map(|r| encode_record(r).len() as u64)
            .sum();
        file.set_len(keep)
            .map_err(|e| io_context("truncate", path, e))?;
        file.sync_data().map_err(|e| io_context("sync", path, e))?;
    }
    Ok(replayed)
}

/// Fault injected into [`ManifestWriter::append`] to simulate a crash at a
/// manifest-write boundary: the writer persists only the first `keep_bytes`
/// of the encoded record, then fails.  One-shot — the next append is clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// Persist a `keep_bytes` prefix of the record, then report failure —
    /// exactly the torn tail a power cut mid-append leaves behind.
    TornWrite {
        /// How much of the encoded record reaches disk before the "crash".
        keep_bytes: usize,
    },
}

/// Append-only handle on a manifest log.  Each [`append`](Self::append)
/// writes one framed record and syncs file data before returning: once it
/// returns `Ok`, the record survives a crash.
#[derive(Debug)]
pub struct ManifestWriter {
    file: File,
    path: PathBuf,
    records_appended: u64,
    fault: Option<AppendFault>,
}

impl ManifestWriter {
    /// Open `path` for appending, creating it if absent.  Callers are
    /// expected to have replayed (and truncated) the log first.
    ///
    /// # Errors
    /// I/O errors with path context.
    pub fn open(path: impl Into<PathBuf>) -> StorageResult<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_context("open", &path, e))?;
        Ok(ManifestWriter {
            file,
            path,
            records_appended: 0,
            fault: None,
        })
    }

    /// Append one record and sync it to disk.  On success the record is
    /// durable; on failure the log may hold a torn tail, which the next
    /// replay truncates.
    ///
    /// # Errors
    /// I/O errors with path context (including the injected fault).
    pub fn append(&mut self, record: &ManifestRecord) -> StorageResult<()> {
        let bytes = encode_record(record);
        if let Some(AppendFault::TornWrite { keep_bytes }) = self.fault.take() {
            let keep = keep_bytes.min(bytes.len());
            self.file
                .write_all(&bytes[..keep])
                .and_then(|()| self.file.sync_data())
                .map_err(|e| io_context("append", &self.path, e))?;
            return Err(StorageError::Io(std::io::Error::other(format!(
                "injected torn write: {keep} of {} record bytes persisted to {}",
                bytes.len(),
                self.path.display()
            ))));
        }
        self.file
            .write_all(&bytes)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_context("append", &self.path, e))?;
        self.records_appended += 1;
        Ok(())
    }

    /// Records successfully appended through this handle (not the replayed
    /// history).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Arm a one-shot fault on the next [`append`](Self::append) — test
    /// instrumentation for crash-recovery coverage.
    pub fn inject_fault(&mut self, fault: AppendFault) {
        self.fault = Some(fault);
    }

    /// The log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<ManifestRecord> {
        vec![
            ManifestRecord::Publish {
                tenant: "acme".into(),
                dataset: "clicks".into(),
                version: 1,
                ttl_nanos: 5_000_000_000,
                sketch_file: "acme--clicks--v1.sketch".into(),
            },
            ManifestRecord::TtlSet {
                tenant: "acme".into(),
                dataset: "clicks".into(),
                ttl_nanos: MANIFEST_NO_TTL,
            },
            ManifestRecord::Evict {
                tenant: "acme".into(),
                dataset: "clicks".into(),
                version: 1,
            },
        ]
    }

    fn temp_path(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "opaq-manifest-{tag}-{}-{nanos}.manifest",
            std::process::id()
        ))
    }

    #[test]
    fn every_record_kind_round_trips() {
        for record in sample_records() {
            let bytes = encode_record(&record);
            let (decoded, consumed) = decode_record(&bytes).unwrap().unwrap();
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn every_truncation_is_a_torn_tail_not_corruption() {
        for record in sample_records() {
            let bytes = encode_record(&record);
            for cut in 0..bytes.len() {
                let replayed = replay_bytes(&bytes[..cut]).unwrap();
                assert!(replayed.records.is_empty(), "cut at {cut}");
                assert_eq!(replayed.torn_tail_bytes, cut as u64, "cut at {cut}");
            }
        }
    }

    #[test]
    fn every_flipped_bit_in_the_body_fails_the_checksum() {
        let bytes = encode_record(&sample_records()[0]);
        for i in HEADER_LEN..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x40;
            let err = decode_record(&damaged).unwrap_err();
            assert!(matches!(err, StorageError::Corrupt(_)), "byte {i}: {err}");
            assert!(err.to_string().contains("checksum"), "byte {i}: {err}");
        }
    }

    #[test]
    fn bad_magic_and_unknown_version_are_typed() {
        let bytes = encode_record(&sample_records()[0]);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_record(&bad_magic),
            Err(StorageError::Corrupt(_))
        ));
        // A wrong magic is corruption even when fewer than HEADER_LEN bytes
        // remain — damage must not hide behind the torn-tail path.
        assert!(matches!(
            decode_record(&bad_magic[..10]),
            Err(StorageError::Corrupt(_))
        ));
        let mut bad_version = bytes.clone();
        bad_version[7] = b'9';
        assert!(matches!(
            decode_record(&bad_version),
            Err(StorageError::VersionMismatch {
                found: b'9',
                supported: MANIFEST_VERSION
            })
        ));
    }

    #[test]
    fn implausible_body_length_is_corruption_not_torn_tail() {
        let mut bytes = encode_record(&sample_records()[0]);
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_record(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_corruption() {
        let record = &sample_records()[0];
        let bytes = encode_record(record);
        // Patch the kind byte and re-seal the checksum: structure intact,
        // meaning unknown.
        let mut unknown = bytes.clone();
        unknown[HEADER_LEN] = 9;
        let sum = fnv1a(&unknown[HEADER_LEN..]);
        unknown[8..16].copy_from_slice(&sum.to_le_bytes());
        let err = decode_record(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");

        // Extend the body by one sealed byte: trailing garbage.
        let mut padded_body = bytes[HEADER_LEN..].to_vec();
        padded_body.push(0);
        let mut padded = Vec::new();
        padded.put_slice(MANIFEST_MAGIC);
        padded.put_u8(MANIFEST_VERSION);
        padded.put_u64_le(fnv1a(&padded_body));
        padded.put_u64_le(padded_body.len() as u64);
        padded.put_slice(&padded_body);
        let err = decode_record(&padded).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn replay_walks_multiple_records_and_reports_torn_tail() {
        let records = sample_records();
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&encode_record(r));
        }
        let clean = replay_bytes(&log).unwrap();
        assert_eq!(clean.records, records);
        assert_eq!(clean.torn_tail_bytes, 0);

        let torn_record = encode_record(&records[0]);
        for cut in 1..torn_record.len() {
            let mut torn = log.clone();
            torn.extend_from_slice(&torn_record[..cut]);
            let replayed = replay_bytes(&torn).unwrap();
            assert_eq!(replayed.records, records, "cut at {cut}");
            assert_eq!(replayed.torn_tail_bytes, cut as u64, "cut at {cut}");
        }
    }

    #[test]
    fn writer_appends_and_replay_truncate_round_trip() {
        let path = temp_path("roundtrip");
        let records = sample_records();
        {
            let mut writer = ManifestWriter::open(&path).unwrap();
            for r in &records {
                writer.append(r).unwrap();
            }
            assert_eq!(writer.records_appended(), 3);
        }
        assert_eq!(replay(&path).unwrap().records, records);

        // Simulate a crash: half a record at the tail.
        let torn = encode_record(&records[0]);
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let replayed = replay_and_truncate(&path).unwrap();
        assert_eq!(replayed.records, records);
        assert_eq!(replayed.torn_tail_bytes, (torn.len() / 2) as u64);
        // The file is clean again: a fresh writer appends onto whole records.
        let mut writer = ManifestWriter::open(&path).unwrap();
        writer.append(&records[1]).unwrap();
        let after = replay(&path).unwrap();
        assert_eq!(after.records.len(), 4);
        assert_eq!(after.torn_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fault_leaves_exactly_the_declared_torn_prefix() {
        let record = &sample_records()[0];
        let encoded = encode_record(record);
        for keep in [0, 1, HEADER_LEN - 1, HEADER_LEN, encoded.len() - 1] {
            let path = temp_path(&format!("fault-{keep}"));
            let mut writer = ManifestWriter::open(&path).unwrap();
            writer.inject_fault(AppendFault::TornWrite { keep_bytes: keep });
            let err = writer.append(record).unwrap_err();
            assert!(err.to_string().contains("injected torn write"), "{err}");
            assert_eq!(writer.records_appended(), 0);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64);
            let replayed = replay_and_truncate(&path).unwrap();
            assert!(replayed.records.is_empty());
            assert_eq!(replayed.torn_tail_bytes, keep as u64);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
            // The fault is one-shot: the retry lands cleanly.
            writer.append(record).unwrap();
            assert_eq!(replay(&path).unwrap().records, vec![record.clone()]);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn missing_manifest_replays_as_empty() {
        let replayed = replay(temp_path("missing")).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.torn_tail_bytes, 0);
    }
}
