//! The [`RunStore`] trait: a source of disk-resident runs.

use crate::{IoStats, RunLayout};
use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The store is inconsistent with its declared layout (truncated file,
    /// wrong record width, …).
    Corrupt(String),
    /// A run index outside `0..layout.runs()` was requested.
    RunOutOfRange {
        /// Requested run index.
        requested: u64,
        /// Number of runs actually available.
        available: u64,
    },
    /// The requested `(n, m)` run layout is ill-formed (`m == 0`, or a store
    /// declared over zero keys where the caller requires data).
    InvalidLayout {
        /// Declared number of keys.
        n: u64,
        /// Declared run length.
        m: u64,
        /// What is wrong with the combination.
        reason: String,
    },
    /// A persisted artefact (e.g. a saved sketch) declares a format version
    /// this build does not understand — written by a newer build, or the
    /// version byte itself is damage.  Distinct from [`StorageError::Corrupt`]
    /// so callers can suggest "upgrade" rather than "re-ingest".
    VersionMismatch {
        /// Version byte found in the file.
        found: u8,
        /// Newest format version this build can read.
        supported: u8,
    },
}

impl StorageError {
    /// Shorthand constructor for [`StorageError::InvalidLayout`].
    pub fn invalid_layout(n: u64, m: u64, reason: impl Into<String>) -> Self {
        StorageError::InvalidLayout {
            n,
            m,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt run store: {msg}"),
            StorageError::RunOutOfRange {
                requested,
                available,
            } => {
                write!(
                    f,
                    "run {requested} out of range (store has {available} runs)"
                )
            }
            StorageError::InvalidLayout { n, m, reason } => {
                write!(f, "invalid run layout (n = {n}, m = {m}): {reason}")
            }
            StorageError::VersionMismatch { found, supported } => {
                // Versions are ASCII digits on disk; show the digit when the
                // byte is printable, the raw value when it is damage.
                let show = |b: u8| {
                    if b.is_ascii_graphic() {
                        format!("'{}'", b as char)
                    } else {
                        format!("{b:#04x}")
                    }
                };
                write!(
                    f,
                    "unsupported format version {} (newest supported: {})",
                    show(*found),
                    show(*supported)
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

/// A source of run-partitioned, disk-resident data with key type `K`.
///
/// OPAQ reads each run exactly once; implementations therefore optimise for
/// sequential whole-run reads rather than random record access.
pub trait RunStore<K>: Send + Sync {
    /// The run layout (total elements, run length, number of runs).
    fn layout(&self) -> RunLayout;

    /// Read run `run` (0-based) entirely into memory.
    fn read_run(&self, run: u64) -> StorageResult<Vec<K>>;

    /// Read run `run` into `buf` (cleared first), reusing the buffer's
    /// existing capacity.
    ///
    /// This is the allocation-free twin of [`RunStore::read_run`]: callers
    /// that process one run at a time (the sample phase, the sharded
    /// dispatcher) keep recycling the same buffer, so after the first run no
    /// allocation happens on the read path.  The default implementation
    /// falls back to [`RunStore::read_run`] and replaces `buf` wholesale;
    /// [`crate::FileRunStore`] and [`crate::MemRunStore`] override it to
    /// decode straight into the buffer and to record
    /// alloc-vs-reuse counters in their [`IoStats`].
    ///
    /// On error `buf` may be left cleared, but never holds partial garbage.
    fn read_run_into(&self, run: u64, buf: &mut Vec<K>) -> StorageResult<()> {
        *buf = self.read_run(run)?;
        Ok(())
    }

    /// The shared I/O statistics handle for this store.
    fn io_stats(&self) -> &IoStats;

    /// Total number of elements (shorthand for `layout().n()`).
    fn len(&self) -> u64 {
        self.layout().n()
    }

    /// Whether the store holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every run in order, calling `f(run_index, run_data)`.
    ///
    /// This is the one-pass access pattern OPAQ uses: the default
    /// implementation simply reads runs sequentially.
    fn for_each_run(&self, mut f: impl FnMut(u64, Vec<K>)) -> StorageResult<()>
    where
        Self: Sized,
    {
        for run in 0..self.layout().runs() {
            let data = self.read_run(run)?;
            f(run, data);
        }
        Ok(())
    }

    /// Visit every run in order with a background read-ahead thread keeping
    /// up to `depth` runs buffered, so I/O overlaps the caller's processing
    /// (`depth = 2` is classic double buffering).
    ///
    /// Semantics are identical to [`RunStore::for_each_run`] — same order,
    /// same data, same error propagation — only the wall-clock overlap
    /// differs.  See [`crate::prefetch`] for details.
    fn for_each_run_prefetched(&self, depth: usize, f: impl FnMut(u64, Vec<K>)) -> StorageResult<()>
    where
        Self: Sized,
        K: Send,
    {
        crate::prefetch::for_each_run_prefetched(self, depth, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_error_display() {
        let e = StorageError::RunOutOfRange {
            requested: 7,
            available: 3,
        };
        assert!(e.to_string().contains("run 7"));
        let e = StorageError::Corrupt("short file".into());
        assert!(e.to_string().contains("short file"));
        let e: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e: StorageError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(StorageError::Corrupt("y".into()).source().is_none());
    }
}
