//! Disk-resident data substrate for the OPAQ reproduction.
//!
//! The OPAQ paper assumes "the data size is larger than the size of the
//! memory and the data is disk-resident" and reads it as `r = n/m` *runs* of
//! `m` elements each, where a run fits in main memory.  This crate provides
//! everything the algorithm needs to stream such data:
//!
//! * [`codec`] — fixed-width binary encoding of record keys ([`codec::FixedWidthCodec`]).
//! * [`layout`] — the [`layout::RunLayout`] arithmetic (`n`, `m`, `r`, tail runs).
//! * [`io_stats`] — shared [`io_stats::IoStats`] counters: bytes, calls,
//!   measured wall time and *modelled* disk time.
//! * [`disk_model`] — a simple seek + bandwidth [`disk_model::DiskModel`] used
//!   to reproduce the paper's I/O-bound regime (Tables 11–12) independently of
//!   how fast the host page cache happens to be.
//! * [`run_store`] — the [`run_store::RunStore`] trait: a source of runs.
//! * [`sketch_codec`] — the versioned, checksummed on-disk sketch format
//!   ([`sketch_codec::SketchWire`]), shared by the CLI's persistence and the
//!   serving catalog's spill/reload path.
//! * [`manifest`] — the write-ahead publication log behind the serving
//!   catalog's durable mode ([`manifest::ManifestRecord`],
//!   [`manifest::ManifestWriter`], [`manifest::replay`]): same
//!   magic/version/checksum framing as the sketch codec, with torn-tail
//!   truncation for crash recovery.
//! * [`file_store`] — a file-backed implementation with buffered sequential reads.
//! * [`mem_store`] — an in-memory implementation for tests and small inputs.
//! * [`prefetch`] — double-buffered read-ahead
//!   ([`prefetch::for_each_run_prefetched`], also available as
//!   [`run_store::RunStore::for_each_run_prefetched`]): a background reader
//!   thread keeps up to `depth` runs buffered so I/O overlaps the consumer's
//!   sampling work.  This is the I/O front end of the sharded ingestion path
//!   in `opaq-parallel`.
//!
//! The stores are deliberately *pull*-oriented (`read_run(i) -> Vec<K>`,
//! with the allocation-free twin `read_run_into(i, &mut Vec<K>)` recycling a
//! caller buffer): OPAQ's one-pass structure means each run is read exactly
//! once, processed entirely in memory, and dropped.  The prefetcher
//! preserves that discipline — delivery order, contents and error
//! propagation are identical to the sequential path; only the wall-clock
//! overlap differs.  [`prefetch::BufferPool`] closes the recycling loop for
//! prefetched consumers, and every store counts buffer reuse vs. allocation
//! in its [`IoStats`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod disk_model;
pub mod file_store;
pub mod io_stats;
pub mod layout;
pub mod manifest;
pub mod mem_store;
pub mod prefetch;
pub mod run_store;
pub mod sketch_codec;

pub use codec::FixedWidthCodec;
pub use disk_model::DiskModel;
pub use file_store::{FileRunStore, FileRunStoreBuilder};
pub use io_stats::{IoStats, IoStatsSnapshot};
pub use layout::RunLayout;
pub use manifest::{version_vector, AppendFault, ManifestRecord, ManifestReplay, ManifestWriter};
pub use mem_store::MemRunStore;
pub use prefetch::{
    for_each_run_prefetched, for_each_run_prefetched_pooled, BufferPool, DEFAULT_PREFETCH_DEPTH,
};
pub use run_store::{RunStore, StorageError, StorageResult};
pub use sketch_codec::SketchWire;
