//! Fixed-width binary encoding of record keys.
//!
//! The paper's experiments use 4-byte integer keys; this codec generalises to
//! any fixed-width key so the library can store `u32`, `u64`, `i32`, `i64`
//! and order-preserving `f64` keys on disk without a serialization framework.

use bytes::{Buf, BufMut};

/// A key type that can be written to and read from a fixed number of bytes.
///
/// Implementations must round-trip exactly: `decode(encode(x)) == x`.
pub trait FixedWidthCodec: Copy + Send + Sync + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Decode a value from the front of `buf`, advancing it by [`Self::WIDTH`].
    fn decode<B: Buf>(buf: &mut B) -> Self;
}

macro_rules! impl_codec_int {
    ($ty:ty, $put:ident, $get:ident, $width:expr) => {
        impl FixedWidthCodec for $ty {
            const WIDTH: usize = $width;

            #[inline]
            fn encode<B: BufMut>(&self, buf: &mut B) {
                buf.$put(*self);
            }

            #[inline]
            fn decode<B: Buf>(buf: &mut B) -> Self {
                buf.$get()
            }
        }
    };
}

impl_codec_int!(u32, put_u32_le, get_u32_le, 4);
impl_codec_int!(u64, put_u64_le, get_u64_le, 8);
impl_codec_int!(i32, put_i32_le, get_i32_le, 4);
impl_codec_int!(i64, put_i64_le, get_i64_le, 8);

impl FixedWidthCodec for f64 {
    const WIDTH: usize = 8;

    #[inline]
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64_le(*self);
    }

    #[inline]
    fn decode<B: Buf>(buf: &mut B) -> Self {
        buf.get_f64_le()
    }
}

/// Encode a whole slice of keys into a byte vector.
pub fn encode_slice<K: FixedWidthCodec>(keys: &[K]) -> Vec<u8> {
    let mut out = Vec::with_capacity(keys.len() * K::WIDTH);
    for k in keys {
        k.encode(&mut out);
    }
    out
}

/// Decode `count` keys from a byte slice.
///
/// # Panics
/// Panics if `bytes.len() < count * K::WIDTH`.
pub fn decode_slice<K: FixedWidthCodec>(mut bytes: &[u8], count: usize) -> Vec<K> {
    assert!(
        bytes.len() >= count * K::WIDTH,
        "byte buffer too small: {} bytes for {} keys of width {}",
        bytes.len(),
        count,
        K::WIDTH
    );
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(K::decode(&mut bytes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u64_round_trip() {
        let keys: Vec<u64> = vec![0, 1, u64::MAX, 42, 1 << 63];
        let bytes = encode_slice(&keys);
        assert_eq!(bytes.len(), keys.len() * 8);
        assert_eq!(decode_slice::<u64>(&bytes, keys.len()), keys);
    }

    #[test]
    fn u32_round_trip() {
        let keys: Vec<u32> = (0..100).map(|i| i * 40503).collect();
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<u32>(&bytes, keys.len()), keys);
    }

    #[test]
    fn i64_round_trip_negative() {
        let keys: Vec<i64> = vec![i64::MIN, -1, 0, 1, i64::MAX];
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<i64>(&bytes, keys.len()), keys);
    }

    #[test]
    fn f64_round_trip() {
        let keys: Vec<f64> = vec![0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<f64>(&bytes, keys.len()), keys);
    }

    #[test]
    #[should_panic(expected = "byte buffer too small")]
    fn decode_too_small_panics() {
        let bytes = vec![0u8; 7];
        let _ = decode_slice::<u64>(&bytes, 1);
    }

    #[test]
    fn widths_are_correct() {
        assert_eq!(<u32 as FixedWidthCodec>::WIDTH, 4);
        assert_eq!(<u64 as FixedWidthCodec>::WIDTH, 8);
        assert_eq!(<i32 as FixedWidthCodec>::WIDTH, 4);
        assert_eq!(<i64 as FixedWidthCodec>::WIDTH, 8);
        assert_eq!(<f64 as FixedWidthCodec>::WIDTH, 8);
    }

    proptest! {
        #[test]
        fn arbitrary_u64_round_trip(keys in proptest::collection::vec(any::<u64>(), 0..200)) {
            let bytes = encode_slice(&keys);
            prop_assert_eq!(decode_slice::<u64>(&bytes, keys.len()), keys);
        }

        #[test]
        fn arbitrary_i32_round_trip(keys in proptest::collection::vec(any::<i32>(), 0..200)) {
            let bytes = encode_slice(&keys);
            prop_assert_eq!(decode_slice::<i32>(&bytes, keys.len()), keys);
        }
    }
}
