//! Fixed-width binary encoding of record keys.
//!
//! The paper's experiments use 4-byte integer keys; this codec generalises to
//! any fixed-width key so the library can store `u32`, `u64`, `i32`, `i64`
//! and order-preserving `f64` keys on disk without a serialization framework.
//!
//! Decoding is the per-run hot path of the sample phase, so every primitive
//! key overrides [`FixedWidthCodec::decode_extend`] with a bulk path:
//! `chunks_exact(WIDTH)` + `from_le_bytes`, which the compiler lowers to a
//! straight native-endian copy on little-endian targets (and to byte-swapped
//! vector loads elsewhere) — no per-key cursor bookkeeping.  Combined with
//! [`decode_slice_into`] the run→keys step is allocation-free once the
//! caller's buffer has warmed up.

use crate::{StorageError, StorageResult};
use bytes::{Buf, BufMut};

/// A key type that can be written to and read from a fixed number of bytes.
///
/// Implementations must round-trip exactly: `decode(encode(x)) == x`.
pub trait FixedWidthCodec: Copy + Send + Sync + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Decode a value from the front of `buf`, advancing it by [`Self::WIDTH`].
    fn decode<B: Buf>(buf: &mut B) -> Self;

    /// Append `count` keys decoded from the front of `bytes` to `out`.
    ///
    /// The default walks the buffer key by key through [`Self::decode`];
    /// primitive keys override it with a chunked native decode that the
    /// compiler vectorises.  Callers are responsible for having checked that
    /// `bytes` holds at least `count * WIDTH` bytes (see [`decode_slice_into`]).
    fn decode_extend(mut bytes: &[u8], count: usize, out: &mut Vec<Self>) {
        debug_assert!(bytes.len() >= count * Self::WIDTH);
        out.reserve(count);
        for _ in 0..count {
            out.push(Self::decode(&mut bytes));
        }
    }
}

macro_rules! impl_codec_int {
    ($ty:ty, $put:ident, $get:ident, $width:expr) => {
        impl FixedWidthCodec for $ty {
            const WIDTH: usize = $width;

            #[inline]
            fn encode<B: BufMut>(&self, buf: &mut B) {
                buf.$put(*self);
            }

            #[inline]
            fn decode<B: Buf>(buf: &mut B) -> Self {
                buf.$get()
            }

            #[inline]
            fn decode_extend(bytes: &[u8], count: usize, out: &mut Vec<Self>) {
                debug_assert!(bytes.len() >= count * Self::WIDTH);
                out.extend(bytes[..count * $width].chunks_exact($width).map(|chunk| {
                    <$ty>::from_le_bytes(chunk.try_into().expect("chunk width is exact"))
                }));
            }
        }
    };
}

impl_codec_int!(u32, put_u32_le, get_u32_le, 4);
impl_codec_int!(u64, put_u64_le, get_u64_le, 8);
impl_codec_int!(i32, put_i32_le, get_i32_le, 4);
impl_codec_int!(i64, put_i64_le, get_i64_le, 8);

impl FixedWidthCodec for f64 {
    const WIDTH: usize = 8;

    #[inline]
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64_le(*self);
    }

    #[inline]
    fn decode<B: Buf>(buf: &mut B) -> Self {
        buf.get_f64_le()
    }

    #[inline]
    fn decode_extend(bytes: &[u8], count: usize, out: &mut Vec<Self>) {
        debug_assert!(bytes.len() >= count * Self::WIDTH);
        out.extend(
            bytes[..count * 8]
                .chunks_exact(8)
                .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("chunk width is exact"))),
        );
    }
}

/// Encode a whole slice of keys into a byte vector.
pub fn encode_slice<K: FixedWidthCodec>(keys: &[K]) -> Vec<u8> {
    let mut out = Vec::with_capacity(keys.len() * K::WIDTH);
    for k in keys {
        k.encode(&mut out);
    }
    out
}

/// Decode `count` keys from a byte slice.
///
/// # Errors
/// [`StorageError::Corrupt`] if `bytes` holds fewer than `count * WIDTH`
/// bytes — a truncated buffer is a data-integrity problem, not a programmer
/// error, so it surfaces as the storage layer's typed corruption error
/// rather than a panic.
pub fn decode_slice<K: FixedWidthCodec>(bytes: &[u8], count: usize) -> StorageResult<Vec<K>> {
    let mut out = Vec::new();
    decode_slice_into(bytes, count, &mut out)?;
    Ok(out)
}

/// Decode `count` keys from a byte slice into `out` (cleared first), reusing
/// the buffer's existing capacity.
///
/// # Errors
/// [`StorageError::Corrupt`] if `bytes` is shorter than `count * WIDTH`.
pub fn decode_slice_into<K: FixedWidthCodec>(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<K>,
) -> StorageResult<()> {
    let needed = count * K::WIDTH;
    if bytes.len() < needed {
        return Err(StorageError::Corrupt(format!(
            "byte buffer too small: {} bytes for {} keys of width {}",
            bytes.len(),
            count,
            K::WIDTH
        )));
    }
    out.clear();
    K::decode_extend(bytes, count, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u64_round_trip() {
        let keys: Vec<u64> = vec![0, 1, u64::MAX, 42, 1 << 63];
        let bytes = encode_slice(&keys);
        assert_eq!(bytes.len(), keys.len() * 8);
        assert_eq!(decode_slice::<u64>(&bytes, keys.len()).unwrap(), keys);
    }

    #[test]
    fn u32_round_trip() {
        let keys: Vec<u32> = (0..100).map(|i| i * 40503).collect();
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<u32>(&bytes, keys.len()).unwrap(), keys);
    }

    #[test]
    fn i64_round_trip_negative() {
        let keys: Vec<i64> = vec![i64::MIN, -1, 0, 1, i64::MAX];
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<i64>(&bytes, keys.len()).unwrap(), keys);
    }

    #[test]
    fn f64_round_trip() {
        let keys: Vec<f64> = vec![0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_slice(&keys);
        assert_eq!(decode_slice::<f64>(&bytes, keys.len()).unwrap(), keys);
    }

    #[test]
    fn decode_too_small_is_typed_corrupt_error() {
        let bytes = vec![0u8; 7];
        let err = decode_slice::<u64>(&bytes, 1).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("byte buffer too small"), "{err}");

        let mut out = vec![1u64, 2, 3];
        let err = decode_slice_into::<u64>(&bytes, 1, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        // The output buffer is untouched on error.
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn decode_into_reuses_capacity() {
        let keys: Vec<u64> = (0..1000).collect();
        let bytes = encode_slice(&keys);
        let mut out: Vec<u64> = Vec::new();
        decode_slice_into(&bytes, keys.len(), &mut out).unwrap();
        assert_eq!(out, keys);
        let cap = out.capacity();
        decode_slice_into(&bytes, keys.len(), &mut out).unwrap();
        assert_eq!(out, keys);
        assert_eq!(out.capacity(), cap, "second decode reuses the allocation");
    }

    #[test]
    fn bulk_decode_matches_cursor_decode() {
        // The macro overrides decode_extend; pin it against the generic
        // cursor path for every key type.
        fn cursor_decode<K: FixedWidthCodec>(mut bytes: &[u8], count: usize) -> Vec<K> {
            (0..count).map(|_| K::decode(&mut bytes)).collect()
        }
        let u64s: Vec<u64> = (0..513u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let bytes = encode_slice(&u64s);
        assert_eq!(cursor_decode::<u64>(&bytes, u64s.len()), {
            let mut v = Vec::new();
            u64::decode_extend(&bytes, u64s.len(), &mut v);
            v
        });
        let i32s: Vec<i32> = (0..257).map(|i| (i * 48271) - 6_000_000).collect();
        let bytes = encode_slice(&i32s);
        assert_eq!(cursor_decode::<i32>(&bytes, i32s.len()), {
            let mut v = Vec::new();
            i32::decode_extend(&bytes, i32s.len(), &mut v);
            v
        });
    }

    #[test]
    fn widths_are_correct() {
        assert_eq!(<u32 as FixedWidthCodec>::WIDTH, 4);
        assert_eq!(<u64 as FixedWidthCodec>::WIDTH, 8);
        assert_eq!(<i32 as FixedWidthCodec>::WIDTH, 4);
        assert_eq!(<i64 as FixedWidthCodec>::WIDTH, 8);
        assert_eq!(<f64 as FixedWidthCodec>::WIDTH, 8);
    }

    proptest! {
        #[test]
        fn arbitrary_u64_round_trip(keys in proptest::collection::vec(any::<u64>(), 0..200)) {
            let bytes = encode_slice(&keys);
            prop_assert_eq!(decode_slice::<u64>(&bytes, keys.len()).unwrap(), keys);
        }

        #[test]
        fn arbitrary_i32_round_trip(keys in proptest::collection::vec(any::<i32>(), 0..200)) {
            let bytes = encode_slice(&keys);
            prop_assert_eq!(decode_slice::<i32>(&bytes, keys.len()).unwrap(), keys);
        }
    }
}
