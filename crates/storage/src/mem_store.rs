//! In-memory [`RunStore`] used by unit tests, examples and small inputs.
//!
//! The data still goes through the same run-partitioned access path as the
//! file store, and the same I/O accounting (with modelled disk time if a
//! [`DiskModel`] is attached), so every algorithm in the workspace can be
//! exercised without touching the filesystem.

use crate::codec::FixedWidthCodec;
use crate::{DiskModel, IoStats, RunLayout, RunStore, StorageError, StorageResult};
use std::time::Duration;

/// A run store backed by a `Vec<K>` held in memory.
#[derive(Debug, Clone)]
pub struct MemRunStore<K> {
    data: Vec<K>,
    layout: RunLayout,
    stats: IoStats,
    disk_model: Option<DiskModel>,
    key_width: usize,
}

impl<K: FixedWidthCodec> MemRunStore<K> {
    /// Create a store over `data` cut into runs of length `m`.
    pub fn new(data: Vec<K>, m: u64) -> Self {
        let layout = RunLayout::new(data.len() as u64, m.min(data.len().max(1) as u64));
        Self {
            data,
            layout,
            stats: IoStats::new(),
            disk_model: None,
            key_width: K::WIDTH,
        }
    }

    /// Attach a [`DiskModel`]; subsequent reads accumulate modelled disk time
    /// in the store's [`IoStats`].
    pub fn with_disk_model(mut self, model: DiskModel) -> Self {
        self.disk_model = Some(model);
        self
    }

    /// Borrow the underlying data (test helper).
    pub fn data(&self) -> &[K] {
        &self.data
    }
}

impl<K: FixedWidthCodec> RunStore<K> for MemRunStore<K> {
    fn layout(&self) -> RunLayout {
        self.layout
    }

    fn read_run(&self, run: u64) -> StorageResult<Vec<K>> {
        let mut keys = Vec::new();
        self.read_run_into(run, &mut keys)?;
        Ok(keys)
    }

    fn read_run_into(&self, run: u64, buf: &mut Vec<K>) -> StorageResult<()> {
        if run >= self.layout.runs() {
            return Err(StorageError::RunOutOfRange {
                requested: run,
                available: self.layout.runs(),
            });
        }
        let start = self.layout.run_start(run) as usize;
        let len = self.layout.run_len(run) as usize;
        let bytes = (len * self.key_width) as u64;
        let reused = buf.capacity() >= len;
        buf.clear();
        buf.extend_from_slice(&self.data[start..start + len]);
        let modelled = self
            .disk_model
            .map(|m| m.transfer_time(bytes))
            .unwrap_or(Duration::ZERO);
        self.stats.record_read(bytes, Duration::ZERO, modelled);
        self.stats.record_buffer(reused);
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_back_runs_in_order() {
        let data: Vec<u64> = (0..1000).collect();
        let store = MemRunStore::new(data.clone(), 128);
        assert_eq!(store.layout().runs(), 8);
        let mut reassembled = Vec::new();
        store
            .for_each_run(|_, run| reassembled.extend(run))
            .unwrap();
        assert_eq!(reassembled, data);
    }

    #[test]
    fn tail_run_is_short() {
        let store = MemRunStore::new((0u32..10).collect(), 4);
        assert_eq!(store.read_run(2).unwrap(), vec![8, 9]);
    }

    #[test]
    fn out_of_range_run_errors() {
        let store = MemRunStore::new((0u32..10).collect(), 4);
        let err = store.read_run(3).unwrap_err();
        assert!(matches!(
            err,
            StorageError::RunOutOfRange {
                requested: 3,
                available: 3
            }
        ));
    }

    #[test]
    fn io_stats_count_bytes() {
        let store = MemRunStore::new((0u64..100).collect(), 10);
        let _ = store.read_run(0).unwrap();
        let _ = store.read_run(1).unwrap();
        let s = store.io_stats().snapshot();
        assert_eq!(s.read_calls, 2);
        assert_eq!(s.bytes_read, 2 * 10 * 8);
        assert_eq!(s.modelled, Duration::ZERO);
    }

    #[test]
    fn disk_model_accumulates_modelled_time() {
        let store =
            MemRunStore::new((0u64..100).collect(), 10).with_disk_model(DiskModel::sp2_node_disk());
        let _ = store.read_run(0).unwrap();
        assert!(store.io_stats().snapshot().modelled >= Duration::from_millis(10));
    }

    #[test]
    fn empty_store() {
        let store = MemRunStore::<u64>::new(vec![], 16);
        assert!(store.is_empty());
        assert_eq!(store.layout().runs(), 0);
    }
}
