//! Versioned, checksummed on-disk encoding of quantile sketches.
//!
//! Persisting the sorted sample list is what makes the paper's incremental
//! formulation practical ("if the sorted samples are kept from the runs of
//! the old data…"), and it is what lets the serving layer (`opaq-serve`)
//! spill cold tenants to disk and reload them on demand.  The codec lives in
//! the storage crate — below `opaq-core` — so every layer (CLI persistence,
//! catalog spill/reload, warm starts) shares one format; the *semantic*
//! validation (sorted samples, gap sums) stays with
//! `QuantileSketch::assemble` in the core, which consumes the [`SketchWire`]
//! this module decodes.
//!
//! ## Format (version 2)
//!
//! ```text
//! magic    "OPAQSKT"                      7 bytes
//! version  ASCII digit, currently '2'     1 byte
//! checksum FNV-1a 64 over the body        u64 LE      (v2 onward)
//! body:
//!   total_elements, runs, max_gap         3 × u64 LE
//!   dataset_min, dataset_max              2 × K (fixed width)
//!   sample_count                          u64 LE
//!   sample_count × (value K, gap u64)
//! ```
//!
//! Version 1 (the original CLI format, u64 keys only) is identical minus the
//! checksum and is still readable.  Unknown versions fail with the typed
//! [`StorageError::VersionMismatch`] instead of decoding garbage; damaged
//! bytes fail the checksum with [`StorageError::Corrupt`].

use crate::{FixedWidthCodec, StorageError, StorageResult};
use bytes::{Buf, BufMut};
use std::io::{Read, Write};
use std::path::Path;

/// Magic prefix of every persisted sketch, followed by the version digit.
pub const MAGIC: &[u8; 7] = b"OPAQSKT";

/// The format version this build writes.
pub const FORMAT_VERSION: u8 = b'2';

/// The legacy (checksum-less) version this build still reads.
pub const LEGACY_VERSION: u8 = b'1';

/// The structural content of a persisted sketch: metadata plus the sorted
/// `(value, gap)` sample list.  This is the storage-level *wire* view; the
/// core's `QuantileSketch::from_wire` re-validates the semantics (sortedness,
/// gap sums, min/max invariants) on the way back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchWire<K> {
    /// Total number of data elements the sketch summarises (`n`).
    pub total_elements: u64,
    /// Number of runs merged into the sketch (`r`).
    pub runs: u64,
    /// The largest per-sample gap (`⌈m/s⌉` for equal full runs).
    pub max_gap: u64,
    /// The smallest element of the dataset.
    pub dataset_min: K,
    /// The largest element of the dataset.
    pub dataset_max: K,
    /// The sorted sample list as `(value, gap)` pairs.
    pub samples: Vec<(K, u64)>,
}

impl<K: FixedWidthCodec> SketchWire<K> {
    /// Encoded size in bytes (header + checksum + body).
    pub fn encoded_len(&self) -> usize {
        8 + 8 + body_len::<K>(self.samples.len())
    }
}

fn body_len<K: FixedWidthCodec>(samples: usize) -> usize {
    3 * 8 + 2 * K::WIDTH + 8 + samples * (K::WIDTH + 8)
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to catch the torn
/// writes and bit rot a persisted sketch can suffer (this is an integrity
/// check, not an authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialize a wire sketch into bytes (always the current format version).
pub fn to_bytes<K: FixedWidthCodec>(wire: &SketchWire<K>) -> Vec<u8> {
    let mut body = Vec::with_capacity(body_len::<K>(wire.samples.len()));
    body.put_u64_le(wire.total_elements);
    body.put_u64_le(wire.runs);
    body.put_u64_le(wire.max_gap);
    wire.dataset_min.encode(&mut body);
    wire.dataset_max.encode(&mut body);
    body.put_u64_le(wire.samples.len() as u64);
    for (value, gap) in &wire.samples {
        value.encode(&mut body);
        body.put_u64_le(*gap);
    }

    let mut out = Vec::with_capacity(8 + 8 + body.len());
    out.put_slice(MAGIC);
    out.put_u8(FORMAT_VERSION);
    out.put_u64_le(fnv1a(&body));
    out.put_slice(&body);
    out
}

/// Deserialize a wire sketch, accepting the current and the legacy version.
///
/// # Errors
/// [`StorageError::Corrupt`] for bad magic, truncation, checksum mismatch or
/// trailing bytes; [`StorageError::VersionMismatch`] for a version digit this
/// build does not understand.
pub fn from_bytes<K: FixedWidthCodec>(bytes: &[u8]) -> StorageResult<SketchWire<K>> {
    if bytes.len() < 8 {
        return Err(StorageError::Corrupt(
            "sketch file truncated: shorter than the 8-byte magic/version header".into(),
        ));
    }
    if &bytes[..7] != MAGIC {
        return Err(StorageError::Corrupt(
            "not an OPAQ sketch file (bad magic)".into(),
        ));
    }
    let version = bytes[7];
    let mut body: &[u8] = match version {
        FORMAT_VERSION => {
            if bytes.len() < 16 {
                return Err(StorageError::Corrupt(
                    "sketch file truncated: missing checksum".into(),
                ));
            }
            let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
            let body = &bytes[16..];
            let actual = fnv1a(body);
            if declared != actual {
                return Err(StorageError::Corrupt(format!(
                    "sketch checksum mismatch: header declares {declared:#018x}, body hashes to \
                     {actual:#018x}"
                )));
            }
            body
        }
        LEGACY_VERSION => &bytes[8..],
        found => {
            return Err(StorageError::VersionMismatch {
                found,
                supported: FORMAT_VERSION,
            })
        }
    };

    let fixed = 3 * 8 + 2 * K::WIDTH + 8;
    if body.len() < fixed {
        return Err(StorageError::Corrupt(format!(
            "sketch file truncated: body holds {} bytes, metadata needs {fixed}",
            body.len()
        )));
    }
    let total_elements = body.get_u64_le();
    let runs = body.get_u64_le();
    let max_gap = body.get_u64_le();
    let dataset_min = K::decode(&mut body);
    let dataset_max = K::decode(&mut body);
    let count = body.get_u64_le() as usize;
    // Divide rather than multiply: `count` comes from the file, and a crafted
    // value could overflow `count * (WIDTH + 8)` past the truncation guard.
    let pair = K::WIDTH + 8;
    if body.remaining() / pair < count {
        return Err(StorageError::Corrupt(format!(
            "sketch file truncated: expected {count} sample points, body holds {}",
            body.remaining() / pair
        )));
    }
    if body.remaining() != count * pair {
        return Err(StorageError::Corrupt(format!(
            "sketch file has {} trailing bytes after the sample list",
            body.remaining() - count * pair
        )));
    }
    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let value = K::decode(&mut body);
        let gap = body.get_u64_le();
        samples.push((value, gap));
    }
    Ok(SketchWire {
        total_elements,
        runs,
        max_gap,
        dataset_min,
        dataset_max,
        samples,
    })
}

/// Wrap an I/O failure with the operation and path it happened on: "file
/// not found" alone is useless to an operator juggling spill directories.
fn io_context(op: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(std::io::Error::new(
        e.kind(),
        format!("{op} sketch file {}: {e}", path.display()),
    ))
}

/// Save a wire sketch to `path` (current format version).
pub fn save<K: FixedWidthCodec>(path: impl AsRef<Path>, wire: &SketchWire<K>) -> StorageResult<()> {
    let path = path.as_ref();
    let mut file = std::fs::File::create(path).map_err(|e| io_context("create", path, e))?;
    file.write_all(&to_bytes(wire))
        .map_err(|e| io_context("write", path, e))?;
    Ok(())
}

/// Save a wire sketch to `path` and sync file data to disk before
/// returning.  The durable catalog writes sketch bytes through this variant
/// so the write-ahead manifest never references a file a crash could lose.
pub fn save_synced<K: FixedWidthCodec>(
    path: impl AsRef<Path>,
    wire: &SketchWire<K>,
) -> StorageResult<()> {
    let path = path.as_ref();
    let mut file = std::fs::File::create(path).map_err(|e| io_context("create", path, e))?;
    file.write_all(&to_bytes(wire))
        .map_err(|e| io_context("write", path, e))?;
    file.sync_data().map_err(|e| io_context("sync", path, e))?;
    Ok(())
}

/// Load a wire sketch from `path`.
pub fn load<K: FixedWidthCodec>(path: impl AsRef<Path>) -> StorageResult<SketchWire<K>> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(|e| io_context("open", path, e))?
        .read_to_end(&mut bytes)
        .map_err(|e| io_context("read", path, e))?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> SketchWire<u64> {
        SketchWire {
            total_elements: 30,
            runs: 3,
            max_gap: 10,
            dataset_min: 5,
            dataset_max: 900,
            samples: vec![(5, 10), (450, 10), (900, 10)],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let w = wire();
        let bytes = to_bytes(&w);
        assert_eq!(bytes.len(), w.encoded_len());
        assert_eq!(from_bytes::<u64>(&bytes).unwrap(), w);
    }

    #[test]
    fn round_trip_other_key_widths() {
        let w = SketchWire::<u32> {
            total_elements: 2,
            runs: 1,
            max_gap: 1,
            dataset_min: 1,
            dataset_max: 2,
            samples: vec![(1, 1), (2, 1)],
        };
        assert_eq!(from_bytes::<u32>(&to_bytes(&w)).unwrap(), w);
    }

    #[test]
    fn legacy_version_1_still_decodes() {
        let w = wire();
        let mut v1 = Vec::new();
        v1.put_slice(MAGIC);
        v1.put_u8(LEGACY_VERSION);
        v1.put_u64_le(w.total_elements);
        v1.put_u64_le(w.runs);
        v1.put_u64_le(w.max_gap);
        v1.put_u64_le(w.dataset_min);
        v1.put_u64_le(w.dataset_max);
        v1.put_u64_le(w.samples.len() as u64);
        for (value, gap) in &w.samples {
            v1.put_u64_le(*value);
            v1.put_u64_le(*gap);
        }
        assert_eq!(from_bytes::<u64>(&v1).unwrap(), w);
    }

    #[test]
    fn unknown_version_is_a_typed_mismatch() {
        let mut bytes = to_bytes(&wire());
        bytes[7] = b'9';
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::VersionMismatch {
                    found: b'9',
                    supported: FORMAT_VERSION
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&wire());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<u64>(&bytes),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            from_bytes::<u64>(b"short"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn every_flipped_bit_fails_the_checksum() {
        let clean = to_bytes(&wire());
        // Flip one bit in each body byte; the checksum must catch them all
        // (header corruption is caught by the magic/version/checksum checks).
        for i in 16..clean.len() {
            let mut corrupted = clean.clone();
            corrupted[i] ^= 0x40;
            let err = from_bytes::<u64>(&corrupted).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt(_)),
                "byte {i} slipped through: {err}"
            );
            assert!(err.to_string().contains("checksum"), "byte {i}: {err}");
        }
    }

    #[test]
    fn truncated_and_trailing_bodies_rejected() {
        let bytes = to_bytes(&wire());
        for cut in [bytes.len() - 1, bytes.len() - 8, 20, 15, 8] {
            assert!(
                from_bytes::<u64>(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage changes the checksum; with a *recomputed* checksum
        // it must still be rejected structurally.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 4]);
        let fixed = fnv1a(&padded[16..]);
        padded[8..16].copy_from_slice(&fixed.to_le_bytes());
        let err = from_bytes::<u64>(&padded).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn oversized_declared_count_rejected_without_allocating() {
        let mut bytes = to_bytes(&wire());
        // Overwrite sample_count (body offset 3*8 + 2*8 = 40; header 16).
        bytes[56..64].copy_from_slice(&u64::MAX.to_le_bytes());
        let fixed = fnv1a(&bytes[16..]);
        bytes[8..16].copy_from_slice(&fixed.to_le_bytes());
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("opaq-sketch-codec-{}.sketch", std::process::id()));
        let w = wire();
        save(&path, &w).unwrap();
        assert_eq!(load::<u64>(&path).unwrap(), w);
        std::fs::remove_file(path).unwrap();
    }
}
