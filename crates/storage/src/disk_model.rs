//! A simple analytical disk model (seek latency + sequential bandwidth).
//!
//! The original experiments ran on IBM SP-2 nodes whose local disks made I/O
//! about half of the total execution time.  Modern NVMe drives and page
//! caches would hide that effect entirely, so the reproduction *models* disk
//! time: every run read is charged one seek plus `bytes / bandwidth`.  The
//! modelled time is accumulated in [`crate::IoStats`] and used by the
//! Table 11/12 experiments; it never slows the actual computation down.

use std::time::Duration;

/// Disk cost model: `time(bytes) = seek + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed per-operation latency (seek + rotational + controller overhead).
    pub seek: Duration,
    /// Sequential transfer bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl DiskModel {
    /// A model loosely calibrated to a mid-1990s SCSI disk of the kind an
    /// IBM SP-2 node used: ~10 ms average access, ~8 MB/s sequential reads.
    /// With 4–8 byte keys this puts the I/O share of OPAQ's total time at
    /// roughly one half, matching Table 11 of the paper.
    pub fn sp2_node_disk() -> Self {
        Self {
            seek: Duration::from_millis(10),
            bandwidth_bytes_per_sec: 8.0 * 1024.0 * 1024.0,
        }
    }

    /// A model for a modern NVMe device (for ablation experiments that ask
    /// "is OPAQ still I/O bound on current hardware?").
    pub fn modern_nvme() -> Self {
        Self {
            seek: Duration::from_micros(80),
            bandwidth_bytes_per_sec: 3.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// Modelled time to transfer `bytes` bytes in one sequential operation.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        assert!(
            self.bandwidth_bytes_per_sec > 0.0,
            "disk bandwidth must be positive"
        );
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.seek + Duration::from_secs_f64(secs)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::sp2_node_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_seek_plus_bandwidth() {
        let model = DiskModel {
            seek: Duration::from_millis(5),
            bandwidth_bytes_per_sec: 1_000_000.0,
        };
        let t = model.transfer_time(2_000_000);
        assert_eq!(t, Duration::from_millis(5) + Duration::from_secs(2));
    }

    #[test]
    fn zero_bytes_costs_one_seek() {
        let model = DiskModel::sp2_node_disk();
        assert_eq!(model.transfer_time(0), model.seek);
    }

    #[test]
    fn sp2_is_much_slower_than_nvme() {
        let bytes = 8 * 1024 * 1024;
        assert!(
            DiskModel::sp2_node_disk().transfer_time(bytes)
                > DiskModel::modern_nvme().transfer_time(bytes) * 10
        );
    }

    #[test]
    fn default_is_sp2() {
        assert_eq!(DiskModel::default(), DiskModel::sp2_node_disk());
    }

    #[test]
    fn monotone_in_bytes() {
        let m = DiskModel::sp2_node_disk();
        assert!(m.transfer_time(100) < m.transfer_time(10_000));
    }
}
