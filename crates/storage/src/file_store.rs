//! File-backed [`RunStore`]: the disk-resident substrate proper.
//!
//! Records are stored as densely packed little-endian fixed-width keys in a
//! single binary file.  Runs are contiguous byte ranges, so reading a run is
//! one seek plus one large sequential read — exactly the access pattern the
//! paper's cost analysis assumes (`O(n)` to read the data from disk).

use crate::codec::{decode_slice_into, encode_slice, FixedWidthCodec};
use crate::{DiskModel, IoStats, RunLayout, RunStore, StorageError, StorageResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Builder for [`FileRunStore`]: writes a dataset to disk run by run.
///
/// ```no_run
/// use opaq_storage::{FileRunStoreBuilder, RunStore};
/// let store = FileRunStoreBuilder::<u64>::new("/tmp/keys.bin", 1_000_000)
///     .unwrap()
///     .append(&(0u64..5_000_000).collect::<Vec<_>>())
///     .unwrap()
///     .finish()
///     .unwrap();
/// assert_eq!(store.layout().runs(), 5);
/// ```
pub struct FileRunStoreBuilder<K> {
    path: PathBuf,
    writer: BufWriter<File>,
    written: u64,
    m: u64,
    stats: IoStats,
    _marker: std::marker::PhantomData<K>,
}

impl<K: FixedWidthCodec> FileRunStoreBuilder<K> {
    /// Start writing a new dataset file at `path` with run length `m`.
    /// An existing file at `path` is truncated.
    ///
    /// # Errors
    /// [`StorageError::InvalidLayout`] if `m == 0`, or an I/O error if the
    /// file cannot be created.
    pub fn new(path: impl AsRef<Path>, m: u64) -> StorageResult<Self> {
        if m == 0 {
            return Err(StorageError::invalid_layout(
                0,
                m,
                "run length m must be positive",
            ));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::with_capacity(1 << 20, file),
            written: 0,
            m,
            stats: IoStats::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Append a batch of keys (any size; batches need not align with runs).
    pub fn append(mut self, keys: &[K]) -> StorageResult<Self> {
        let start = Instant::now();
        let bytes = encode_slice(keys);
        self.writer.write_all(&bytes)?;
        self.written += keys.len() as u64;
        self.stats
            .record_write(bytes.len() as u64, start.elapsed(), Duration::ZERO);
        Ok(self)
    }

    /// Flush and produce the readable [`FileRunStore`].
    ///
    /// # Errors
    /// [`StorageError::InvalidLayout`] if no keys were appended: a zero-key
    /// store would have no runs, and every consumer (the sample phase, the
    /// sharded ingester) treats that as a distinct "empty dataset" error
    /// rather than a silently empty store.
    pub fn finish(mut self) -> StorageResult<FileRunStore<K>> {
        if self.written == 0 {
            return Err(StorageError::invalid_layout(
                0,
                self.m,
                format!("no keys appended to {}", self.path.display()),
            ));
        }
        self.writer.flush()?;
        drop(self.writer);
        FileRunStore::open(&self.path, self.written, self.m)
    }
}

/// A read-only, file-backed run store.
#[derive(Debug)]
pub struct FileRunStore<K> {
    path: PathBuf,
    reader: Mutex<Reader>,
    layout: RunLayout,
    stats: IoStats,
    disk_model: Option<DiskModel>,
    _marker: std::marker::PhantomData<K>,
}

/// The serialized read state: the file handle plus a recycled byte scratch
/// buffer.  Reads are already serialized by the mutex (one seek + one
/// sequential read at a time is exactly the access pattern the paper's cost
/// model assumes), so the scratch rides in the same lock and is reused by
/// every run read — the raw-byte half of the allocation-free read path.
#[derive(Debug)]
struct Reader {
    file: File,
    scratch: Vec<u8>,
}

impl<K: FixedWidthCodec> FileRunStore<K> {
    /// Open an existing dataset file containing exactly `n` keys, to be read
    /// as runs of length `m`.  A run length larger than the dataset is
    /// clamped to `n` (a single run), matching [`crate::MemRunStore`].
    ///
    /// # Errors
    /// [`StorageError::InvalidLayout`] if `n == 0` (a store over zero keys
    /// has no runs to read — callers that want "no data yet" should not
    /// open a file for it) or `m == 0`; [`StorageError::Corrupt`] if the
    /// file is shorter or longer than the `n * K::WIDTH` bytes the layout
    /// declares.
    pub fn open(path: impl AsRef<Path>, n: u64, m: u64) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        if n == 0 {
            return Err(StorageError::invalid_layout(
                n,
                m,
                format!(
                    "cannot open {} as a run store over zero keys",
                    path.display()
                ),
            ));
        }
        let layout = RunLayout::try_new(n, m.min(n))?;
        let file = File::open(&path)?;
        let expected = n * K::WIDTH as u64;
        let actual = file.metadata()?.len();
        if actual != expected {
            let kind = if actual < expected {
                "truncated: is"
            } else {
                "oversized: is"
            };
            return Err(StorageError::Corrupt(format!(
                "{} {kind} {actual} bytes, expected {expected} for {n} keys of width {}",
                path.display(),
                K::WIDTH
            )));
        }
        Ok(Self {
            path,
            reader: Mutex::new(Reader {
                file,
                scratch: Vec::new(),
            }),
            layout,
            stats: IoStats::new(),
            disk_model: None,
            _marker: std::marker::PhantomData,
        })
    }

    /// Attach a [`DiskModel`]; subsequent reads accumulate modelled disk time.
    pub fn with_disk_model(mut self, model: DiskModel) -> Self {
        self.disk_model = Some(model);
        self
    }

    /// The path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Remove the underlying file (cleanup helper for experiments).
    pub fn remove_file(self) -> StorageResult<()> {
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

impl<K: FixedWidthCodec> RunStore<K> for FileRunStore<K> {
    fn layout(&self) -> RunLayout {
        self.layout
    }

    fn read_run(&self, run: u64) -> StorageResult<Vec<K>> {
        let mut keys = Vec::new();
        self.read_run_into(run, &mut keys)?;
        Ok(keys)
    }

    fn read_run_into(&self, run: u64, buf: &mut Vec<K>) -> StorageResult<()> {
        if run >= self.layout.runs() {
            return Err(StorageError::RunOutOfRange {
                requested: run,
                available: self.layout.runs(),
            });
        }
        let start = Instant::now();
        let offset = self.layout.run_start(run) * K::WIDTH as u64;
        let len = self.layout.run_len(run) as usize;
        let byte_len = len * K::WIDTH;
        let reused = buf.capacity() >= len;
        {
            let mut reader = self.reader.lock();
            let Reader { file, scratch } = &mut *reader;
            // resize without clear: existing bytes are about to be
            // overwritten by read_exact, so only newly grown capacity needs
            // the zero-fill — steady state does no memset at all.
            scratch.resize(byte_len, 0);
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(scratch)?;
            decode_slice_into::<K>(scratch, len, buf)?;
        }
        let modelled = self
            .disk_model
            .map(|m| m.transfer_time(byte_len as u64))
            .unwrap_or(Duration::ZERO);
        self.stats
            .record_read(byte_len as u64, start.elapsed(), modelled);
        self.stats.record_buffer(reused);
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "opaq-storage-test-{tag}-{}-{}.bin",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn write_then_read_round_trip() {
        let path = temp_path("roundtrip");
        let data: Vec<u64> = (0..10_000)
            .map(|i: u64| i.wrapping_mul(48271) % 65536)
            .collect();
        let store = FileRunStoreBuilder::<u64>::new(&path, 1024)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(store.layout().runs(), 10);
        let mut back = Vec::new();
        store.for_each_run(|_, run| back.extend(run)).unwrap();
        assert_eq!(back, data);
        store.remove_file().unwrap();
    }

    #[test]
    fn append_in_multiple_batches() {
        let path = temp_path("batches");
        let store = FileRunStoreBuilder::<u32>::new(&path, 7)
            .unwrap()
            .append(&[1, 2, 3])
            .unwrap()
            .append(&[4, 5, 6, 7, 8, 9, 10, 11])
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(store.len(), 11);
        assert_eq!(store.read_run(0).unwrap(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(store.read_run(1).unwrap(), vec![8, 9, 10, 11]);
        store.remove_file().unwrap();
    }

    #[test]
    fn corrupt_file_detected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, [0u8; 12]).unwrap();
        let err = FileRunStore::<u64>::open(&path, 2, 2).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = FileRunStore::<u64>::open(&path, 1, 1).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degenerate_layouts_are_typed_errors() {
        let path = temp_path("degenerate");
        std::fs::write(&path, [0u8; 16]).unwrap();
        // n = 0: a clean error, not a store that silently yields no runs.
        let err = FileRunStore::<u64>::open(&path, 0, 4).unwrap_err();
        assert!(
            matches!(err, StorageError::InvalidLayout { n: 0, .. }),
            "{err}"
        );
        // m = 0: a clean error, not a panic.
        let err = FileRunStore::<u64>::open(&path, 2, 0).unwrap_err();
        assert!(
            matches!(err, StorageError::InvalidLayout { m: 0, .. }),
            "{err}"
        );
        let Err(err) = FileRunStoreBuilder::<u64>::new(&path, 0) else {
            panic!("builder with m = 0 must fail");
        };
        assert!(
            matches!(err, StorageError::InvalidLayout { m: 0, .. }),
            "{err}"
        );
        // A builder that never saw a key refuses to produce an empty store.
        let err = FileRunStoreBuilder::<u64>::new(&path, 4)
            .unwrap()
            .finish()
            .unwrap_err();
        assert!(
            matches!(err, StorageError::InvalidLayout { n: 0, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_run_length_is_clamped_to_single_run() {
        let path = temp_path("clamp");
        let store = FileRunStoreBuilder::<u64>::new(&path, 1000)
            .unwrap()
            .append(&[1, 2, 3])
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(store.layout().runs(), 1);
        assert_eq!(store.read_run(0).unwrap(), vec![1, 2, 3]);
        store.remove_file().unwrap();
    }

    #[test]
    fn tail_run_when_m_does_not_divide_n() {
        let path = temp_path("tail");
        let data: Vec<u64> = (0..1037).collect();
        let store = FileRunStoreBuilder::<u64>::new(&path, 100)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(store.layout().runs(), 11);
        assert!(store.layout().has_tail_run());
        assert_eq!(store.read_run(10).unwrap().len(), 37);
        let mut prefetched = Vec::new();
        store
            .for_each_run_prefetched(2, |_, run| prefetched.extend(run))
            .unwrap();
        assert_eq!(prefetched, data);
        store.remove_file().unwrap();
    }

    #[test]
    fn io_stats_track_bytes_and_calls() {
        let path = temp_path("stats");
        let data: Vec<u64> = (0..100).collect();
        let store = FileRunStoreBuilder::<u64>::new(&path, 25)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        for run in 0..4 {
            let _ = store.read_run(run).unwrap();
        }
        let s = store.io_stats().snapshot();
        assert_eq!(s.read_calls, 4);
        assert_eq!(s.bytes_read, 100 * 8);
        store.remove_file().unwrap();
    }

    #[test]
    fn read_run_into_recycles_buffers() {
        let path = temp_path("reuse");
        let data: Vec<u64> = (0..1000).collect();
        let store = FileRunStoreBuilder::<u64>::new(&path, 100)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap();
        let mut buf: Vec<u64> = Vec::new();
        let mut back = Vec::new();
        for run in 0..store.layout().runs() {
            store.read_run_into(run, &mut buf).unwrap();
            back.extend_from_slice(&buf);
        }
        assert_eq!(back, data);
        let s = store.io_stats().snapshot();
        // First read allocates; the other nine ride the recycled capacity.
        assert_eq!(s.buffer_allocs, 1);
        assert_eq!(s.buffer_reuses, 9);
        store.remove_file().unwrap();
    }

    #[test]
    fn disk_model_modelled_time() {
        let path = temp_path("model");
        let data: Vec<u64> = (0..1000).collect();
        let store = FileRunStoreBuilder::<u64>::new(&path, 100)
            .unwrap()
            .append(&data)
            .unwrap()
            .finish()
            .unwrap()
            .with_disk_model(DiskModel::sp2_node_disk());
        let _ = store.read_run(0).unwrap();
        let snap = store.io_stats().snapshot();
        assert!(snap.modelled >= Duration::from_millis(10));
        assert_eq!(snap.effective_io_time(), snap.modelled);
        store.remove_file().unwrap();
    }

    #[test]
    fn out_of_range_run() {
        let path = temp_path("oob");
        let store = FileRunStoreBuilder::<u32>::new(&path, 4)
            .unwrap()
            .append(&[1, 2, 3, 4])
            .unwrap()
            .finish()
            .unwrap();
        assert!(matches!(
            store.read_run(1).unwrap_err(),
            StorageError::RunOutOfRange { .. }
        ));
        store.remove_file().unwrap();
    }
}
