//! Run layout arithmetic: how a dataset of `n` elements is cut into runs.
//!
//! The paper assumes (without loss of generality) that `m` divides `n`; real
//! datasets are rarely that polite, so [`RunLayout`] supports a short tail
//! run and exposes the exact run boundaries used throughout the workspace.

/// Describes how a dataset of `n` elements is partitioned into runs of (at
/// most) `m` elements each.
///
/// Runs `0 .. full_runs()` have exactly `m` elements; if `m` does not divide
/// `n` there is one final shorter run.  `m` is the paper's "size of each run"
/// — the number of elements that fit in main memory at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunLayout {
    n: u64,
    m: u64,
}

impl RunLayout {
    /// Create a layout for `n` total elements and run length `m`.
    ///
    /// # Panics
    /// Panics if `m == 0`, or if `n > 0 && m > n` (a "run" larger than the
    /// dataset would silently degrade OPAQ to plain sorting; callers should
    /// clamp `m` to `n` themselves if that is what they want).
    pub fn new(n: u64, m: u64) -> Self {
        assert!(m > 0, "run length m must be positive");
        assert!(
            n == 0 || m <= n,
            "run length m={m} must not exceed the dataset size n={n}"
        );
        Self { n, m }
    }

    /// Fallible constructor for layouts built from untrusted input (CLI
    /// options, file headers): returns [`crate::StorageError::InvalidLayout`]
    /// instead of panicking when `m == 0` or `m > n > 0`.
    pub fn try_new(n: u64, m: u64) -> crate::StorageResult<Self> {
        if m == 0 {
            return Err(crate::StorageError::invalid_layout(
                n,
                m,
                "run length m must be positive",
            ));
        }
        if n > 0 && m > n {
            return Err(crate::StorageError::invalid_layout(
                n,
                m,
                "run length m must not exceed the dataset size n",
            ));
        }
        Ok(Self { n, m })
    }

    /// Total number of elements `n`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Nominal run length `m`.
    #[inline]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Number of runs `r = ⌈n/m⌉`.
    #[inline]
    pub fn runs(&self) -> u64 {
        self.n.div_ceil(self.m)
    }

    /// Number of runs that have exactly `m` elements.
    #[inline]
    pub fn full_runs(&self) -> u64 {
        self.n / self.m
    }

    /// Length of run `run` (0-based).
    ///
    /// # Panics
    /// Panics if `run >= self.runs()`.
    #[inline]
    pub fn run_len(&self, run: u64) -> u64 {
        assert!(run < self.runs(), "run index {run} out of range");
        let start = run * self.m;
        (self.n - start).min(self.m)
    }

    /// Index of the first element of run `run`.
    #[inline]
    pub fn run_start(&self, run: u64) -> u64 {
        assert!(run < self.runs(), "run index {run} out of range");
        run * self.m
    }

    /// Iterator over `(run_index, start, len)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        (0..self.runs()).map(move |r| (r, self.run_start(r), self.run_len(r)))
    }

    /// Whether the final run is shorter than `m`.
    #[inline]
    pub fn has_tail_run(&self) -> bool {
        !self.n.is_multiple_of(self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let l = RunLayout::new(1_000, 100);
        assert_eq!(l.runs(), 10);
        assert_eq!(l.full_runs(), 10);
        assert!(!l.has_tail_run());
        assert_eq!(l.run_len(0), 100);
        assert_eq!(l.run_len(9), 100);
        assert_eq!(l.run_start(9), 900);
    }

    #[test]
    fn tail_run() {
        let l = RunLayout::new(1_050, 100);
        assert_eq!(l.runs(), 11);
        assert_eq!(l.full_runs(), 10);
        assert!(l.has_tail_run());
        assert_eq!(l.run_len(10), 50);
    }

    #[test]
    fn single_run() {
        let l = RunLayout::new(64, 64);
        assert_eq!(l.runs(), 1);
        assert_eq!(l.run_len(0), 64);
    }

    #[test]
    fn empty_dataset() {
        let l = RunLayout::new(0, 128);
        assert_eq!(l.runs(), 0);
        assert_eq!(l.full_runs(), 0);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn iter_covers_everything_exactly_once() {
        let l = RunLayout::new(987, 100);
        let mut covered = 0u64;
        let mut expected_start = 0u64;
        for (idx, start, len) in l.iter() {
            assert_eq!(
                start, expected_start,
                "run {idx} starts where previous ended"
            );
            covered += len;
            expected_start = start + len;
        }
        assert_eq!(covered, 987);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_m_panics() {
        RunLayout::new(10, 0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::StorageError;
        assert!(matches!(
            RunLayout::try_new(10, 0),
            Err(StorageError::InvalidLayout { m: 0, .. })
        ));
        assert!(matches!(
            RunLayout::try_new(10, 11),
            Err(StorageError::InvalidLayout { n: 10, m: 11, .. })
        ));
        let l = RunLayout::try_new(1_050, 100).unwrap();
        assert_eq!(l.runs(), 11);
        assert_eq!(l.run_len(10), 50);
        // n = 0 with a positive m is a valid (empty) layout.
        assert_eq!(RunLayout::try_new(0, 5).unwrap().runs(), 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn m_larger_than_n_panics() {
        RunLayout::new(10, 11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn run_len_out_of_range_panics() {
        RunLayout::new(100, 10).run_len(10);
    }
}
