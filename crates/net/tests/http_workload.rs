//! The HTTP workload harness end to end: zero torn reads, zero HTTP errors,
//! single-target and plan ops both byte-verified, refreshes mid-run, and at
//! least one complete TTL expiry→refresh→publish cycle observed over the
//! wire.

use opaq_net::{run_http_workload, HttpWorkloadSpec, NetError};
use std::time::Duration;

#[test]
fn quick_http_workload_serves_everything_untorn() {
    let mut spec = HttpWorkloadSpec::quick();
    spec.spec.clients = 4;
    spec.spec.tenants = 2;
    spec.spec.ops_per_client = 150;
    spec.ttl = Some(Duration::from_millis(80));
    let report = run_http_workload(&spec).unwrap();

    assert_eq!(
        report.torn_reads,
        0,
        "torn reads over the wire:\n{}",
        report.render()
    );
    assert_eq!(report.http_errors, 0, "{}", report.render());
    // Every fifth op is a POST /v1/query pipeline; the rest are
    // single-target requests.  Both legs must verify completely.
    assert_eq!(report.ops + report.plan_ops, 4 * 150, "{}", report.render());
    assert_eq!(report.plan_ops, 4 * 150 / 5, "{}", report.render());
    assert_eq!(report.verified, report.ops);
    assert_eq!(report.plan_verified, report.plan_ops, "{}", report.render());
    assert!(report.plan_verified > 0);
    assert_eq!(
        report.refreshes_published,
        2 * 3,
        "quick spec: 2 tenants x 3 rounds"
    );
    assert!(
        report.non_fresh_served > 0,
        "the TTL probe must observe expiry: {}",
        report.render()
    );
    assert!(
        report.ttl_refreshes_observed >= 1,
        "at least one full expiry→refresh→publish cycle: {}",
        report.render()
    );
    assert!(report.catalog.ttl_refreshes >= 1);
    assert!(report.server.requests >= report.ops);
    assert!(report.latency.p50 <= report.latency.p999);
    let rendered = report.render();
    assert!(rendered.contains("ttl refreshes observed"), "{rendered}");
}

#[test]
fn degenerate_specs_are_rejected() {
    let mut spec = HttpWorkloadSpec::quick();
    spec.spec.clients = 0;
    assert!(matches!(
        run_http_workload(&spec),
        Err(NetError::InvalidConfig(_))
    ));
}
