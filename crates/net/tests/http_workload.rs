//! The HTTP workload harness end to end: zero torn reads, zero HTTP errors,
//! single-target and plan ops both byte-verified, refreshes mid-run, and at
//! least one complete TTL expiry→refresh→publish cycle observed over the
//! wire.

use opaq_metrics::SloThresholds;
use opaq_net::{run_http_workload, HttpWorkloadSpec, NetError};
use std::time::Duration;

#[test]
fn quick_http_workload_serves_everything_untorn() {
    let mut spec = HttpWorkloadSpec::quick();
    spec.spec.clients = 4;
    spec.spec.tenants = 2;
    spec.spec.ops_per_client = 150;
    spec.ttl = Some(Duration::from_millis(80));
    let report = run_http_workload(&spec).unwrap();

    assert_eq!(
        report.torn_reads,
        0,
        "torn reads over the wire:\n{}",
        report.render()
    );
    assert_eq!(report.http_errors, 0, "{}", report.render());
    // Every fifth op is a POST /v1/query pipeline; the rest are
    // single-target requests.  Both legs must verify completely.
    assert_eq!(report.ops + report.plan_ops, 4 * 150, "{}", report.render());
    assert_eq!(report.plan_ops, 4 * 150 / 5, "{}", report.render());
    assert_eq!(report.verified, report.ops);
    assert_eq!(report.plan_verified, report.plan_ops, "{}", report.render());
    assert!(report.plan_verified > 0);
    assert_eq!(
        report.refreshes_published,
        2 * 3,
        "quick spec: 2 tenants x 3 rounds"
    );
    assert!(
        report.non_fresh_served > 0,
        "the TTL probe must observe expiry: {}",
        report.render()
    );
    assert!(
        report.ttl_refreshes_observed >= 1,
        "at least one full expiry→refresh→publish cycle: {}",
        report.render()
    );
    assert!(report.catalog.ttl_refreshes >= 1);
    assert!(report.server.requests >= report.ops);
    assert!(report.latency.p50 <= report.latency.p999);
    let rendered = report.render();
    assert!(rendered.contains("ttl refreshes observed"), "{rendered}");
}

#[test]
fn open_loop_mode_holds_the_offered_rate_and_reports_slo_verdicts() {
    let mut spec = HttpWorkloadSpec::quick();
    spec.spec.clients = 2;
    spec.spec.tenants = 2;
    spec.spec.ops_per_client = 60;
    spec.spec.refresh_rounds = 1;
    spec.ttl = None; // keep the run to the rate-controlled client phase
    spec.target_qps = Some(1_000.0);
    spec.slo = SloThresholds {
        // Generous enough that a loopback run can't breach latency, strict
        // enough that any error or shed is a breach.
        p99: Some(Duration::from_secs(5)),
        p999: Some(Duration::from_secs(10)),
        max_error_rate: Some(0.0),
        max_shed_rate: Some(0.0),
        ..Default::default()
    };
    let report = run_http_workload(&spec).unwrap();

    // 120 ops at 1000 qps aggregate: the schedule alone takes ≥ ~118 ms.
    assert!(
        report.wall >= Duration::from_millis(100),
        "open loop must pace the clients, finished in {:?}",
        report.wall
    );
    assert_eq!(report.torn_reads, 0, "{}", report.render());
    assert_eq!(report.http_errors, 0, "{}", report.render());
    assert_eq!(report.sheds, 0, "{}", report.render());
    assert_eq!(report.ops + report.plan_ops, 2 * 60);
    assert_eq!(report.verified, report.ops);
    assert_eq!(report.plan_verified, report.plan_ops);
    assert_eq!(report.target_qps, Some(1_000.0));
    assert_eq!(report.slo.checks.len(), 4);
    assert_eq!(report.slo.breaches(), 0, "{}", report.render());
    let rendered = report.render();
    assert!(
        rendered.contains("target qps (open loop): 1000"),
        "{rendered}"
    );
    assert!(rendered.contains("slo verdicts"), "{rendered}");
}

#[test]
fn degenerate_specs_are_rejected() {
    let mut spec = HttpWorkloadSpec::quick();
    spec.spec.clients = 0;
    assert!(matches!(
        run_http_workload(&spec),
        Err(NetError::InvalidConfig(_))
    ));
    let mut spec = HttpWorkloadSpec::quick();
    spec.target_qps = Some(0.0);
    assert!(matches!(
        run_http_workload(&spec),
        Err(NetError::InvalidConfig(_))
    ));
    spec.target_qps = Some(f64::NAN);
    assert!(matches!(
        run_http_workload(&spec),
        Err(NetError::InvalidConfig(_))
    ));
}
