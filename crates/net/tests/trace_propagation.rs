//! Trace-id propagation over real sockets: every response carries
//! `x-opaq-trace-id`, a valid incoming id is echoed (not re-minted), the id
//! survives replica failover retries and degraded last-good replay, and the
//! serving replica's `/v1/_debug/trace` turns the id back into a span tree.

use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_metrics::TraceId;
use opaq_net::{
    bootstrap, BreakerConfig, GroupConfig, HashRing, HttpClient, HttpServer, ReplicaConfig,
    ReplicaSet, ReplicationStats, RingConfig, RingMembership, RoutedFleet, ServerConfig,
    OWNER_HEADER, TRACE_HEADER,
};
use opaq_serve::{DatasetId, QueryEngine, SketchCatalog, TenantId};
use std::sync::Arc;
use std::time::Duration;

fn sketch_of(seed: u64, n: u64) -> opaq_core::QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(1000)
        .sample_size(100)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(
        (0..n)
            .map(|i| i.wrapping_mul(seed | 1) % (1 << 20))
            .collect(),
    )
    .unwrap();
    inc.into_sketch().unwrap()
}

fn primary_with(tenants: &[(&str, &str, u64)]) -> (Arc<SketchCatalog>, HttpServer, String) {
    let catalog = Arc::new(SketchCatalog::unbounded());
    for (i, (tenant, dataset, n)) in tenants.iter().enumerate() {
        catalog
            .publish(
                &TenantId::new(*tenant),
                &DatasetId::new(*dataset),
                sketch_of(i as u64 + 3, *n),
            )
            .unwrap();
    }
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (catalog, server, addr)
}

fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 4,
        min_samples: 1,
        failure_threshold: 0.5,
        cooldown: Duration::from_millis(50),
    }
}

fn fast_replica_config(retry_passes: u32) -> ReplicaConfig {
    ReplicaConfig::builder()
        .breaker(fast_breaker())
        .read_timeout(Duration::from_millis(500))
        .connect_timeout(Duration::from_millis(200))
        .retry_passes(retry_passes)
        .build()
        .unwrap()
}

#[test]
fn server_echoes_a_valid_incoming_trace_id_and_mints_otherwise() {
    let (_catalog, mut server, addr) = primary_with(&[("acme", "events", 4_000)]);
    let mut client = HttpClient::new(addr);

    // No stamp: the front door mints one — present and well-formed.
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.status, 200);
    let minted = response
        .header(TRACE_HEADER)
        .and_then(TraceId::parse)
        .expect("every response carries a parseable trace id");

    // Stamp a fresh id: the response echoes it, byte for byte.
    let stamped = TraceId::mint();
    assert_ne!(stamped, minted);
    client.set_trace_id(Some(stamped));
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header(TRACE_HEADER), Some(&*stamped.to_string()));

    // Errors carry the id too: a 404 and a parse-level 400 both echo it.
    let response = client.get("/v1/ghost/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(response.header(TRACE_HEADER), Some(&*stamped.to_string()));
    let response = client.get("/v1/acme/events/quantile?phi=nope").unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header(TRACE_HEADER), Some(&*stamped.to_string()));

    // A malformed incoming id is never echoed back verbatim.
    client.set_trace_id(None);
    let response = client.get("/healthz").unwrap();
    assert!(response
        .header(TRACE_HEADER)
        .and_then(TraceId::parse)
        .is_some());

    server.shutdown();
}

#[test]
fn debug_trace_renders_the_chain_for_a_stamped_id() {
    let (_catalog, mut server, addr) = primary_with(&[("acme", "events", 4_000)]);
    let mut client = HttpClient::new(addr);

    let stamped = TraceId::mint();
    client.set_trace_id(Some(stamped));
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.status, 200);

    let debug = client
        .get(&format!("/v1/_debug/trace?id={stamped}"))
        .unwrap();
    assert_eq!(debug.status, 200);
    let tree = debug.body_str().unwrap();
    for stage in [
        "request", "parse", "compile", "fetch", "snapshot", "extract", "render",
    ] {
        assert!(tree.contains(stage), "span tree missing {stage}:\n{tree}");
    }

    server.shutdown();
}

#[test]
fn failover_retries_keep_the_same_trace_id() {
    let fleet = [("acme", "events", 4_000u64)];
    let (_catalog, mut primary, primary_addr) = primary_with(&fleet);
    let secondary_catalog = Arc::new(SketchCatalog::unbounded());
    bootstrap(&secondary_catalog, &primary_addr, None, None).unwrap();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&secondary_catalog)));
    let mut secondary = HttpServer::start(engine, ServerConfig::default()).unwrap();
    let secondary_addr = secondary.local_addr().to_string();

    let mut set = ReplicaSet::new(&[primary_addr, secondary_addr], fast_replica_config(3)).unwrap();

    let trace = TraceId::mint();
    set.set_trace_id(Some(trace));
    let target = "/v1/acme/events/quantile?phi=0.5";

    // Served by the preferred (primary) replica, echoing the stamped id.
    let first = set.get(target).unwrap();
    assert!(!first.degraded);
    assert_eq!(
        first.response.header(TRACE_HEADER),
        Some(&*trace.to_string())
    );

    // Kill the preferred replica: the retry lands on the secondary, and the
    // answer still carries the *same* trace — one trace across the hop.
    primary.shutdown();
    let failed_over = set.get(target).unwrap();
    assert!(!failed_over.degraded);
    assert_eq!(
        failed_over.response.header(TRACE_HEADER),
        Some(&*trace.to_string()),
        "failover hop lost the trace id"
    );

    secondary.shutdown();
}

#[test]
fn degraded_replay_is_restamped_with_the_current_trace_id() {
    let (_catalog, mut primary, primary_addr) = primary_with(&[("acme", "events", 4_000)]);
    let mut set = ReplicaSet::new(&[primary_addr], fast_replica_config(1)).unwrap();

    let target = "/v1/acme/events/quantile?phi=0.5";
    let old_trace = TraceId::mint();
    set.set_trace_id(Some(old_trace));
    let live = set.get(target).unwrap();
    assert!(!live.degraded);
    assert_eq!(
        live.response.header(TRACE_HEADER),
        Some(&*old_trace.to_string())
    );

    // Total outage: the cached answer replays, but stamped with the *new*
    // request's trace id — not the one it was recorded under.
    primary.shutdown();
    let new_trace = TraceId::mint();
    assert_ne!(new_trace, old_trace);
    set.set_trace_id(Some(new_trace));
    let degraded = set.get(target).unwrap();
    assert!(degraded.degraded);
    assert_eq!(degraded.response.status, 200);
    assert_eq!(
        degraded.response.header(TRACE_HEADER),
        Some(&*new_trace.to_string()),
        "degraded replay must carry the current trace id"
    );
    assert_eq!(live.response.body, degraded.response.body);
}

/// Two single-replica ring groups over one shared ring; the tenant's data
/// lives only in its owning group's catalog.  Returns the running servers,
/// their addresses in ring-group order, the ring, and the tenant's owner
/// index.
fn ring_pair(tenant: &str) -> (Vec<HttpServer>, Vec<Vec<String>>, Arc<HashRing>, usize) {
    // Ring addresses are routing metadata here — the fleet dials the real
    // ephemeral addresses passed separately, and no glob plan scatters.
    let ring = Arc::new(
        HashRing::new(RingConfig::new(vec![
            GroupConfig {
                name: "group-0".into(),
                addrs: vec!["127.0.0.1:1".into()],
            },
            GroupConfig {
                name: "group-1".into(),
                addrs: vec!["127.0.0.1:1".into()],
            },
        ]))
        .unwrap(),
    );
    let owner = ring.owner_index(tenant);
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for (g, group) in ring.groups().iter().enumerate() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        if g == owner {
            catalog
                .publish(
                    &TenantId::new(tenant),
                    &DatasetId::new("events"),
                    sketch_of(7, 4_000),
                )
                .unwrap();
        }
        let engine = Arc::new(QueryEngine::new(catalog));
        let config = ServerConfig::builder()
            .ring(Arc::new(
                RingMembership::new((*ring).clone(), &group.name).unwrap(),
            ))
            .build()
            .unwrap();
        let server = HttpServer::start(engine, config).unwrap();
        addrs.push(vec![server.local_addr().to_string()]);
        servers.push(server);
    }
    (servers, addrs, ring, owner)
}

#[test]
fn wrong_owner_answers_carry_the_stamped_trace_id() {
    let tenant = "acme";
    let (mut servers, addrs, ring, owner) = ring_pair(tenant);
    let wrong = 1 - owner;

    let mut client = HttpClient::new(addrs[wrong][0].clone());
    let stamped = TraceId::mint();
    client.set_trace_id(Some(stamped));
    let response = client
        .get(&format!("/v1/{tenant}/events/quantile?phi=0.5"))
        .unwrap();
    assert_eq!(response.status, 421, "misdirected request must be refused");
    assert_eq!(
        response.header(TRACE_HEADER),
        Some(&*stamped.to_string()),
        "wrong_owner answer lost the trace id"
    );
    assert_eq!(
        response.header(OWNER_HEADER),
        Some(&*ring.groups()[owner].name.clone()),
        "wrong_owner answer must name the owning group"
    );
    let body = response.body_str().unwrap();
    assert!(
        body.contains("\"wrong_owner\""),
        "typed code missing: {body}"
    );

    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn rerouted_requests_keep_one_trace_id_across_both_hops() {
    let tenant = "acme";
    let (mut servers, addrs, ring, owner) = ring_pair(tenant);

    let stats = ReplicationStats::new();
    let mut fleet = RoutedFleet::new(Arc::clone(&ring), &addrs, &fast_replica_config(1))
        .unwrap()
        .with_stats(Arc::clone(&stats));

    let stamped = TraceId::mint();
    fleet.set_trace_id(Some(stamped));
    let target = format!("/v1/{tenant}/events/quantile?phi=0.5");
    // Deliberately hit the non-owning group: the fleet must follow the
    // typed wrong_owner answer to the owner in exactly one extra hop, with
    // the same trace stamped on both.
    let answer = fleet.get_misrouted(tenant, &target).unwrap();
    assert_eq!(answer.response.status, 200, "re-route did not reach owner");
    assert_eq!(
        answer.response.header(TRACE_HEADER),
        Some(&*stamped.to_string()),
        "re-routed hop lost the trace id"
    );
    assert_eq!(
        answer.response.header(OWNER_HEADER),
        Some(&*ring.groups()[owner].name.clone()),
    );
    assert_eq!(stats.reroutes(), 1, "re-route was not counted");

    // The routed path goes straight to the owner: no extra re-routes.
    let direct = fleet.get(tenant, &target).unwrap();
    assert_eq!(direct.response.status, 200);
    assert_eq!(stats.reroutes(), 1);

    for server in &mut servers {
        server.shutdown();
    }
}
