//! End-to-end tests of the HTTP front-end over a real loopback socket:
//! every endpoint family byte-identical to the in-process answer, limits
//! (413/431), method/route errors, keep-alive caps, TTL freshness over the
//! wire, and shutdown behaviour.

use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_net::http::ReadLimits;
use opaq_net::{
    render_plan_response_json, render_response_json, HttpClient, HttpServer, Json, ServerConfig,
    FRESHNESS_HEADER, SOURCES_HEADER, VERSION_HEADER,
};
use opaq_query::{merge_tree, PlanResponse, PlanSource};
use opaq_serve::{
    execute_on, DatasetId, Freshness, QueryEngine, QueryRequest, QueryResponse, RefreshPool,
    SketchCatalog, TenantId,
};
use std::sync::Arc;
use std::time::Duration;

fn sketch_of(n: u64) -> opaq_core::QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(1000)
        .sample_size(100)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run((0..n).collect()).unwrap();
    inc.into_sketch().unwrap()
}

/// Engine with one published tenant (`acme/events`, 10k keys) + its server.
fn serve(config: ServerConfig) -> (Arc<SketchCatalog>, Arc<QueryEngine>, HttpServer) {
    let catalog = Arc::new(SketchCatalog::unbounded());
    catalog
        .publish(
            &TenantId::new("acme"),
            &DatasetId::new("events"),
            sketch_of(10_000),
        )
        .unwrap();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(Arc::clone(&engine), config).unwrap();
    (catalog, engine, server)
}

#[test]
fn every_endpoint_family_is_byte_identical_to_the_in_process_answer() {
    let (_catalog, _engine, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let direct = sketch_of(10_000);

    let cases: Vec<(QueryRequest, String, Option<String>)> = vec![
        (
            QueryRequest::Quantile { phi: 0.5 },
            "/v1/acme/events/quantile?phi=0.5".to_string(),
            None,
        ),
        (
            QueryRequest::Quantile { phi: 0.4237 },
            "/v1/acme/events/quantile?phi=0.4237".to_string(),
            None,
        ),
        (
            QueryRequest::Quantile { phi: 0.0 },
            "/v1/acme/events/quantile?phi=0".to_string(),
            None,
        ),
        (
            QueryRequest::Quantile { phi: 1.0 },
            "/v1/acme/events/quantile?phi=1".to_string(),
            None,
        ),
        (
            QueryRequest::Rank { key: 2_500 },
            "/v1/acme/events/rank?key=2500".to_string(),
            None,
        ),
        (
            QueryRequest::Profile { count: 10 },
            "/v1/acme/events/profile?count=10".to_string(),
            None,
        ),
        (
            QueryRequest::QuantileBatch {
                phis: vec![0.1, 0.5, 0.9],
            },
            "/v1/acme/events/quantile_batch".to_string(),
            Some("{\"phis\":[0.1,0.5,0.9]}".to_string()),
        ),
    ];
    for (request, target, body) in cases {
        let response = match &body {
            Some(body) => client.post_json(&target, body).unwrap(),
            None => client.get(&target).unwrap(),
        };
        assert_eq!(response.status, 200, "{target}");
        assert_eq!(response.header(VERSION_HEADER), Some("1"), "{target}");
        assert_eq!(response.header(FRESHNESS_HEADER), Some("fresh"), "{target}");
        let expected = render_response_json(&QueryResponse {
            output: execute_on(&direct, &request).unwrap(),
            version: 1,
            total_elements: direct.total_elements(),
            freshness: Freshness::Fresh,
        });
        assert_eq!(
            response.body_str().unwrap(),
            expected,
            "wire bytes must equal the in-process serialization for {target}"
        );
        // And the body is well-formed JSON agreeing with the header.
        let parsed = Json::parse(response.body_str().unwrap()).unwrap();
        assert_eq!(parsed.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("freshness").unwrap().as_str(), Some("fresh"));
    }
}

#[test]
fn path_segments_decode_individually_so_odd_tenant_ids_route() {
    // The catalog supports tenant ids with slashes, pluses and spaces; over
    // HTTP they arrive percent-encoded and must land on the same entry.
    let catalog = Arc::new(SketchCatalog::unbounded());
    for tenant in ["a/b", "a+b", "a b"] {
        catalog
            .publish(
                &TenantId::new(tenant),
                &DatasetId::new("events"),
                sketch_of(1_000),
            )
            .unwrap();
    }
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    for encoded in ["a%2Fb", "a+b", "a%20b"] {
        let response = client
            .get(&format!("/v1/{encoded}/events/quantile?phi=0.5"))
            .unwrap();
        assert_eq!(response.status, 200, "tenant {encoded} must route");
        assert_eq!(response.header(VERSION_HEADER), Some("1"), "{encoded}");
    }
    // An *unencoded* slash is a separator: 5 segments => 404, not a lookup
    // of tenant "a/b".
    assert_eq!(
        client
            .get("/v1/a/b/events/quantile?phi=0.5")
            .unwrap()
            .status,
        404
    );
}

#[test]
fn profile_default_count_and_batch_of_one() {
    let (_c, _e, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let response = client.get("/v1/acme/events/profile").unwrap();
    assert_eq!(response.status, 200);
    let parsed = Json::parse(response.body_str().unwrap()).unwrap();
    assert_eq!(
        parsed.get("estimates").unwrap().as_array().unwrap().len(),
        9,
        "default count=10 => 9 interior quantiles"
    );
    let response = client
        .post_json("/v1/acme/events/quantile_batch", "{\"phis\":[0.25]}")
        .unwrap();
    assert_eq!(response.status, 200);
}

#[test]
fn health_and_metrics_expose_catalog_and_latency() {
    let (_c, engine, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let parsed = Json::parse(health.body_str().unwrap()).unwrap();
    assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(parsed.get("entries").unwrap().as_u64(), Some(1));

    // Generate some latency samples, then scrape.
    for _ in 0..5 {
        let r = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
        assert_eq!(r.status, 200);
    }
    assert_eq!(engine.overall().count(), 5);
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str().unwrap();
    assert!(
        text.contains("opaq_request_latency_nanos{tenant=\"acme\",quantile=\"p50\"}"),
        "{text}"
    );
    assert!(text.contains("quantile=\"p999\""), "{text}");
    assert!(text.contains("opaq_catalog_publishes 1"), "{text}");
    assert!(text.contains("opaq_catalog_entries 1"), "{text}");
    assert!(
        text.contains("opaq_request_count{tenant=\"_all\"} 5"),
        "{text}"
    );
}

#[test]
fn error_statuses_are_typed() {
    let (_c, _e, server) = serve(
        ServerConfig::builder()
            .limits(ReadLimits {
                max_header_bytes: 512,
                max_body_bytes: 256,
            })
            .build()
            .unwrap(),
    );
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::new(addr.clone());

    // 404: unknown tenant, unknown route, unknown op.
    assert_eq!(
        client
            .get("/v1/ghost/events/quantile?phi=0.5")
            .unwrap()
            .status,
        404
    );
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/acme/events/medianify").unwrap().status, 404);
    // 400: bad/missing parameters and invalid phi ranges.
    assert_eq!(client.get("/v1/acme/events/quantile").unwrap().status, 400);
    assert_eq!(
        client
            .get("/v1/acme/events/quantile?phi=abc")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .get("/v1/acme/events/quantile?phi=NaN")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .get("/v1/acme/events/quantile?phi=1.5")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client.get("/v1/acme/events/rank?key=-3").unwrap().status,
        400
    );
    assert_eq!(
        client
            .get("/v1/acme/events/profile?count=0")
            .unwrap()
            .status,
        400
    );
    let bad_batch = client
        .post_json("/v1/acme/events/quantile_batch", "{\"phis\":[0.5,")
        .unwrap();
    assert_eq!(bad_batch.status, 400);
    let parsed = Json::parse(bad_batch.body_str().unwrap()).unwrap();
    assert!(parsed.get("error").is_some());
    // 405: wrong method.
    assert_eq!(
        client
            .post_json("/v1/acme/events/quantile?phi=0.5", "{}")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client.get("/v1/acme/events/quantile_batch").unwrap().status,
        405
    );
    // 413: body over the cap.
    let huge = format!("{{\"phis\":[{}]}}", "0.5,".repeat(200) + "0.5");
    assert!(huge.len() > 256);
    assert_eq!(
        client
            .post_json("/v1/acme/events/quantile_batch", &huge)
            .unwrap()
            .status,
        413
    );
    // 431: header block over the cap (fresh client: the 413 closed ours).
    let mut client = HttpClient::new(addr);
    let long_target = format!("/v1/acme/events/quantile?phi=0.5&pad={}", "x".repeat(600));
    assert_eq!(client.get(&long_target).unwrap().status, 431);
}

#[test]
fn keep_alive_cap_closes_and_client_reconnects() {
    let (_c, _e, server) = serve(
        ServerConfig::builder()
            .keep_alive_max_requests(3)
            .build()
            .unwrap(),
    );
    let mut client = HttpClient::new(server.local_addr().to_string());
    // 10 requests across a cap of 3 per connection: the client must ride the
    // `connection: close` handshakes transparently.
    for i in 0..10 {
        let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
        assert_eq!(response.status, 200, "request {i}");
    }
    assert!(server.stats().connections >= 4, "{:?}", server.stats());
}

#[test]
fn malformed_requests_get_400_not_a_hang() {
    use std::io::{Read, Write};
    let (_c, _e, server) = serve(ServerConfig::default());
    for raw in [
        "BANANAS\r\n\r\n",
        "GET noslash HTTP/1.1\r\n\r\n",
        "GET / HTTP/2.0\r\n\r\n",
        "GET / HTTP/1.1\r\nbroken header\r\n\r\n",
        "POST /v1/a/b/quantile_batch HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 4\r\n\r\nabcd",
        "POST /v1/a/b/quantile_batch HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    ] {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let status: u16 = out
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(
            status == 400 || status == 501,
            "raw {raw:?} => {status} ({out:?})"
        );
        assert!(out.contains("connection: close"), "{out:?}");
    }
}

#[test]
fn ttl_expiry_is_visible_over_the_wire_until_refresh_publishes() {
    let (catalog, _engine, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let (tenant, dataset) = (TenantId::new("acme"), DatasetId::new("events"));
    catalog
        .set_ttl(&tenant, &dataset, Some(Duration::from_millis(30)))
        .unwrap();

    // Within the TTL: fresh.
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.header(FRESHNESS_HEADER), Some("fresh"));

    // Expired with no hook: stale, same old version still served byte-exact.
    std::thread::sleep(Duration::from_millis(60));
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.header(FRESHNESS_HEADER), Some("stale"));
    assert_eq!(response.header(VERSION_HEADER), Some("1"));
    let direct = sketch_of(10_000);
    let expected = render_response_json(&QueryResponse {
        output: execute_on(&direct, &QueryRequest::Quantile { phi: 0.5 }).unwrap(),
        version: 1,
        total_elements: 10_000,
        freshness: Freshness::Stale,
    });
    assert_eq!(response.body_str().unwrap(), expected);

    // Install a real refresh pipeline: the next expired access routes the
    // entry to the pool, serves `refreshing`, and the publish flips it back
    // to `fresh` at version 2.
    let pool = Arc::new(RefreshPool::new(Arc::clone(&catalog), 1).unwrap());
    let weak = Arc::downgrade(&pool);
    catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
        let Some(pool) = weak.upgrade() else {
            return false;
        };
        pool.submit(tenant, dataset, || Ok(sketch_of(20_000)))
            .is_ok()
    }));
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.header(FRESHNESS_HEADER), Some("refreshing"));
    assert_eq!(
        response.header(VERSION_HEADER),
        Some("1"),
        "old version serves"
    );
    assert!(pool.wait_idle(Duration::from_secs(10)));
    let response = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(response.header(FRESHNESS_HEADER), Some("fresh"));
    assert_eq!(response.header(VERSION_HEADER), Some("2"));
    let parsed = Json::parse(response.body_str().unwrap()).unwrap();
    assert_eq!(parsed.get("total_elements").unwrap().as_u64(), Some(20_000));
}

#[test]
fn query_plans_are_byte_identical_to_the_offline_merge() {
    // Three matching tenants plus one the glob must skip.
    let catalog = Arc::new(SketchCatalog::unbounded());
    let sketches: Vec<_> = (0..3u64)
        .map(|i| Arc::new(sketch_of(2_000 + i * 1_000)))
        .collect();
    for (i, sketch) in sketches.iter().enumerate() {
        catalog
            .publish(
                &TenantId::new(format!("tenant-{i}")),
                &DatasetId::new("events"),
                (**sketch).clone(),
            )
            .unwrap();
    }
    catalog
        .publish(
            &TenantId::new("ttl-probe"),
            &DatasetId::new("events"),
            sketch_of(100),
        )
        .unwrap();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    let response = client
        .post_json(
            "/v1/query",
            "{\"plan\":\"fetch tenant-*/events | coalesce | quantile 0.5,0.99\"}",
        )
        .unwrap();
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(response.header(SOURCES_HEADER), Some("3"));

    // Offline replay: same sketches, same merge tree, same renderer.
    let fused = merge_tree(&sketches).unwrap();
    let expected = render_plan_response_json(&PlanResponse {
        output: execute_on(
            &fused,
            &QueryRequest::QuantileBatch {
                phis: vec![0.5, 0.99],
            },
        )
        .unwrap(),
        total_elements: fused.total_elements(),
        sources: (0..3)
            .map(|i| PlanSource {
                tenant: TenantId::new(format!("tenant-{i}")),
                dataset: DatasetId::new("events"),
                version: 1,
                freshness: Freshness::Fresh,
            })
            .collect(),
    });
    assert_eq!(
        response.body_str().unwrap(),
        expected,
        "plan answer must equal the offline merge byte-for-byte"
    );
}

#[test]
fn degenerate_single_target_plan_agrees_with_the_get_route() {
    let (_c, _e, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let get = client.get("/v1/acme/events/quantile?phi=0.5").unwrap();
    assert_eq!(get.status, 200);
    let plan = client
        .post_json(
            "/v1/query",
            "{\"plan\":\"fetch acme/events | quantile 0.5\"}",
        )
        .unwrap();
    assert_eq!(plan.status, 200, "{:?}", plan.body_str());
    assert_eq!(plan.header(SOURCES_HEADER), Some("1"));

    // Same executor, same sketch: the estimates agree and the plan's one
    // source is exactly the version/freshness the GET route reported.
    let get_body = Json::parse(get.body_str().unwrap()).unwrap();
    let plan_body = Json::parse(plan.body_str().unwrap()).unwrap();
    assert_eq!(get_body.get("estimate"), plan_body.get("estimate"));
    assert_eq!(
        get_body.get("total_elements"),
        plan_body.get("total_elements")
    );
    let sources = plan_body.get("sources").unwrap().as_array().unwrap();
    assert_eq!(sources.len(), 1);
    assert_eq!(sources[0].get("tenant").unwrap().as_str(), Some("acme"));
    assert_eq!(
        sources[0]
            .get("version")
            .unwrap()
            .as_u64()
            .map(|v| v.to_string()),
        get.header(VERSION_HEADER).map(str::to_string)
    );
    assert_eq!(
        sources[0].get("freshness").unwrap().as_str(),
        get.header(FRESHNESS_HEADER)
    );
}

#[test]
fn query_errors_carry_stable_machine_readable_codes() {
    let (_c, _e, server) = serve(ServerConfig::default());
    let mut client = HttpClient::new(server.local_addr().to_string());
    let code_of = |body: &str| -> String {
        Json::parse(body)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };

    // Wrong method on the plan route.
    assert_eq!(client.get("/v1/query").unwrap().status, 405);
    // Unparseable plan text: a typed parse error naming the stage.
    let bad = client
        .post_json("/v1/query", "{\"plan\":\"fetch acme/events | juggle\"}")
        .unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(code_of(bad.body_str().unwrap()), "invalid_plan");
    assert!(
        bad.body_str().unwrap().contains("stage"),
        "{:?}",
        bad.body_str()
    );
    // Multi-source selector without a coalesce stage.
    catalog_publish_second_tenant(&_c);
    let torn = client
        .post_json("/v1/query", "{\"plan\":\"fetch */events | quantile 0.5\"}")
        .unwrap();
    assert_eq!(torn.status, 400);
    assert_eq!(code_of(torn.body_str().unwrap()), "needs_coalesce");
    // A glob that matches nothing.
    let missing = client
        .post_json(
            "/v1/query",
            "{\"plan\":\"fetch ghost-*/events | coalesce | quantile 0.5\"}",
        )
        .unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(code_of(missing.body_str().unwrap()), "not_found");
    // An exact selector for an unpublished entry keeps the legacy message.
    let unknown = client
        .post_json(
            "/v1/query",
            "{\"plan\":\"fetch ghost/events | quantile 0.5\"}",
        )
        .unwrap();
    assert_eq!(unknown.status, 404);
    assert!(
        unknown
            .body_str()
            .unwrap()
            .contains("no sketch published for ghost/events"),
        "{:?}",
        unknown.body_str()
    );
    // Legacy routes share the same typed error envelope.
    let legacy = client.get("/v1/ghost/events/quantile?phi=0.5").unwrap();
    assert_eq!(legacy.status, 404);
    assert_eq!(code_of(legacy.body_str().unwrap()), "not_found");
    let bad_param = client.get("/v1/acme/events/quantile").unwrap();
    assert_eq!(bad_param.status, 400);
    assert_eq!(code_of(bad_param.body_str().unwrap()), "bad_request");
}

fn catalog_publish_second_tenant(catalog: &Arc<SketchCatalog>) {
    catalog
        .publish(
            &TenantId::new("globex"),
            &DatasetId::new("events"),
            sketch_of(5_000),
        )
        .unwrap();
}

#[test]
fn server_config_builder_rejects_unservable_configurations() {
    assert!(ServerConfig::builder().workers(0).build().is_err());
    assert!(ServerConfig::builder()
        .keep_alive_max_requests(0)
        .build()
        .is_err());
    assert!(ServerConfig::builder()
        .read_timeout(Duration::ZERO)
        .build()
        .is_err());
    assert!(ServerConfig::builder()
        .keep_alive_idle(Duration::ZERO)
        .build()
        .is_err());
    // Zero backlog is a *valid* tuning (shed everything not immediately
    // claimed); the builder must not confuse it with a zero cap.
    let config = ServerConfig::builder().accept_backlog(0).build().unwrap();
    assert_eq!(config.accept_backlog, 0);
}

#[test]
fn shutdown_is_clean_and_connections_stop() {
    let (_c, _e, mut server) = serve(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = HttpClient::new(addr.to_string());
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    server.shutdown();
    // Idempotent.
    server.shutdown();
    // New connections are refused (or reset before a response).
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    match refused {
        Err(_) => {}
        Ok(stream) => {
            use std::io::Read;
            let mut buf = [0u8; 1];
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let got = (&stream).read(&mut buf);
            assert!(
                matches!(got, Ok(0) | Err(_)),
                "a closed server must not answer"
            );
        }
    }
}

#[test]
fn overload_sheds_with_503_instead_of_queueing_forever() {
    // 1 worker + zero-capacity queue: with the single worker busy on a held
    // connection, a second connection must be bounced with 503.
    let (_c, _e, server) = serve(
        ServerConfig::builder()
            .workers(1)
            .accept_backlog(0)
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();
    // Hold the worker: open a connection and a request stream but never
    // finish a request; the worker sits in its keep-alive wait.
    let _held = {
        let mut c = HttpClient::new(addr.to_string());
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        c // keep-alive connection stays open, worker parked on it
    };
    std::thread::sleep(Duration::from_millis(50));
    let mut shed = HttpClient::new(addr.to_string());
    let response = shed.get("/healthz");
    match response {
        Ok(response) => assert_eq!(response.status, 503),
        Err(_) => {
            // Depending on timing the 503 write can race the client's read;
            // rejection may surface as a closed connection instead.
        }
    }
    assert!(server.stats().rejected >= 1, "{:?}", server.stats());
}
