//! Property suite for the tenant hash ring.
//!
//! The ring is the routing truth every layer shares, so its guarantees are
//! pinned as properties rather than examples: placement balance stays
//! within a bound at ≥128 vnodes per group, two processes that parse the
//! same serialized config compute byte-identical placements, and rebalance
//! is minimal-disruption in both directions — adding one group to N moves
//! about `1/(N+1)` of the tenants and never shuffles a tenant between
//! surviving groups, while removing a group moves only the tenants it
//! owned.

use opaq_net::{GroupConfig, HashRing, RingConfig};
use proptest::prelude::*;

/// A ring config over `n` groups with deterministic names derived from
/// `seed`, so shrinking stays meaningful and no two groups collide.
fn config(seed: u64, n: usize, vnodes: u32) -> RingConfig {
    let mut cfg = RingConfig::new(
        (0..n)
            .map(|i| GroupConfig {
                name: format!("g{seed:x}-{i}"),
                addrs: vec![format!("127.0.0.1:{}", 4000 + i)],
            })
            .collect(),
    );
    cfg.vnodes = vnodes;
    cfg
}

/// Tenant names in the shape production uses.
fn tenants(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("tenant-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At ≥128 vnodes per group, no group's share of a large tenant
    /// population strays past 2.5x the fair share, and every group owns
    /// someone.  (Consistent hashing is not perfectly uniform — the bound
    /// is the contract, not equality.)
    #[test]
    fn placement_balance_stays_within_bound(
        seed in any::<u64>(),
        n in 2usize..6,
    ) {
        let ring = HashRing::new(config(seed, n, 128)).unwrap();
        let population = 4_000usize;
        let mut counts = vec![0usize; n];
        for t in tenants(population) {
            counts[ring.owner_index(&t)] += 1;
        }
        let fair = population / n;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "group {i} owns nothing: {counts:?}");
            prop_assert!(
                c <= fair * 5 / 2,
                "group {i} owns {c} of {population} (fair {fair}): {counts:?}"
            );
        }
    }

    /// Serialize, reparse, rebuild: the placement function is the same one
    /// — what a second process loading the ring file would compute.
    #[test]
    fn placement_is_deterministic_across_processes(
        seed in any::<u64>(),
        n in 1usize..6,
        vnodes in 1u32..512,
    ) {
        let cfg = config(seed, n, vnodes);
        let here = HashRing::new(cfg.clone()).unwrap();
        let there = HashRing::new(RingConfig::parse(&cfg.to_json()).unwrap()).unwrap();
        prop_assert_eq!(here.config(), there.config());
        for t in tenants(256) {
            prop_assert_eq!(here.owner_index(&t), there.owner_index(&t), "{}", t);
        }
    }

    /// Adding one group to N moves ≈1/(N+1) of the tenants — every move
    /// lands on the new group (survivors never trade tenants), and the
    /// moved fraction sits in a generous window around the ideal.
    #[test]
    fn adding_a_group_moves_about_its_fair_share(
        seed in any::<u64>(),
        n in 2usize..6,
    ) {
        let before = HashRing::new(config(seed, n, 128)).unwrap();
        let grown = config(seed, n, 128).with_group(GroupConfig {
            name: format!("g{seed:x}-new"),
            addrs: vec!["127.0.0.1:4999".into()],
        });
        let after = HashRing::new(grown).unwrap();
        let population = 4_000usize;
        let mut moved = 0usize;
        for t in tenants(population) {
            let old = &before.owner(&t).name;
            let new = &after.owner(&t).name;
            if new != old {
                prop_assert_eq!(
                    after.owner_index(&t),
                    n,
                    "{} moved between survivors: {} -> {}",
                    t, old, new
                );
                moved += 1;
            }
        }
        let ideal = population / (n + 1);
        prop_assert!(
            moved >= ideal / 3 && moved <= ideal * 3,
            "moved {moved}, ideal {ideal} (n={n})"
        );
    }

    /// Removing a group moves only the tenants it owned: every survivor's
    /// tenants stay put, byte for byte.
    #[test]
    fn removing_a_group_moves_only_its_own_tenants(
        seed in any::<u64>(),
        n in 2usize..6,
        victim in 0usize..8,
    ) {
        let cfg = config(seed, n, 128);
        let victim_name = cfg.groups[victim % n].name.clone();
        let before = HashRing::new(cfg.clone()).unwrap();
        let after = HashRing::new(cfg.without_group(&victim_name)).unwrap();
        for t in tenants(2_000) {
            let old = &before.owner(&t).name;
            if old != &victim_name {
                prop_assert_eq!(
                    &after.owner(&t).name, old,
                    "{} moved although {} kept its points", t, victim_name
                );
            } else {
                prop_assert_ne!(&after.owner(&t).name, &victim_name);
            }
        }
    }
}
