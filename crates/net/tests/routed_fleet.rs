//! The partitioned-fleet harness end to end: 2 ring groups × 2 replicas,
//! ring-scoped ingest, one-hop `wrong_owner` re-routing, scatter/gather
//! glob plans verified against the unpartitioned-catalog oracle, and a
//! chaos leg with a mid-run kill/restart — all byte-for-byte.

use opaq_net::{run_routed_workload, ChaosConfig, RoutedWorkloadSpec};
use opaq_serve::WorkloadSpec;

fn small_spec() -> RoutedWorkloadSpec {
    let mut spec = RoutedWorkloadSpec {
        spec: WorkloadSpec::quick(),
        ..Default::default()
    };
    spec.spec.clients = 3;
    spec.spec.ops_per_client = 60;
    spec.spec.tenants = 6;
    spec.spec.keys_per_tenant = 4_000;
    spec.spec.refresh_rounds = 3;
    spec
}

#[test]
fn routed_fleet_without_chaos_is_clean_and_balanced() {
    let spec = small_spec();
    let report = run_routed_workload(&spec).unwrap();

    assert_eq!(report.torn_reads, 0, "{}", report.render());
    assert_eq!(report.mis_owned, 0, "{}", report.render());
    assert_eq!(report.http_errors, 0, "{}", report.render());
    assert_eq!(report.unanswered, 0, "{}", report.render());
    assert_eq!(report.plan_unanswered, 0, "{}", report.render());
    assert_eq!(report.trace_violations, 0, "{}", report.render());
    assert_eq!(report.verified, report.ops, "{}", report.render());
    assert!(report.plan_ops > 0, "{}", report.render());
    assert_eq!(
        report.plan_verified,
        report.plan_ops,
        "a plan answer diverged from the single-catalog oracle:\n{}",
        report.render()
    );
    // Deliberate misroutes (every 7th op) force the wrong_owner arc.
    assert!(report.reroutes > 0, "{}", report.render());
    // Every tenant and every op belongs to exactly one group.
    assert_eq!(report.shares.len(), 2);
    let tenant_total: u64 = report.shares.iter().map(|s| s.tenants).sum();
    assert_eq!(tenant_total, spec.spec.tenants as u64);
    assert!(
        report.shares.iter().all(|s| s.tenants > 0),
        "degenerate placement — all tenants on one group:\n{}",
        report.render()
    );
}

#[test]
fn routed_chaos_run_survives_kill_and_restart_with_zero_torn_or_mis_owned() {
    let mut spec = small_spec();
    spec.chaos = Some(ChaosConfig::default());
    spec.kill_restart = true;

    let report = run_routed_workload(&spec).unwrap();
    assert_eq!(report.torn_reads, 0, "torn:\n{}", report.render());
    assert_eq!(report.mis_owned, 0, "mis-owned:\n{}", report.render());
    assert!(report.verified > 0, "{}", report.render());
    assert!(report.plan_verified > 0, "{}", report.render());
    assert_eq!(report.kills, 1, "{}", report.render());
    assert_eq!(report.restarts, 1, "{}", report.render());
    assert!(report.reroutes > 0, "{}", report.render());
    assert!(
        report.chaos_faults_injected > 0,
        "chaos proxies injected nothing:\n{}",
        report.render()
    );
    assert!(report.sync_deltas_applied > 0, "{}", report.render());
}

#[test]
fn single_group_fleet_degenerates_to_the_flat_case() {
    let mut spec = small_spec();
    spec.groups = 1;
    spec.replicas_per_group = 2;
    spec.spec.clients = 2;
    spec.spec.ops_per_client = 30;

    let report = run_routed_workload(&spec).unwrap();
    assert_eq!(report.torn_reads, 0, "{}", report.render());
    assert_eq!(report.mis_owned, 0, "{}", report.render());
    assert_eq!(report.reroutes, 0, "one group has nowhere to re-route");
    assert_eq!(report.verified, report.ops, "{}", report.render());
    assert_eq!(report.shares.len(), 1);
}
