//! Replication and failover over real sockets: peer bootstrap byte-identity,
//! delta catch-up, circuit-broken client failover with graceful degradation,
//! and the chaos fleet harness end to end.

use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_net::{
    bootstrap, run_replica_workload, sync_once, BreakerConfig, ChaosConfig, HttpClient, HttpServer,
    ReplicaConfig, ReplicaSet, ReplicaWorkloadSpec, ReplicationStats, Replicator, ServerConfig,
    VERSION_HEADER,
};
use opaq_serve::{DatasetId, QueryEngine, SketchCatalog, TenantId, WorkloadSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sketch_of(seed: u64, n: u64) -> opaq_core::QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(1000)
        .sample_size(100)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(
        (0..n)
            .map(|i| i.wrapping_mul(seed | 1) % (1 << 20))
            .collect(),
    )
    .unwrap();
    inc.into_sketch().unwrap()
}

/// A primary with `tenants` published entries and its HTTP server.
fn primary_with(tenants: &[(&str, &str, u64)]) -> (Arc<SketchCatalog>, HttpServer, String) {
    let catalog = Arc::new(SketchCatalog::unbounded());
    for (i, (tenant, dataset, n)) in tenants.iter().enumerate() {
        catalog
            .publish(
                &TenantId::new(*tenant),
                &DatasetId::new(*dataset),
                sketch_of(i as u64 + 3, *n),
            )
            .unwrap();
    }
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (catalog, server, addr)
}

/// Stand a secondary up from a peer bootstrap; returns (catalog, server, addr).
fn secondary_from(peer: &str) -> (Arc<SketchCatalog>, HttpServer, String) {
    let catalog = Arc::new(SketchCatalog::unbounded());
    bootstrap(&catalog, peer, None, None).unwrap();
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let server = HttpServer::start(engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (catalog, server, addr)
}

#[test]
fn bootstrapped_replica_serves_byte_identical_answers() {
    let fleet = [("acme", "events", 10_000u64), ("umbrella", "orders", 4_000)];
    let (_catalog, mut primary, primary_addr) = primary_with(&fleet);
    let (_rep_catalog, mut secondary, secondary_addr) = secondary_from(&primary_addr);

    let mut source = HttpClient::new(primary_addr);
    let mut replica = HttpClient::new(secondary_addr);

    // The sync manifest (the version vector) must agree exactly.
    let manifest_a = source.get("/v1/_sync/manifest").unwrap();
    let manifest_b = replica.get("/v1/_sync/manifest").unwrap();
    assert_eq!(manifest_a.status, 200);
    assert_eq!(manifest_a.body, manifest_b.body);

    // Every query family, on every entry: identical bytes, identical
    // version header — for every (tenant, dataset, version) the source has.
    for (tenant, dataset, _) in &fleet {
        for target in [
            format!("/v1/{tenant}/{dataset}/quantile?phi=0.5"),
            format!("/v1/{tenant}/{dataset}/quantile?phi=0.991"),
            format!("/v1/{tenant}/{dataset}/rank?key=12345"),
            format!("/v1/{tenant}/{dataset}/profile?count=7"),
        ] {
            let a = source.get(&target).unwrap();
            let b = replica.get(&target).unwrap();
            assert_eq!(a.status, 200, "{target}");
            assert_eq!(b.status, 200, "{target}");
            assert_eq!(
                a.header(VERSION_HEADER),
                b.header(VERSION_HEADER),
                "{target}"
            );
            assert_eq!(a.body, b.body, "replica answer differs for {target}");
        }
        // The raw sync frames agree too: same version, same sketch bytes.
        let frame = format!("/v1/_sync/sketch?tenant={tenant}&dataset={dataset}");
        let a = source.get(&frame).unwrap();
        let b = replica.get(&frame).unwrap();
        assert_eq!(a.header(VERSION_HEADER), b.header(VERSION_HEADER));
        assert_eq!(a.body, b.body);
    }

    secondary.shutdown();
    primary.shutdown();
}

#[test]
fn sync_applies_deltas_at_the_peers_exact_version_and_skips_known_entries() {
    let (catalog, mut primary, primary_addr) = primary_with(&[("acme", "events", 5_000)]);
    let replica_catalog = Arc::new(SketchCatalog::unbounded());
    let stats = ReplicationStats::new();
    let mut client = HttpClient::new(primary_addr.clone());

    // Cold bootstrap applies the one entry at version 1.
    assert_eq!(
        sync_once(&replica_catalog, &mut client, Some(&stats), None).unwrap(),
        1
    );
    assert_eq!(stats.sync_deltas_applied(), 1);
    let tenant = TenantId::new("acme");
    let dataset = DatasetId::new("events");
    assert_eq!(
        replica_catalog.snapshot(&tenant, &dataset).unwrap().version,
        1
    );

    // Nothing new: the pass is a no-op.
    assert_eq!(
        sync_once(&replica_catalog, &mut client, Some(&stats), None).unwrap(),
        0
    );

    // Primary publishes twice; one pass catches the replica up to the
    // primary's exact version number, skipping the intermediate one.
    catalog
        .publish(&tenant, &dataset, sketch_of(9, 6_000))
        .unwrap();
    catalog
        .publish(&tenant, &dataset, sketch_of(11, 7_000))
        .unwrap();
    assert_eq!(
        sync_once(&replica_catalog, &mut client, Some(&stats), None).unwrap(),
        1
    );
    assert_eq!(
        replica_catalog.snapshot(&tenant, &dataset).unwrap().version,
        3
    );
    assert_eq!(stats.sync_deltas_applied(), 2);

    primary.shutdown();
}

#[test]
fn replicator_polls_deltas_in_the_background() {
    let (catalog, mut primary, primary_addr) = primary_with(&[("acme", "events", 5_000)]);
    let replica_catalog = Arc::new(SketchCatalog::unbounded());
    bootstrap(&replica_catalog, &primary_addr, None, None).unwrap();
    let mut replicator = Replicator::start(
        Arc::clone(&replica_catalog),
        primary_addr,
        Duration::from_millis(10),
        None,
        None,
    );

    let tenant = TenantId::new("acme");
    let dataset = DatasetId::new("events");
    catalog
        .publish(&tenant, &dataset, sketch_of(21, 6_000))
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if replica_catalog.snapshot(&tenant, &dataset).unwrap().version == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicator never caught up to version 2"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    replicator.shutdown();
    primary.shutdown();
}

#[test]
fn replica_set_fails_over_and_degrades_gracefully() {
    // Two independent replicas of the same catalog contents.
    let (_catalog, mut primary, primary_addr) = primary_with(&[("acme", "events", 5_000)]);
    let (_rep_catalog, mut secondary, secondary_addr) = secondary_from(&primary_addr);

    let stats = ReplicationStats::new();
    let breaker = BreakerConfig {
        min_samples: 2,
        cooldown: Duration::from_millis(80),
        ..BreakerConfig::default()
    };
    let config = ReplicaConfig::builder()
        .breaker(breaker)
        .read_timeout(Duration::from_millis(500))
        .connect_timeout(Duration::from_millis(200))
        .build()
        .unwrap();
    let mut set = ReplicaSet::new(&[secondary_addr, primary_addr], config)
        .unwrap()
        .with_stats(Arc::clone(&stats));

    let target = "/v1/acme/events/quantile?phi=0.5";
    let healthy = set.get(target).unwrap();
    assert_eq!(healthy.response.status, 200);
    assert!(!healthy.degraded);
    let baseline = healthy.response.body.clone();

    // Kill the preferred replica: the set must fail over to the primary and
    // serve the same bytes.
    secondary.shutdown();
    let over = set.get(target).unwrap();
    assert_eq!(over.response.status, 200);
    assert!(!over.degraded);
    assert_eq!(over.response.body, baseline);
    assert!(stats.failovers() > 0, "failover was not counted");

    // Hammer the dead replica's breaker open via health probes.
    for _ in 0..8 {
        set.probe_health();
    }
    assert!(stats.breaker_opens() > 0, "breaker never opened");

    // Total outage: the last verified answer comes back, tagged degraded.
    primary.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    let degraded = loop {
        let answer = set.get(target).unwrap();
        if answer.degraded {
            break answer;
        }
        assert!(
            Instant::now() < deadline,
            "degradation never kicked in after total outage"
        );
    };
    assert_eq!(degraded.response.body, baseline);

    // A target never answered before has nothing cached: an honest error.
    assert!(set.get("/v1/acme/events/rank?key=99").is_err());
}

#[test]
fn chaos_fleet_run_has_zero_torn_answers_through_kill_and_restart() {
    let mut spec = ReplicaWorkloadSpec {
        spec: WorkloadSpec::quick(),
        replicas: 2,
        chaos: Some(ChaosConfig::default()),
        kill_restart: true,
        ..ReplicaWorkloadSpec::default()
    };
    spec.spec.clients = 3;
    spec.spec.ops_per_client = 60;
    spec.spec.tenants = 2;
    spec.spec.keys_per_tenant = 4_000;
    spec.spec.refresh_rounds = 3;

    let report = run_replica_workload(&spec).unwrap();
    assert_eq!(report.torn_reads, 0, "torn answers:\n{}", report.render());
    assert_eq!(report.http_errors, 0, "http errors:\n{}", report.render());
    assert!(report.verified > 0);
    assert_eq!(report.ops, 180);
    assert_eq!(
        report.kills,
        1,
        "victim was not killed:\n{}",
        report.render()
    );
    assert_eq!(
        report.restarts,
        1,
        "victim was not restarted:\n{}",
        report.render()
    );
    assert!(
        report.failovers > 0,
        "no failover recorded:\n{}",
        report.render()
    );
    assert!(
        report.breaker_opens > 0,
        "no breaker open recorded:\n{}",
        report.render()
    );
    assert!(
        report.chaos_faults_injected > 0,
        "chaos proxy injected nothing:\n{}",
        report.render()
    );
    assert!(report.sync_deltas_applied > 0);
}

#[test]
fn fleet_without_chaos_is_clean() {
    let mut spec = ReplicaWorkloadSpec {
        spec: WorkloadSpec::quick(),
        replicas: 2,
        ..ReplicaWorkloadSpec::default()
    };
    spec.spec.clients = 2;
    spec.spec.ops_per_client = 40;
    spec.spec.tenants = 2;
    spec.spec.keys_per_tenant = 4_000;
    spec.spec.refresh_rounds = 2;

    let report = run_replica_workload(&spec).unwrap();
    assert_eq!(report.torn_reads, 0, "{}", report.render());
    assert_eq!(report.http_errors, 0, "{}", report.render());
    assert_eq!(report.unanswered, 0, "{}", report.render());
    assert_eq!(report.verified, report.ops, "{}", report.render());
    assert_eq!(report.kills, 0);
    assert_eq!(report.chaos_faults_injected, 0);
}
