//! Replica-fleet workload harness: N replicas, circuit-broken failover
//! clients, optional fault injection, and one replica killed and restarted
//! mid-run — with every answer still verified **byte-for-byte**.
//!
//! Topology: one *primary* holds the catalog of record and takes the
//! refresher's publishes in-process; every other replica owns its own
//! [`SketchCatalog`], cold-bootstraps it from the primary over the real
//! `_sync` HTTP endpoints ([`crate::sync::bootstrap`]), then polls deltas
//! with a [`Replicator`].  Clients drive [`ReplicaSet`]s (GET-only request
//! mix — the failover path only ever retries idempotent reads) against the
//! fleet, optionally through one [`ChaosProxy`] per replica.
//!
//! The verification discipline is the one from [`crate::workload`]: every
//! sketch version is registered before the primary publishes it, every
//! response names its version in `x-opaq-version`, and the client re-renders
//! the expected body from the registered sketch and compares bytes.  Because
//! replication applies entries at the primary's *exact* version
//! (`publish_at`), an answer from a lagging or freshly-bootstrapped replica
//! still names a registered version — staleness is fine, torn bytes are not.
//!
//! With [`ReplicaWorkloadSpec::kill_restart`], a chaos-monkey thread watches
//! client progress, shuts the clients' *preferred* replica down at ~25% of
//! the run, leaves it dead through real breaker-opening traffic, then
//! restarts it on a fresh port at ~50%: a new empty catalog, a fresh
//! bootstrap from the primary, and a [`ChaosProxy::set_upstream`] repoint so
//! clients never change the address they dial — the kill-9-one-replica CI
//! story, in-process.

use crate::chaos::{ChaosConfig, ChaosCounters, ChaosProxy};
use crate::circuit::BreakerConfig;
use crate::replica::{ReplicaConfig, ReplicaSet, ReplicationStats};
use crate::server::{HttpServer, ServerConfig};
use crate::sync::{bootstrap, Replicator};
use crate::workload::{verify, wire_form, Registry, Verdict};
use crate::{NetError, NetResult};
use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_serve::{chunk_spec, next_rand, QueryEngine, QueryRequest, SketchCatalog, WorkloadSpec};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one replica-fleet workload.
#[derive(Debug, Clone)]
pub struct ReplicaWorkloadSpec {
    /// Tenant/client/op counts and sketch parameters (shared with the other
    /// harnesses; TTL/spill knobs are ignored here).
    pub spec: WorkloadSpec,
    /// Total serving replicas, primary included.  At least 1.
    pub replicas: usize,
    /// `Some` puts a fault-injecting [`ChaosProxy`] in front of every
    /// replica.
    pub chaos: Option<ChaosConfig>,
    /// Kill the clients' preferred replica mid-run and restart it on a
    /// fresh port (needs `replicas >= 2`; ignored otherwise).
    pub kill_restart: bool,
    /// Delta-poll interval for the secondaries' [`Replicator`]s.
    pub poll: Duration,
    /// Circuit-breaker tuning for the client [`ReplicaSet`]s.
    pub breaker: BreakerConfig,
    /// Server tuning, applied to every replica.
    pub server: ServerConfig,
}

impl Default for ReplicaWorkloadSpec {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec::default(),
            replicas: 2,
            chaos: None,
            kill_restart: false,
            poll: Duration::from_millis(40),
            breaker: BreakerConfig {
                // Short cooldown: the harness wants to see the full
                // open → half-open → closed arc inside one bench run.
                cooldown: Duration::from_millis(150),
                ..BreakerConfig::default()
            },
            server: ServerConfig::default(),
        }
    }
}

impl ReplicaWorkloadSpec {
    /// A small chaos configuration for CI smoke runs: two replicas, fault
    /// proxy on, kill-and-restart on.
    pub fn quick() -> Self {
        Self {
            spec: WorkloadSpec::quick(),
            chaos: Some(ChaosConfig::default()),
            kill_restart: true,
            ..Self::default()
        }
    }
}

/// What a replica-fleet workload observed.
#[derive(Debug, Clone)]
pub struct ReplicaLoadReport {
    /// Serving replicas the fleet started with.
    pub replicas: usize,
    /// GET requests issued by the client threads.
    pub ops: u64,
    /// Responses verified byte-for-byte against their claimed version.
    pub verified: u64,
    /// Responses that matched no complete published version (must be 0).
    pub torn_reads: u64,
    /// Non-200, non-503 responses (must be 0).
    pub http_errors: u64,
    /// 503s from a replica's bounded accept queue.
    pub sheds: u64,
    /// Answers served from the degradation cache because no replica could
    /// answer — stale but still byte-verified.
    pub degraded: u64,
    /// Ops for which no replica answered *and* nothing was cached.
    pub unanswered: u64,
    /// Versions published by the background refresher during the run.
    pub refreshes_published: u64,
    /// Preferred-replica switches across all client sets.
    pub failovers: u64,
    /// Circuit-breaker open transitions across all client sets.
    pub breaker_opens: u64,
    /// Catalog entries replicas applied from the primary (bootstraps and
    /// delta polls).
    pub sync_deltas_applied: u64,
    /// Faults injected by the chaos proxies, total.
    pub chaos_faults_injected: u64,
    /// Per-kind chaos tallies, summed over all proxies.
    pub chaos: ChaosCounters,
    /// Connection-establishment failures across all replica-set clients.
    pub connect_errors: u64,
    /// Deadline-killed requests across all replica-set clients.
    pub timeouts: u64,
    /// Transparent client reconnect-retries across all replica-set clients.
    pub retries: u64,
    /// Replicas the chaos monkey shut down mid-run.
    pub kills: u64,
    /// Replicas the chaos monkey brought back (fresh port, re-bootstrap).
    pub restarts: u64,
    /// Wall-clock time of the client phase.
    pub wall: Duration,
}

impl ReplicaLoadReport {
    /// Client requests per second over the client phase.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Render the report as text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "replica fleet: {} replicas | kills {} | restarts {}\n",
            self.replicas, self.kills, self.restarts
        );
        out.push_str(&format!(
            "ops {} | verified {} | torn {} | http errors {} | sheds {} | degraded {} | \
             unanswered {} | refreshes {} | {:.0} ops/s\n",
            self.ops,
            self.verified,
            self.torn_reads,
            self.http_errors,
            self.sheds,
            self.degraded,
            self.unanswered,
            self.refreshes_published,
            self.throughput()
        ));
        out.push_str(&format!(
            "failovers {} | breaker opens {} | sync deltas applied {} | \
             chaos faults injected {}\n",
            self.failovers,
            self.breaker_opens,
            self.sync_deltas_applied,
            self.chaos_faults_injected
        ));
        out.push_str(&format!(
            "chaos: drops {} | delays {} | truncates {} | resets {} | flaps {}\n",
            self.chaos.drops,
            self.chaos.delays,
            self.chaos.truncates,
            self.chaos.resets,
            self.chaos.flaps
        ));
        out.push_str(&format!(
            "client transport: connect errors {} | timeouts {} | retries {}\n",
            self.connect_errors, self.timeouts, self.retries
        ));
        out
    }
}

/// One running secondary: its HTTP server plus the delta poller keeping its
/// catalog caught up.  The catalog/engine live on through the `Arc`s these
/// two hold.
pub(crate) struct SecondaryRuntime {
    server: HttpServer,
    replicator: Replicator,
}

impl SecondaryRuntime {
    /// Poller first (it dials the primary), then the server.
    pub(crate) fn shutdown(&mut self) {
        self.replicator.shutdown();
        self.server.shutdown();
    }
}

/// Bootstrap a fresh catalog from the primary and stand a secondary up on
/// an ephemeral port.  Returns the runtime and its serving address.
pub(crate) fn start_secondary(
    primary_addr: &str,
    server_config: &ServerConfig,
    poll: Duration,
    stats: &Arc<ReplicationStats>,
) -> NetResult<(SecondaryRuntime, String)> {
    let catalog = Arc::new(SketchCatalog::unbounded());
    bootstrap(&catalog, primary_addr, Some(stats), None)?;
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    let mut config = server_config.clone();
    config.replication = Some(Arc::clone(stats));
    let server = HttpServer::start(engine, config)?;
    let addr = server.local_addr().to_string();
    let replicator = Replicator::start(
        catalog,
        primary_addr.to_string(),
        poll,
        Some(Arc::clone(stats)),
        Some(Arc::clone(server.telemetry().recorder())),
    );
    Ok((SecondaryRuntime { server, replicator }, addr))
}

/// GET-only request mix: the failover client never replays a write, so the
/// harness never issues one.
pub(crate) fn get_request_for(rng: &mut u64) -> QueryRequest {
    match next_rand(rng) % 3 {
        0 => QueryRequest::Quantile {
            phi: (next_rand(rng) % 10_000) as f64 / 10_000.0,
        },
        1 => QueryRequest::Rank {
            key: next_rand(rng) % (1 << 31),
        },
        _ => QueryRequest::Profile {
            count: 2 + next_rand(rng) % 14,
        },
    }
}

/// Sleep until `stop` turns true or `total` elapses; `true` means the full
/// wait completed without a stop.
pub(crate) fn sleep_sliced(total: Duration, stop: &AtomicBool) -> bool {
    let mut remaining = total;
    while !remaining.is_zero() {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let slice = remaining.min(Duration::from_millis(10));
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
    !stop.load(Ordering::Acquire)
}

/// Block until the shared op counter reaches `threshold` or `stop` turns
/// true; `true` means the threshold was reached.
pub(crate) fn wait_for_progress(ops_done: &AtomicU64, threshold: u64, stop: &AtomicBool) -> bool {
    while ops_done.load(Ordering::Relaxed) < threshold {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Run `spec` end to end: primary + bootstrapped secondaries, optional
/// chaos proxies, failover clients, optional mid-run kill/restart, full
/// byte-for-byte verification, ordered teardown.
///
/// # Errors
/// Configuration, socket and serving-layer errors.  Torn reads, HTTP error
/// statuses and unanswered ops are *reported*, not errors — the caller
/// decides whether non-zero is fatal.
pub fn run_replica_workload(fleet_spec: &ReplicaWorkloadSpec) -> NetResult<ReplicaLoadReport> {
    let spec = &fleet_spec.spec;
    if spec.tenants == 0 || spec.clients == 0 || spec.ops_per_client == 0 {
        return Err(NetError::InvalidConfig(
            "a workload needs at least one tenant, one client and one op".into(),
        ));
    }
    if fleet_spec.replicas == 0 {
        return Err(NetError::InvalidConfig(
            "a replica fleet needs at least one replica".into(),
        ));
    }
    let config = OpaqConfig::builder()
        .run_length(spec.run_length)
        .sample_size(spec.sample_size.min(spec.run_length))
        .build()
        .map_err(opaq_serve::ServeError::from)?;

    let stats = ReplicationStats::new();
    let registry: Registry = Arc::new(RwLock::new(HashMap::new()));
    let catalog = Arc::new(SketchCatalog::unbounded());
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));

    let ids: Vec<(opaq_serve::TenantId, opaq_serve::DatasetId)> = (0..spec.tenants)
        .map(|i| {
            (
                opaq_serve::TenantId::new(format!("tenant-{i}")),
                opaq_serve::DatasetId::new("events"),
            )
        })
        .collect();

    // Seed version 1 of every tenant on the primary, registered first —
    // the secondaries' bootstraps replicate exactly these (version, bytes).
    let mut incrementals = Vec::with_capacity(spec.tenants);
    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
        let mut inc = IncrementalOpaq::new(config).map_err(opaq_serve::ServeError::from)?;
        inc.add_run(chunk_spec(spec, tenant_idx, 0, spec.keys_per_tenant).generate())
            .map_err(opaq_serve::ServeError::from)?;
        let sketch = inc.sketch().expect("just added a run").clone();
        registry
            .write()
            .insert((tenant.to_string(), 1), Arc::new(sketch.clone()));
        catalog.publish(tenant, dataset, sketch)?;
        incrementals.push(inc);
    }

    // Every ReplicaSet client holds one keep-alive connection per replica,
    // and the secondaries' pollers and the monkey's re-bootstrap dial the
    // primary too — size the worker pools for all of it.
    let mut server_config = fleet_spec.server.clone();
    server_config.workers = server_config
        .workers
        .max(spec.clients + fleet_spec.replicas + 3);
    let mut primary_config = server_config.clone();
    primary_config.replication = Some(Arc::clone(&stats));
    let mut primary = HttpServer::start(Arc::clone(&engine), primary_config)?;
    let primary_addr = primary.local_addr().to_string();

    let mut secondaries = Vec::new();
    let mut secondary_addrs = Vec::new();
    for _ in 1..fleet_spec.replicas {
        let (runtime, addr) =
            start_secondary(&primary_addr, &server_config, fleet_spec.poll, &stats)?;
        secondaries.push(runtime);
        secondary_addrs.push(addr);
    }

    // Client-side routing order: the first secondary leads so the sticky
    // ReplicaSets prefer the replica the monkey will kill — the failover is
    // guaranteed to be exercised, not dodged.
    let mut serving_addrs: Vec<String> = Vec::with_capacity(fleet_spec.replicas);
    serving_addrs.extend(secondary_addrs.first().cloned());
    serving_addrs.push(primary_addr.clone());
    serving_addrs.extend(secondary_addrs.iter().skip(1).cloned());

    let kill_restart = fleet_spec.kill_restart && fleet_spec.replicas >= 2;
    // The monkey restarts the victim on a fresh port, so clients must dial
    // through a repointable proxy even when no faults are injected.
    let use_proxy = fleet_spec.chaos.is_some() || kill_restart;
    let chaos_config = fleet_spec.chaos.clone().unwrap_or(ChaosConfig {
        fault_rate: 0.0,
        ..ChaosConfig::default()
    });
    let mut proxies = Vec::new();
    let mut client_addrs = Vec::with_capacity(serving_addrs.len());
    if use_proxy {
        for (i, upstream) in serving_addrs.iter().enumerate() {
            let proxy = ChaosProxy::start(
                upstream.clone(),
                ChaosConfig {
                    seed: chaos_config.seed.wrapping_add(0x9e37 * (i as u64 + 1)),
                    ..chaos_config.clone()
                },
                Some(Arc::clone(&stats)),
            )?;
            client_addrs.push(proxy.local_addr().to_string());
            proxies.push(proxy);
        }
    } else {
        client_addrs.clone_from(&serving_addrs);
    }

    let total_ops = spec.ops_per_client * spec.clients as u64;
    let ops_done = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let torn = AtomicU64::new(0);
    let http_errors = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let unanswered = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let connect_errors = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let kills = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let stop_monkey = AtomicBool::new(false);
    let start = Instant::now();

    let victim = kill_restart.then(|| secondaries.remove(0));

    let run_result = std::thread::scope(|scope| -> NetResult<()> {
        // Background refresher: new versions land on the primary in-process
        // (registered first), and the secondaries catch up via their
        // pollers.  A client hitting a lagging replica sees an older — but
        // registered, hence verifiable — version.
        let refresher = {
            let catalog = Arc::clone(&catalog);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let refreshes = &refreshes;
            scope.spawn(move || -> NetResult<()> {
                for round in 1..=spec.refresh_rounds {
                    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
                        let chunk =
                            chunk_spec(spec, tenant_idx, round, (spec.keys_per_tenant / 4).max(1))
                                .generate();
                        let inc = &mut incrementals[tenant_idx];
                        inc.add_run(chunk).map_err(opaq_serve::ServeError::from)?;
                        let sketch = inc.sketch().expect("non-empty").clone();
                        registry
                            .write()
                            .insert((tenant.to_string(), round + 1), Arc::new(sketch.clone()));
                        catalog.publish(tenant, dataset, sketch)?;
                        refreshes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                Ok(())
            })
        };

        // Chaos monkey: kill the preferred replica at ~25% of the run,
        // restart it (fresh port, fresh bootstrap, proxy repoint) at ~50%.
        // Progress-based triggers, so "mid-run" holds at any machine speed.
        let monkey = victim.map(|mut victim| {
            let stats = Arc::clone(&stats);
            let primary_addr = primary_addr.clone();
            let server_config = server_config.clone();
            let poll = fleet_spec.poll;
            let victim_proxy = proxies.first();
            let (ops_done, stop_monkey) = (&ops_done, &stop_monkey);
            let (kills, restarts) = (&kills, &restarts);
            scope.spawn(move || -> NetResult<()> {
                if !wait_for_progress(ops_done, total_ops / 4, stop_monkey) {
                    victim.shutdown();
                    return Ok(());
                }
                victim.shutdown();
                kills.fetch_add(1, Ordering::Relaxed);
                let reached_half = wait_for_progress(ops_done, total_ops / 2, stop_monkey);
                // Even if the clients finished during the outage, bring the
                // replica back: recovery is part of what the run verifies.
                let _ = reached_half;
                let catalog = Arc::new(SketchCatalog::unbounded());
                let mut attempts = 0u32;
                loop {
                    match bootstrap(&catalog, &primary_addr, Some(&stats), None) {
                        Ok(_) => break,
                        Err(e) => {
                            attempts += 1;
                            if attempts > 100 {
                                return Err(e);
                            }
                            if !sleep_sliced(Duration::from_millis(20), stop_monkey) {
                                return Ok(());
                            }
                        }
                    }
                }
                let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
                let mut config = server_config.clone();
                config.replication = Some(Arc::clone(&stats));
                let mut server = HttpServer::start(engine, config)?;
                let new_addr = server.local_addr().to_string();
                if let Some(proxy) = victim_proxy {
                    proxy.set_upstream(new_addr);
                }
                let mut replicator = Replicator::start(
                    catalog,
                    primary_addr.clone(),
                    poll,
                    Some(Arc::clone(&stats)),
                    Some(Arc::clone(server.telemetry().recorder())),
                );
                restarts.fetch_add(1, Ordering::Relaxed);
                while !stop_monkey.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                replicator.shutdown();
                server.shutdown();
                Ok(())
            })
        });

        let mut clients = Vec::with_capacity(spec.clients);
        for client_idx in 0..spec.clients {
            let addrs = client_addrs.clone();
            let breaker = fleet_spec.breaker.clone();
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let ops_done = &ops_done;
            let (verified, torn, http_errors, sheds) = (&verified, &torn, &http_errors, &sheds);
            let (degraded, unanswered) = (&degraded, &unanswered);
            let (connect_errors, timeouts, retries) = (&connect_errors, &timeouts, &retries);
            clients.push(scope.spawn(move || -> NetResult<()> {
                // Short deadlines: a truncated response must die to its read
                // timeout and fail over, not stall the op for seconds.  The
                // tight probe interval keeps every breaker sampled even when
                // sticky routing stops sending it organic traffic.
                let config = ReplicaConfig::builder()
                    .breaker(breaker)
                    .read_timeout(Duration::from_millis(250))
                    .connect_timeout(Duration::from_millis(150))
                    // Near-per-op probing: the whole quick run lasts tens of
                    // milliseconds, and a dead replica must accumulate its
                    // breaker's min_samples inside the kill window.
                    .probe_interval(Duration::from_micros(500))
                    .build()?;
                let mut set = ReplicaSet::new(&addrs, config)?.with_stats(Arc::clone(&stats));
                let mut rng = spec
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(client_idx as u64 + 1));
                let mut body = || -> NetResult<()> {
                    for _op_idx in 0..spec.ops_per_client {
                        // Periodic health probes feed every replica's breaker —
                        // sticky routing alone would stop sampling a replica the
                        // moment it stops being preferred, so a dead one would
                        // never accumulate the min_samples its breaker needs.
                        set.maybe_probe();
                        let tenant_idx = (next_rand(&mut rng) % spec.tenants as u64) as usize;
                        let (tenant, dataset) = &ids[tenant_idx];
                        let request = get_request_for(&mut rng);
                        let (target, body) = wire_form(tenant.as_str(), dataset.as_str(), &request);
                        debug_assert!(body.is_none(), "failover mix must be GET-only");
                        match set.get(&target) {
                            Ok(answer) => {
                                if answer.degraded {
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                                match verify(tenant.as_str(), &request, &answer.response, &registry)
                                {
                                    Verdict::Verified { .. } => {
                                        verified.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::Torn => {
                                        torn.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::Shed => {
                                        sheds.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::HttpError => {
                                        http_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(_) => {
                                // Total outage with nothing cached for this
                                // target: an honest "no answer", not a torn one.
                                unanswered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        ops_done.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                };
                let result = body();
                let client_stats = set.client_stats();
                connect_errors.fetch_add(client_stats.connect_errors, Ordering::Relaxed);
                timeouts.fetch_add(client_stats.timeouts, Ordering::Relaxed);
                retries.fetch_add(client_stats.retries, Ordering::Relaxed);
                result
            }));
        }

        // Join clients, give the monkey a grace window to finish a restart
        // that straddles the end of the client phase, then stop everything.
        fn note(
            first_error: &mut Option<NetError>,
            joined: std::thread::Result<NetResult<()>>,
            who: &str,
        ) {
            let outcome = match joined {
                Ok(Ok(())) => return,
                Ok(Err(e)) => e,
                Err(_) => NetError::Protocol(format!("{who} thread panicked")),
            };
            if first_error.is_none() {
                *first_error = Some(outcome);
            }
        }
        let mut first_error: Option<NetError> = None;
        for client in clients {
            note(&mut first_error, client.join(), "client");
        }
        if monkey.is_some() && first_error.is_none() {
            let deadline = Instant::now() + Duration::from_secs(5);
            while kills.load(Ordering::Relaxed) > restarts.load(Ordering::Relaxed)
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        stop_monkey.store(true, Ordering::Release);
        if let Some(monkey) = monkey {
            note(&mut first_error, monkey.join(), "chaos monkey");
        }
        note(&mut first_error, refresher.join(), "refresher");
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    let wall = start.elapsed();

    // Teardown order: surviving secondaries first (their pollers dial the
    // primary), then the proxies, then the primary.
    for mut secondary in secondaries {
        secondary.shutdown();
    }
    let mut chaos_totals = ChaosCounters::default();
    for proxy in proxies {
        let c = proxy.counters();
        chaos_totals.drops += c.drops;
        chaos_totals.delays += c.delays;
        chaos_totals.truncates += c.truncates;
        chaos_totals.resets += c.resets;
        chaos_totals.flaps += c.flaps;
        proxy.shutdown();
    }
    primary.shutdown();
    run_result?;

    Ok(ReplicaLoadReport {
        replicas: fleet_spec.replicas,
        ops: ops_done.load(Ordering::Relaxed),
        verified: verified.load(Ordering::Relaxed),
        torn_reads: torn.load(Ordering::Relaxed),
        http_errors: http_errors.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        unanswered: unanswered.load(Ordering::Relaxed),
        refreshes_published: refreshes.load(Ordering::Relaxed),
        failovers: stats.failovers(),
        breaker_opens: stats.breaker_opens(),
        sync_deltas_applied: stats.sync_deltas_applied(),
        chaos_faults_injected: stats.chaos_faults_injected(),
        chaos: chaos_totals,
        connect_errors: connect_errors.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        kills: kills.load(Ordering::Relaxed),
        restarts: restarts.load(Ordering::Relaxed),
        wall,
    })
}
