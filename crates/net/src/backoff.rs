//! Capped, jittered exponential backoff — the one retry-pacing policy the
//! whole networking layer shares.
//!
//! Every reconnect/retry loop in this crate (the client's transparent
//! reconnect, the replica set's bounded GET retries, the replication
//! poller's delta loop) paces itself through a [`Backoff`], so none of them
//! can spin on a dead socket and none of them synchronize into retry storms:
//! the delay doubles per consecutive failure up to a cap, and each delay is
//! *full-jitter* — uniformly drawn from `[base/2, computed]` with a
//! deterministic per-instance RNG, so two clients born together still spread
//! their retries.

use std::time::Duration;

/// Exponential backoff state: `delay(n) = min(base · 2ⁿ, cap)`, jittered.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A policy starting at `base` and never exceeding `cap` per delay.
    /// `seed` makes the jitter deterministic (tests) while still decorrelating
    /// instances constructed with different seeds.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            // splitmix-style scramble so adjacent seeds diverge immediately.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The connection-retry default: 10ms doubling to a 2s cap.
    pub fn for_connect(seed: u64) -> Self {
        Self::new(Duration::from_millis(10), Duration::from_secs(2), seed)
    }

    /// How many consecutive failures have been recorded since the last
    /// [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Record a failure and return how long to sleep before the next try.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 · base already dwarfs any cap
        self.attempt = self.attempt.saturating_add(1);
        let uncapped = self
            .base
            .checked_mul(1u32 << exp)
            .unwrap_or(self.cap)
            .min(self.cap);
        // Full jitter over [base/2, uncapped]: a floor keeps "immediately
        // retry with zero delay" impossible, the jitter spreads the herd.
        let floor = self.base / 2;
        let span = uncapped.saturating_sub(floor);
        if span.is_zero() {
            return uncapped;
        }
        let r = self.next_rand();
        floor + Duration::from_nanos((r % span.as_nanos().max(1) as u64).max(1))
    }

    /// Record a success: the next failure starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, plenty for jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_up_to_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
        let mut max_seen = Duration::ZERO;
        for i in 0..12 {
            let d = b.next_delay();
            assert!(
                d >= Duration::from_millis(5),
                "attempt {i}: {d:?} below floor"
            );
            assert!(
                d <= Duration::from_millis(500),
                "attempt {i}: {d:?} over cap"
            );
            max_seen = max_seen.max(d);
        }
        // After enough doublings the jitter window reaches the cap region.
        assert!(
            max_seen > Duration::from_millis(100),
            "never grew: {max_seen:?}"
        );
        assert_eq!(b.attempts(), 12);
    }

    #[test]
    fn reset_returns_to_the_base_window() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(2), 3);
        for _ in 0..8 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        // First post-reset delay is back inside the base window [5ms, 10ms].
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(10), "{d:?}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let collect = |seed| {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), seed);
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
