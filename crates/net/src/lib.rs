//! # opaq-net — HTTP/1.1 front-end over the OPAQ serving layer
//!
//! `opaq-serve` made the sketches queryable in-process; this crate makes
//! them queryable over real TCP, completing the paper→production arc: one
//! I/O-efficient pass builds a tiny sketch, the catalog versions it, and any
//! HTTP client can now ask for quantiles.  Everything is dependency-free —
//! hand-rolled request parsing, a small JSON wire, `std::net` sockets — in
//! the same spirit as the vendored shims elsewhere in the workspace.
//!
//! ## Architecture
//!
//! ```text
//!                 accept thread (non-blocking poll, shutdown-aware)
//!                      │ bounded channel (full ⇒ 503, shed load)
//!          ┌───────────┼───────────┐
//!          ▼           ▼           ▼
//!     worker 0     worker 1  …  worker W        (keep-alive loop per conn:
//!          │ parse → route → respond             request cap, read timeout,
//!          ▼                                     idle timeout)
//!    ┌──────────────┐   snapshot + estimate   ┌───────────────┐
//!    │ QueryEngine  │ ───────────────────────▶│ SketchCatalog │
//!    │ (latency     │   version + freshness   │ (TTL: expired │──▶ RefreshPool
//!    │  histograms) │                         │  ⇒ hook fires)│    re-ingest
//!    └──────────────┘                         └───────────────┘
//! ```
//!
//! * **Wire** ([`http`], [`json`]): strict request parsing (single
//!   `Content-Length`, capped headers → 431, capped bodies → 413, no
//!   `Transfer-Encoding`), and a JSON reader/writer whose output is a pure
//!   function of the data — the consistency harness depends on that.
//! * **Server** ([`server`]): bounded accept pool, keep-alive with a
//!   per-connection request cap, shutdown that drains in-flight requests
//!   before joining (same close-then-join discipline as `RefreshPool`).
//!   Routes:
//!
//!   | route | answer |
//!   |---|---|
//!   | `GET /v1/{tenant}/{dataset}/quantile?phi=` | φ-quantile bounds |
//!   | `GET /v1/{tenant}/{dataset}/rank?key=` | rank bounds of a key |
//!   | `GET /v1/{tenant}/{dataset}/profile?count=` | equi-depth profile |
//!   | `POST /v1/{tenant}/{dataset}/quantile_batch` | `{"phis":[…]}`, one consistent version |
//!   | `POST /v1/query` | `{"plan":"fetch t-*/d \| coalesce \| quantile 0.5"}` pipeline (see `opaq-query`) |
//!   | `GET /healthz` | liveness + entry count |
//!   | `GET /metrics` | Prometheus text exposition rendered by [`opaq_metrics::MetricRegistry`]: HELP/TYPE-annotated counters, gauges, and cumulative histograms |
//!   | `GET /v1/_debug/trace?id=HEX` | rendered span tree for one trace (from the in-memory span ring) |
//!   | `GET /v1/_debug/slow?n=N` | top-N slowest requests with plan provenance, as JSON |
//!
//!   Every route lowers to one typed [`server::ApiRequest`], compiles to an
//!   `opaq_query::QueryPlan` (the GET family as degenerate one-target
//!   plans), and runs through one shared `PlanExecutor` — a single request
//!   model and a single response renderer behind the whole surface.  Error
//!   bodies are uniformly `{"error":{"code":...,"message":...}}` with
//!   stable machine-readable codes.
//!
//!   Every single-target `/v1` response carries `x-opaq-version` (the
//!   sketch epoch that answered — the handle the byte-for-byte verification
//!   keys on) and `x-opaq-freshness` (`fresh|stale|refreshing`, the
//!   catalog's TTL tag); `/v1/query` responses instead embed the full
//!   `(tenant, dataset, version, freshness)` tuple per contributing source,
//!   plus an `x-opaq-sources` count header.
//!
//!   **Every** response — success, error, parse failure, even the 503 shed
//!   by a saturated accept queue — carries `x-opaq-trace-id`.  The id is
//!   echoed from the request header when the caller sent a valid one
//!   (failover hops and `/v1/_sync/*` pulls propagate it this way) and
//!   minted at the front door otherwise; `GET /v1/_debug/trace?id=` turns
//!   it into the request's span tree.
//! * **Client** ([`client`]): minimal keep-alive client with transparent
//!   single reconnect, for the harness/CLI/examples.
//! * **Workload harness** ([`workload`]): the HTTP twin of
//!   `opaq_serve::run_workload` — N client threads × M tenants over real
//!   sockets, every response re-rendered locally from the registered sketch
//!   of its claimed version and compared **byte-for-byte**, plus a TTL probe
//!   that watches an expiring tenant serve non-fresh tags until its
//!   background refresh publishes.  With
//!   [`workload::HttpWorkloadSpec::target_qps`] the clients hold a fixed
//!   **open-loop** offered rate and measure latency from each op's scheduled
//!   send time (coordinated-omission-safe), 503s are tallied as *sheds*
//!   rather than errors, and the report carries verdicts for any declared
//!   [`opaq_metrics::SloThresholds`] — the machinery behind
//!   `opaq serve-bench --http --qps N --slo-p99-ms M`.
//!
//! ## Replication + failover model
//!
//! A replica started with `opaq serve --peer ADDR` joins an existing
//! serving fleet.  The moving parts, and the order they engage:
//!
//! 1. **Bootstrap before exposure** ([`sync`]): the replica replays its own
//!    durable manifest first (local truth), then runs one blocking
//!    [`sync::bootstrap`] against the peer *before* binding its listener.
//!    Bootstrap is just a [`sync::sync_once`] over an empty-or-stale local
//!    version vector, so cold start and stale-replica catch-up are the same
//!    code path.  A replica never serves an answer it is about to
//!    overwrite.
//! 2. **Version-vector reconciliation** ([`sync`], backed by
//!    `opaq_storage::manifest::version_vector`): the peer's
//!    `GET /v1/_sync/manifest` is its per-entry version vector; an entry is
//!    fetched (`GET /v1/_sync/sketch`, `sketch_codec` framing, version
//!    riding in `x-opaq-version` so bytes and version travel atomically)
//!    iff the peer's version is **strictly greater** than the local one,
//!    and it is applied at the peer's *exact* version number
//!    (`SketchCatalog::publish_at`).  Rules: vectors only move forward
//!    (`StaleVersion` rejects regressions), ties mean "already have it",
//!    and there is no merge — the peer's bytes for version *v* are the only
//!    bytes version *v* can ever mean, which is what lets the byte-for-byte
//!    verifier hold across replicas.  Deltas are then polled on an interval
//!    with capped jittered backoff while the peer is down.
//! 3. **Client-side failover** ([`replica`], [`circuit`]): a [`ReplicaSet`]
//!    holds one keep-alive client plus one circuit breaker per replica,
//!    routes sticky to the current healthy replica, retries **only
//!    idempotent GETs** (bounded passes, jittered backoff between passes),
//!    and on total outage replays the last verified answer for the same
//!    target, tagged degraded, instead of erroring.  The breaker
//!    *guarantees*: a dead replica costs at most `min_samples` failures
//!    before opening, an open breaker sends no traffic for its cooldown,
//!    and recovery is probed by exactly one request at a time.  It does
//!    *not* guarantee answer correctness (the verifier's job), global
//!    agreement between clients (each set has a local view), or bounded
//!    staleness of degraded answers (they are as old as the last success).
//! 4. **Chaos** ([`chaos`]): a fault-injecting TCP proxy (drop, delay,
//!    truncate mid-body, reset after N bytes, flap) sits between harness
//!    and replicas in `opaq serve-bench --http --replicas N --chaos`, so
//!    the failover path above is exercised by real torn sockets while every
//!    answer is still verified byte-for-byte ([`failover`]).
//!
//! ## Routing + partitioning model
//!
//! One replica set can only scale reads.  To scale *tenants*, the fleet
//! partitions: a consistent-hash ring ([`ring`]) assigns every tenant to
//! exactly one **replica group** (a primary plus peer-synced secondaries —
//! the replication model above, reused unchanged within each group), and a
//! routing layer makes the partition invisible to callers.
//!
//! ```text
//!        RoutedFleet (client)                       ring file (JSON)
//!   tenant ──hash──▶ owning group ◀─── shared ───▶  opaq serve --ring F
//!        │                                            --group NAME
//!        ▼                                              │
//!   ReplicaSet[g]  ──GET──▶  group g primary/secondaries│(scoped ingest)
//!        │   ▲ wrong_owner (421) + owner addrs          │
//!        └───┴── one re-route hop, same trace id        ▼
//!   POST /v1/query glob ──▶ coordinator ──scatter──▶ peer groups
//!                              └─ gather partials, fuse via merge_tree
//! ```
//!
//! * **The ring is the one routing truth.**  [`RingConfig`] is a small
//!   serializable JSON document (vnodes + named groups with replica
//!   addresses); [`HashRing`] builds the sorted virtual-point table from
//!   it with a seedless deterministic hash (FNV-1a plus a 64-bit avalanche
//!   finalizer), so every process that loads the same file computes
//!   byte-identical placements — no coordination service, no gossip.
//!   Rebalance is minimal-disruption: adding a group moves ≈ `1/(N+1)` of
//!   the tenants (all onto the new group), removing one moves only its own
//!   (`tests/ring_properties.rs` pins both bounds, plus balance).
//! * **Servers enforce ownership** ([`server`], [`ring::RingMembership`]):
//!   a ring-scoped server seeds/refreshes only the tenants its group owns,
//!   stamps `x-opaq-owner` ([`OWNER_HEADER`]) on every response, and
//!   refuses a single-tenant request for a peer's tenant with HTTP 421 and
//!   the typed `wrong_owner` error body naming the owning group and its
//!   addresses — a *redirect with evidence*, never a silent proxy, so a
//!   stale client heals its routing in one hop.
//! * **Clients route by ownership** ([`routed`]): a [`RoutedFleet`] keys
//!   one [`ReplicaSet`] per group off the ring, so failover, circuit
//!   breakers and degraded replay all stay *per-group* (a dead group
//!   cannot poison another group's breakers).  A `wrong_owner` answer
//!   triggers exactly one re-route to the named owner — counted, traced
//!   with the *same* trace id across both hops, and never looped.
//! * **Glob plans scatter** ([`server`] + `opaq_query::PlanExecutor`): a
//!   `fetch tenant-*/events | coalesce` plan reaching any group's server
//!   fans out to the peer groups' primaries, gathers their partial
//!   snapshot sets, and fuses everything through the same deterministic
//!   `merge_tree` the single-catalog path uses — so a multi-group answer
//!   is **byte-identical** to the same plan on an unpartitioned catalog
//!   (the oracle the routed harness and the CI `routing-smoke` job compare
//!   against).
//! * **The partitioned harness** ([`routed::run_routed_workload`], i.e.
//!   `opaq serve-bench --http --groups G --replicas M [--chaos]`): stands
//!   up G groups × M replicas, routes ring-aware clients (with deliberate
//!   misroutes to exercise the re-route arc), verifies every answer
//!   byte-for-byte *and* ownership-checks every 200's `x-opaq-owner`
//!   against the ring, scatters glob plans and replays them against the
//!   unpartitioned oracle, and reports per-group tenant/op balance — under
//!   the same chaos proxies and kill/restart monkey as the flat fleet.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backoff;
pub mod chaos;
pub mod circuit;
pub mod client;
pub mod failover;
pub mod http;
pub mod json;
pub mod replica;
pub mod ring;
pub mod routed;
pub mod server;
pub mod sync;
pub mod workload;

pub use backoff::Backoff;
pub use chaos::{ChaosConfig, ChaosCounters, ChaosProxy};
pub use circuit::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{ClientResponse, ClientStats, ConnectError, ConnectErrorKind, HttpClient};
pub use failover::{run_replica_workload, ReplicaLoadReport, ReplicaWorkloadSpec};
pub use http::{Request, Response};
pub use json::Json;
pub use replica::{
    FailoverResponse, ReplicaConfig, ReplicaConfigBuilder, ReplicaSet, ReplicationStats,
};
pub use ring::{GroupConfig, HashRing, RingConfig, RingMembership};
pub use routed::{run_routed_workload, RoutedFleet, RoutedLoadReport, RoutedWorkloadSpec};
pub use server::{
    render_plan_response_json, render_response_json, ApiRequest, HttpServer, ServerConfig,
    ServerConfigBuilder, ServerStats, Telemetry, FRESHNESS_HEADER, OWNER_HEADER, SOURCES_HEADER,
    TRACE_HEADER, VERSION_HEADER,
};
pub use sync::{bootstrap, fetch_manifest, fetch_sketch, sync_once, PeerEntry, Replicator};
pub use workload::{run_http_workload, HttpLoadReport, HttpWorkloadSpec};

use opaq_serve::ServeError;
use std::fmt;

/// Errors surfaced by the network layer.
#[derive(Debug)]
pub enum NetError {
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// A connection could not be established (or died), classified.
    Connect(ConnectError),
    /// Bad server or workload configuration.
    InvalidConfig(String),
    /// The peer violated the HTTP/JSON protocol contract.
    Protocol(String),
    /// The serving layer reported an error.
    Serve(ServeError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Connect(e) => write!(f, "{e}"),
            NetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Connect(e) => Some(e),
            NetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> Self {
        NetError::Serve(e)
    }
}

impl From<opaq_core::OpaqError> for NetError {
    fn from(e: opaq_core::OpaqError) -> Self {
        NetError::Serve(ServeError::Opaq(e))
    }
}

/// Convenience alias for results in this crate.
pub type NetResult<T> = Result<T, NetError>;
