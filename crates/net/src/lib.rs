//! # opaq-net — HTTP/1.1 front-end over the OPAQ serving layer
//!
//! `opaq-serve` made the sketches queryable in-process; this crate makes
//! them queryable over real TCP, completing the paper→production arc: one
//! I/O-efficient pass builds a tiny sketch, the catalog versions it, and any
//! HTTP client can now ask for quantiles.  Everything is dependency-free —
//! hand-rolled request parsing, a small JSON wire, `std::net` sockets — in
//! the same spirit as the vendored shims elsewhere in the workspace.
//!
//! ## Architecture
//!
//! ```text
//!                 accept thread (non-blocking poll, shutdown-aware)
//!                      │ bounded channel (full ⇒ 503, shed load)
//!          ┌───────────┼───────────┐
//!          ▼           ▼           ▼
//!     worker 0     worker 1  …  worker W        (keep-alive loop per conn:
//!          │ parse → route → respond             request cap, read timeout,
//!          ▼                                     idle timeout)
//!    ┌──────────────┐   snapshot + estimate   ┌───────────────┐
//!    │ QueryEngine  │ ───────────────────────▶│ SketchCatalog │
//!    │ (latency     │   version + freshness   │ (TTL: expired │──▶ RefreshPool
//!    │  histograms) │                         │  ⇒ hook fires)│    re-ingest
//!    └──────────────┘                         └───────────────┘
//! ```
//!
//! * **Wire** ([`http`], [`json`]): strict request parsing (single
//!   `Content-Length`, capped headers → 431, capped bodies → 413, no
//!   `Transfer-Encoding`), and a JSON reader/writer whose output is a pure
//!   function of the data — the consistency harness depends on that.
//! * **Server** ([`server`]): bounded accept pool, keep-alive with a
//!   per-connection request cap, shutdown that drains in-flight requests
//!   before joining (same close-then-join discipline as `RefreshPool`).
//!   Routes:
//!
//!   | route | answer |
//!   |---|---|
//!   | `GET /v1/{tenant}/{dataset}/quantile?phi=` | φ-quantile bounds |
//!   | `GET /v1/{tenant}/{dataset}/rank?key=` | rank bounds of a key |
//!   | `GET /v1/{tenant}/{dataset}/profile?count=` | equi-depth profile |
//!   | `POST /v1/{tenant}/{dataset}/quantile_batch` | `{"phis":[…]}`, one consistent version |
//!   | `POST /v1/query` | `{"plan":"fetch t-*/d \| coalesce \| quantile 0.5"}` pipeline (see `opaq-query`) |
//!   | `GET /healthz` | liveness + entry count |
//!   | `GET /metrics` | text exposition: per-tenant p50/p99/p999, per-plan-stage latency, catalog stats |
//!
//!   Every route lowers to one typed [`server::ApiRequest`], compiles to an
//!   `opaq_query::QueryPlan` (the GET family as degenerate one-target
//!   plans), and runs through one shared `PlanExecutor` — a single request
//!   model and a single response renderer behind the whole surface.  Error
//!   bodies are uniformly `{"error":{"code":...,"message":...}}` with
//!   stable machine-readable codes.
//!
//!   Every single-target `/v1` response carries `x-opaq-version` (the
//!   sketch epoch that answered — the handle the byte-for-byte verification
//!   keys on) and `x-opaq-freshness` (`fresh|stale|refreshing`, the
//!   catalog's TTL tag); `/v1/query` responses instead embed the full
//!   `(tenant, dataset, version, freshness)` tuple per contributing source,
//!   plus an `x-opaq-sources` count header.
//! * **Client** ([`client`]): minimal keep-alive client with transparent
//!   single reconnect, for the harness/CLI/examples.
//! * **Workload harness** ([`workload`]): the HTTP twin of
//!   `opaq_serve::run_workload` — N client threads × M tenants over real
//!   sockets, every response re-rendered locally from the registered sketch
//!   of its claimed version and compared **byte-for-byte**, plus a TTL probe
//!   that watches an expiring tenant serve non-fresh tags until its
//!   background refresh publishes.  With
//!   [`workload::HttpWorkloadSpec::target_qps`] the clients hold a fixed
//!   **open-loop** offered rate and measure latency from each op's scheduled
//!   send time (coordinated-omission-safe), 503s are tallied as *sheds*
//!   rather than errors, and the report carries verdicts for any declared
//!   [`opaq_metrics::SloThresholds`] — the machinery behind
//!   `opaq serve-bench --http --qps N --slo-p99-ms M`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod workload;

pub use client::{ClientResponse, HttpClient};
pub use http::{Request, Response};
pub use json::Json;
pub use server::{
    render_plan_response_json, render_response_json, ApiRequest, HttpServer, ServerConfig,
    ServerConfigBuilder, ServerStats, FRESHNESS_HEADER, SOURCES_HEADER, VERSION_HEADER,
};
pub use workload::{run_http_workload, HttpLoadReport, HttpWorkloadSpec};

use opaq_serve::ServeError;
use std::fmt;

/// Errors surfaced by the network layer.
#[derive(Debug)]
pub enum NetError {
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// Bad server or workload configuration.
    InvalidConfig(String),
    /// The peer violated the HTTP/JSON protocol contract.
    Protocol(String),
    /// The serving layer reported an error.
    Serve(ServeError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> Self {
        NetError::Serve(e)
    }
}

impl From<opaq_core::OpaqError> for NetError {
    fn from(e: opaq_core::OpaqError) -> Self {
        NetError::Serve(ServeError::Opaq(e))
    }
}

/// Convenience alias for results in this crate.
pub type NetResult<T> = Result<T, NetError>;
