//! Replica-side catalog synchronisation: bootstrap from a peer, then poll
//! for deltas.
//!
//! The protocol is two GETs.  `/v1/_sync/manifest` returns the peer's
//! **version vector** — every published `(tenant, dataset)` with its
//! current version.  `/v1/_sync/sketch?tenant=&dataset=` returns one
//! entry's sketch bytes in the checksummed `opaq_storage::sketch_codec`
//! frame, with the served version in `x-opaq-version` — the version and the
//! bytes travel as one atomic pair.
//!
//! Reconciliation is a per-entry version-vector merge: an entry is fetched
//! and applied iff the peer's version is **strictly greater** than the
//! local one, and it is applied at the peer's exact version number
//! ([`SketchCatalog::publish_at`]) so a replica serves the same
//! `(version, bytes)` truth as its source — the invariant the cross-replica
//! byte-for-byte verifier keys on.  Stale offers (a concurrent sync already
//! applied a newer version) are skipped, never errors: version vectors only
//! move forward.  The same [`sync_once`] pass serves both cold bootstrap
//! (empty local vector: everything is a delta) and steady-state catch-up, so
//! a replica that was down for ten versions and one that missed a single
//! publish converge through the identical code path.

use crate::backoff::Backoff;
use crate::client::HttpClient;
use crate::json::Json;
use crate::replica::ReplicationStats;
use crate::server::VERSION_HEADER;
use crate::{NetError, NetResult};
use opaq_core::QuantileSketch;
use opaq_metrics::trace::{SpanRecorder, SpanTag, Stage, TraceId, TraceSink};
use opaq_serve::{DatasetId, ServeError, SketchCatalog, TenantId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One row of a peer's version vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Tenant identifier.
    pub tenant: String,
    /// Dataset identifier.
    pub dataset: String,
    /// The peer's current version for the entry.
    pub version: u64,
}

/// Percent-encode a string for use inside a query-parameter value.
fn encode_query_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Fetch the peer's version vector from `GET /v1/_sync/manifest`.
///
/// # Errors
/// Transport failures, non-200 statuses, or a malformed manifest body.
pub fn fetch_manifest(client: &mut HttpClient) -> NetResult<Vec<PeerEntry>> {
    let response = client.get("/v1/_sync/manifest")?;
    if response.status != 200 {
        return Err(NetError::Protocol(format!(
            "sync manifest returned status {}",
            response.status
        )));
    }
    let parsed = Json::parse(response.body_str()?)
        .map_err(|e| NetError::Protocol(format!("sync manifest body: {e}")))?;
    let Some(entries) = parsed.get("entries").and_then(|v| v.as_array()) else {
        return Err(NetError::Protocol(
            "sync manifest body has no entries array".into(),
        ));
    };
    entries
        .iter()
        .map(|item| {
            let field = |key: &str| {
                item.get(key)
                    .ok_or_else(|| NetError::Protocol(format!("sync manifest entry missing {key}")))
            };
            Ok(PeerEntry {
                tenant: field("tenant")?
                    .as_str()
                    .ok_or_else(|| NetError::Protocol("tenant is not a string".into()))?
                    .to_owned(),
                dataset: field("dataset")?
                    .as_str()
                    .ok_or_else(|| NetError::Protocol("dataset is not a string".into()))?
                    .to_owned(),
                version: field("version")?
                    .as_u64()
                    .ok_or_else(|| NetError::Protocol("version is not an integer".into()))?,
            })
        })
        .collect()
}

/// Fetch one entry's sketch from the peer: the `(version, sketch)` pair the
/// sync endpoint snapshotted atomically.
///
/// # Errors
/// Transport failures, non-200 statuses, a missing version header, or
/// sketch bytes that fail the codec's checksum/structure validation.
pub fn fetch_sketch(
    client: &mut HttpClient,
    tenant: &str,
    dataset: &str,
) -> NetResult<(u64, QuantileSketch<u64>)> {
    let target = format!(
        "/v1/_sync/sketch?tenant={}&dataset={}",
        encode_query_value(tenant),
        encode_query_value(dataset)
    );
    let response = client.get(&target)?;
    if response.status != 200 {
        return Err(NetError::Protocol(format!(
            "sync sketch for {tenant}/{dataset} returned status {}",
            response.status
        )));
    }
    let version: u64 = response
        .header(VERSION_HEADER)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| NetError::Protocol("sync sketch response without version header".into()))?;
    let wire = opaq_storage::sketch_codec::from_bytes::<u64>(&response.body)
        .map_err(|e| NetError::Protocol(format!("sync sketch bytes: {e}")))?;
    let sketch = QuantileSketch::from_wire(wire)?;
    Ok((version, sketch))
}

/// One reconciliation pass: diff the peer's version vector against the
/// local catalog and apply every strictly-newer entry at the peer's exact
/// version.  Returns how many entries were applied.  Serves both cold
/// bootstrap and steady-state delta catch-up.
///
/// Each pass mints a fresh trace id, stamps it on every request to the
/// peer (so the peer's `Request` spans land on the same trace), and —
/// when `recorder` is given — records a local `Sync` root span covering
/// the whole pass, tagged `Error` on failure.
///
/// # Errors
/// Transport/protocol failures; a concurrently-advanced local entry
/// ([`ServeError::StaleVersion`]) is skipped, not an error.
pub fn sync_once(
    catalog: &SketchCatalog,
    client: &mut HttpClient,
    stats: Option<&Arc<ReplicationStats>>,
    recorder: Option<&Arc<SpanRecorder>>,
) -> NetResult<u64> {
    let trace = TraceId::mint();
    client.set_trace_id(Some(trace));
    let sink = recorder.map(|r| TraceSink::new(Arc::clone(r), trace));
    let outcome = sync_pass(catalog, client, stats);
    if let Some(sink) = sink {
        let tag = if outcome.is_ok() {
            SpanTag::Untagged
        } else {
            SpanTag::Error
        };
        sink.finish_root(Stage::Sync, tag);
    }
    outcome
}

/// The body of one reconciliation pass, factored out so [`sync_once`] can
/// wrap it in a `Sync` span regardless of how it exits.
fn sync_pass(
    catalog: &SketchCatalog,
    client: &mut HttpClient,
    stats: Option<&Arc<ReplicationStats>>,
) -> NetResult<u64> {
    let peer_vector = fetch_manifest(client)?;
    let local: std::collections::BTreeMap<(String, String), u64> = catalog
        .inventory()
        .into_iter()
        .map(|e| ((e.tenant, e.dataset), e.version))
        .collect();
    let mut applied = 0u64;
    for entry in peer_vector {
        let known = local
            .get(&(entry.tenant.clone(), entry.dataset.clone()))
            .copied()
            .unwrap_or(0);
        if entry.version <= known {
            continue;
        }
        let (version, sketch) = fetch_sketch(client, &entry.tenant, &entry.dataset)?;
        if version <= known {
            continue;
        }
        let tenant = TenantId::new(entry.tenant.as_str());
        let dataset = DatasetId::new(entry.dataset.as_str());
        match catalog.publish_at(&tenant, &dataset, sketch, version) {
            Ok(_) => applied += 1,
            // A concurrent sync (or local publish) got there first with an
            // equal-or-newer version: the vector already moved forward.
            Err(ServeError::StaleVersion { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    if applied > 0 {
        if let Some(stats) = stats {
            stats
                .sync_deltas_applied
                .fetch_add(applied, Ordering::Relaxed);
        }
    }
    Ok(applied)
}

/// Cold-start bootstrap: one blocking [`sync_once`] against `peer`.
/// Returns how many entries were applied.  Callers bootstrap *before*
/// exposing the replica so it never serves an empty catalog it is about to
/// overwrite.
///
/// # Errors
/// As for [`sync_once`].
pub fn bootstrap(
    catalog: &SketchCatalog,
    peer: &str,
    stats: Option<&Arc<ReplicationStats>>,
    recorder: Option<&Arc<SpanRecorder>>,
) -> NetResult<u64> {
    let mut client = HttpClient::new(peer).with_read_timeout(Duration::from_secs(10));
    sync_once(catalog, &mut client, stats, recorder)
}

/// Background delta-polling thread: a [`sync_once`] against the peer every
/// `poll` interval, with capped jittered backoff replacing the interval
/// while the peer is unreachable.
pub struct Replicator {
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator").finish_non_exhaustive()
    }
}

impl Replicator {
    /// Start polling `peer` for catalog deltas every `poll`.  When
    /// `recorder` is given, every pass records a `Sync` root span under a
    /// freshly-minted trace that is also stamped on the requests to the
    /// peer.
    pub fn start(
        catalog: Arc<SketchCatalog>,
        peer: impl Into<String>,
        poll: Duration,
        stats: Option<Arc<ReplicationStats>>,
        recorder: Option<Arc<SpanRecorder>>,
    ) -> Self {
        let peer = peer.into();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("opaq-replicator".to_string())
                .spawn(move || {
                    let mut client = HttpClient::new(peer.clone())
                        .with_read_timeout(Duration::from_secs(5))
                        .with_connect_timeout(Duration::from_millis(500));
                    let seed = peer.bytes().fold(0x5265_706cu64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                    let mut backoff =
                        Backoff::new(Duration::from_millis(50), Duration::from_secs(5), seed);
                    while !shutdown.load(Ordering::Acquire) {
                        let wait = match sync_once(
                            &catalog,
                            &mut client,
                            stats.as_ref(),
                            recorder.as_ref(),
                        ) {
                            Ok(_) => {
                                backoff.reset();
                                poll
                            }
                            Err(_) => backoff.next_delay(),
                        };
                        // Sleep in small slices so shutdown stays prompt.
                        let mut remaining = wait;
                        while !remaining.is_zero() && !shutdown.load(Ordering::Acquire) {
                            let slice = remaining.min(Duration::from_millis(20));
                            std::thread::sleep(slice);
                            remaining = remaining.saturating_sub(slice);
                        }
                    }
                })
                .expect("spawning the replicator thread cannot fail")
        };
        Self {
            shutdown,
            handle: Some(handle),
        }
    }

    /// Stop polling and join the thread.  Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.shutdown();
    }
}
