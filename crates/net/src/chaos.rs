//! Fault-injection TCP proxy: real failures between client and replica.
//!
//! A [`ChaosProxy`] listens on an ephemeral local port and forwards bytes to
//! one upstream replica, except when its seeded RNG decides a connection
//! should suffer: **drop** (accept, then close immediately), **delay**
//! (stall before forwarding), **truncate** (forward only the first N
//! response bytes, then close mid-body), **reset** (close both sides
//! abruptly after N response bytes), or **flap** (reject every connection
//! for a window, then recover).  Faults are injected on the wire, not
//! mocked — the client sees genuine connect failures, timeouts and torn
//! reads, which is exactly what the byte-for-byte verifier must survive.
//!
//! The upstream address is behind an `RwLock` so a harness can kill a
//! replica, restart it on a fresh port, and repoint the proxy without the
//! clients ever changing the address they dial.  Every injected fault is
//! tallied per kind and into
//! [`ReplicationStats::chaos_faults_injected`](crate::replica::ReplicationStats).

use crate::replica::ReplicationStats;
use crate::NetResult;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for fault injection.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability in `[0, 1]` that a new connection suffers a fault.
    pub fault_rate: f64,
    /// Stall length for delay faults.
    pub delay: Duration,
    /// Response bytes forwarded before a truncate fault closes the stream.
    pub truncate_after: usize,
    /// Response bytes forwarded before a reset fault kills both sides.
    pub reset_after: usize,
    /// How long a flap fault rejects every incoming connection.
    pub flap_window: Duration,
    /// RNG seed — same seed, same fault schedule.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            fault_rate: 0.25,
            delay: Duration::from_millis(30),
            truncate_after: 48,
            reset_after: 160,
            flap_window: Duration::from_millis(120),
            seed: 0xc4a05,
        }
    }
}

/// Per-kind injected-fault tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Connections accepted and immediately closed.
    pub drops: u64,
    /// Connections stalled before forwarding.
    pub delays: u64,
    /// Responses cut off mid-body.
    pub truncates: u64,
    /// Connections reset after a few response bytes.
    pub resets: u64,
    /// Connections rejected during a flap window.
    pub flaps: u64,
}

impl ChaosCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.truncates + self.resets + self.flaps
    }
}

#[derive(Default)]
struct Tallies {
    drops: AtomicU64,
    delays: AtomicU64,
    truncates: AtomicU64,
    resets: AtomicU64,
    flaps: AtomicU64,
}

struct Inner {
    upstream: RwLock<String>,
    config: ChaosConfig,
    rng: Mutex<u64>,
    flap_until: Mutex<Option<Instant>>,
    tallies: Tallies,
    stats: Option<Arc<ReplicationStats>>,
    shutdown: AtomicBool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Delay,
    Truncate,
    Reset,
    Flap,
}

impl Inner {
    fn next_rand(&self) -> u64 {
        let mut rng = self.rng.lock().expect("chaos rng lock");
        let mut x = *rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick_fault(&self) -> Fault {
        // An active flap window overrides the dice: everything is rejected.
        {
            let mut flap = self.flap_until.lock().expect("chaos flap lock");
            if let Some(until) = *flap {
                if Instant::now() < until {
                    return Fault::Flap;
                }
                *flap = None;
            }
        }
        let roll = (self.next_rand() % 10_000) as f64 / 10_000.0;
        if roll >= self.config.fault_rate {
            return Fault::None;
        }
        match self.next_rand() % 5 {
            0 => Fault::Drop,
            1 => Fault::Delay,
            2 => Fault::Truncate,
            3 => Fault::Reset,
            _ => {
                *self.flap_until.lock().expect("chaos flap lock") =
                    Some(Instant::now() + self.config.flap_window);
                Fault::Flap
            }
        }
    }

    fn count(&self, fault: Fault) {
        let counter = match fault {
            Fault::None => return,
            Fault::Drop => &self.tallies.drops,
            Fault::Delay => &self.tallies.delays,
            Fault::Truncate => &self.tallies.truncates,
            Fault::Reset => &self.tallies.resets,
            Fault::Flap => &self.tallies.flaps,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(stats) = &self.stats {
            stats.chaos_faults_injected.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running fault-injection proxy in front of one upstream address.
pub struct ChaosProxy {
    inner: Arc<Inner>,
    local_addr: String,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .field("upstream", &*self.inner.upstream.read().expect("upstream"))
            .finish_non_exhaustive()
    }
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start forwarding to `upstream`.
    ///
    /// # Errors
    /// Socket bind/configuration failures.
    pub fn start(
        upstream: impl Into<String>,
        config: ChaosConfig,
        stats: Option<Arc<ReplicationStats>>,
    ) -> NetResult<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?.to_string();
        let inner = Arc::new(Inner {
            upstream: RwLock::new(upstream.into()),
            rng: Mutex::new(config.seed ^ 0x9e37_79b9_7f4a_7c15),
            config,
            flap_until: Mutex::new(None),
            tallies: Tallies::default(),
            stats,
            shutdown: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let inner = Arc::clone(&inner);
                            let handle =
                                std::thread::spawn(move || handle_connection(inner, client));
                            let mut live = handlers.lock().expect("chaos handlers lock");
                            live.retain(|h| !h.is_finished());
                            live.push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Self {
            inner,
            local_addr,
            accept: Some(accept),
            handlers,
        })
    }

    /// The address clients should dial.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Repoint the proxy at a new upstream (e.g. a restarted replica on a
    /// fresh port).  In-flight connections keep their old upstream; new
    /// connections get the new one.
    pub fn set_upstream(&self, addr: impl Into<String>) {
        *self.inner.upstream.write().expect("upstream lock") = addr.into();
    }

    /// Snapshot of per-kind fault tallies.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            drops: self.inner.tallies.drops.load(Ordering::Relaxed),
            delays: self.inner.tallies.delays.load(Ordering::Relaxed),
            truncates: self.inner.tallies.truncates.load(Ordering::Relaxed),
            resets: self.inner.tallies.resets.load(Ordering::Relaxed),
            flaps: self.inner.tallies.flaps.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, wake the forwarders, and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.handlers.lock().expect("chaos handlers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(inner: Arc<Inner>, client: TcpStream) {
    let fault = inner.pick_fault();
    inner.count(fault);
    match fault {
        Fault::Drop | Fault::Flap => {
            // Accept-then-close: the client sees EOF/reset at the worst time.
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        Fault::Delay => std::thread::sleep(inner.config.delay),
        Fault::None | Fault::Truncate | Fault::Reset => {}
    }

    let upstream_addr = inner.upstream.read().expect("upstream lock").clone();
    let Ok(upstream) = TcpStream::connect(&upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    // Response-direction byte budget: truncate/reset cut the reply mid-body.
    let budget = match fault {
        Fault::Truncate => Some(inner.config.truncate_after),
        Fault::Reset => Some(inner.config.reset_after),
        _ => None,
    };

    let Ok(client_rx) = client.try_clone() else {
        return;
    };
    let Ok(upstream_tx) = upstream.try_clone() else {
        return;
    };

    // Request direction in a helper thread, response direction inline; both
    // poll their stop condition via short read timeouts so an idle
    // keep-alive connection cannot wedge proxy shutdown.
    let response_done = Arc::new(AtomicBool::new(false));
    let request_pump = {
        let inner = Arc::clone(&inner);
        let response_done = Arc::clone(&response_done);
        std::thread::spawn(move || {
            pump(client_rx, upstream_tx, None, || {
                inner.shutdown.load(Ordering::Acquire) || response_done.load(Ordering::Acquire)
            });
        })
    };
    pump(upstream, client, budget, || {
        inner.shutdown.load(Ordering::Acquire)
    });
    response_done.store(true, Ordering::Release);
    let _ = request_pump.join();
}

/// Copy bytes from `from` to `to` until EOF, error, an exhausted `budget`,
/// or `stop()` turns true.  Read timeouts keep the loop responsive to `stop`.
fn pump(from: TcpStream, mut to: TcpStream, budget: Option<usize>, stop: impl Fn() -> bool) {
    let mut from = from;
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut remaining = budget;
    let mut buf = [0u8; 4096];
    loop {
        if stop() {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let allowed = match &mut remaining {
                    Some(rem) => {
                        let take = n.min(*rem);
                        *rem -= take;
                        take
                    }
                    None => n,
                };
                if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
                    break;
                }
                let _ = to.flush();
                if remaining == Some(0) {
                    // Budget spent: kill both directions abruptly.
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}
