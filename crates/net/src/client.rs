//! A minimal keep-alive HTTP/1.1 client for the workload harness, the CLI's
//! HTTP mode and the examples.
//!
//! One [`HttpClient`] owns one connection and reuses it across requests;
//! when the server closes (keep-alive request cap, shutdown, idle timeout)
//! the next request transparently reconnects once.  Only what the harness
//! needs: `GET`/`POST`, `Content-Length` framing, no redirects, no TLS.

use crate::{NetError, NetResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response as seen by the client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value by (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    /// [`NetError::Protocol`] if the body is not UTF-8.
    pub fn body_str(&self) -> NetResult<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| NetError::Protocol("response body is not UTF-8".into()))
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    read_timeout: Duration,
}

impl HttpClient {
    /// Create a client for `addr` (e.g. `"127.0.0.1:8080"`); connects lazily.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            conn: None,
            read_timeout: Duration::from_secs(10),
        }
    }

    /// Override the per-response read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// `GET target` (path plus optional query string).
    ///
    /// # Errors
    /// Connection or protocol failures; HTTP error statuses are *not*
    /// errors — check [`ClientResponse::status`].
    pub fn get(&mut self, target: &str) -> NetResult<ClientResponse> {
        self.request("GET", target, None)
    }

    /// `POST target` with a JSON body.
    ///
    /// # Errors
    /// As for [`Self::get`].
    pub fn post_json(&mut self, target: &str, body: &str) -> NetResult<ClientResponse> {
        self.request("POST", target, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> NetResult<ClientResponse> {
        // First attempt on the cached connection (if any), one transparent
        // retry on a fresh connection: a server that closed the keep-alive
        // between requests surfaces as an I/O error or clean EOF here.
        let had_conn = self.conn.is_some();
        match self.attempt(method, target, body) {
            Ok(response) => Ok(response),
            Err(_) if had_conn => {
                self.conn = None;
                self.attempt(method, target, body)
            }
            Err(e) => Err(e),
        }
    }

    fn attempt(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> NetResult<ClientResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            self.conn = Some(BufReader::new(stream));
        }
        let conn = self.conn.as_mut().expect("just connected");

        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {}\r\n", self.addr);
        if let Some(body) = body {
            head.push_str("content-type: application/json\r\n");
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body.as_bytes())?;
        }
        stream.flush()?;

        let response = read_response(conn)?;
        if response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.conn = None;
        }
        Ok(response)
    }
}

fn read_response(conn: &mut BufReader<TcpStream>) -> NetResult<ClientResponse> {
    let status_line = read_line(conn)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(NetError::Protocol(format!(
            "bad status line: {status_line:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NetError::Protocol(format!("bad status code in {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(conn)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| NetError::Protocol("response header without ':'".into()))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| NetError::Protocol("response without Content-Length".into()))?;
    let mut body = vec![0u8; length];
    conn.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

fn read_line(conn: &mut BufReader<TcpStream>) -> NetResult<String> {
    let mut line = Vec::new();
    let n = conn.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Err(NetError::Protocol("connection closed mid-response".into()));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    }
    String::from_utf8(line).map_err(|_| NetError::Protocol("non-UTF-8 response header".into()))
}
