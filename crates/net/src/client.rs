//! A minimal keep-alive HTTP/1.1 client for the workload harness, the CLI's
//! HTTP mode and the examples.
//!
//! One [`HttpClient`] owns one connection and reuses it across requests;
//! when the server closes (keep-alive request cap, shutdown, idle timeout)
//! the next request transparently reconnects once.  Reconnects are paced by
//! a capped, jittered [`Backoff`] so a dead socket cannot be hammered in a
//! tight loop, connection failures surface as a typed [`ConnectError`]
//! (refused vs. timed out vs. reset), and the client keeps separate
//! `retries` / `connect_errors` / `timeouts` counters so a chaos run is
//! diagnosable from the summary.  Only what the harness needs: `GET`/`POST`,
//! `Content-Length` framing, no redirects, no TLS.

use crate::backoff::Backoff;
use crate::server::TRACE_HEADER;
use crate::{NetError, NetResult};
use opaq_metrics::TraceId;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a connection could not be established (or died mid-use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectErrorKind {
    /// The peer actively refused the connection (nothing listening).
    Refused,
    /// The connect attempt (or a read on it) exceeded its deadline.
    Timeout,
    /// The peer reset or aborted an established connection.
    Reset,
    /// Any other socket-level failure (unroutable, resolution, …).
    Other,
}

/// A typed connection failure: which peer, and how it failed.
#[derive(Debug, Clone)]
pub struct ConnectError {
    /// Failure classification.
    pub kind: ConnectErrorKind,
    /// The address the client was trying to reach.
    pub addr: String,
    /// The underlying OS error text.
    pub detail: String,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ConnectErrorKind::Refused => "refused",
            ConnectErrorKind::Timeout => "timed out",
            ConnectErrorKind::Reset => "reset",
            ConnectErrorKind::Other => "failed",
        };
        write!(f, "connection to {} {kind}: {}", self.addr, self.detail)
    }
}

impl std::error::Error for ConnectError {}

impl ConnectError {
    fn classify(addr: &str, e: &io::Error) -> Self {
        let kind = match e.kind() {
            io::ErrorKind::ConnectionRefused => ConnectErrorKind::Refused,
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ConnectErrorKind::Timeout,
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => ConnectErrorKind::Reset,
            _ => ConnectErrorKind::Other,
        };
        Self {
            kind,
            addr: addr.to_string(),
            detail: e.to_string(),
        }
    }
}

/// Running failure/retry tallies for one client, reset never.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Transparent reconnect-and-retry attempts made after a failed request.
    pub retries: u64,
    /// Failures to establish (or keep) a TCP connection.
    pub connect_errors: u64,
    /// Requests that died to a read/connect deadline specifically.
    pub timeouts: u64,
}

/// A parsed response as seen by the client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value by (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    /// [`NetError::Protocol`] if the body is not UTF-8.
    pub fn body_str(&self) -> NetResult<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| NetError::Protocol("response body is not UTF-8".into()))
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    read_timeout: Duration,
    connect_timeout: Duration,
    backoff: Backoff,
    stats: ClientStats,
    trace_id: Option<TraceId>,
}

impl HttpClient {
    /// Create a client for `addr` (e.g. `"127.0.0.1:8080"`); connects lazily.
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        // Seed the jitter from the address so a fleet of clients pointed at
        // different replicas never shares a retry schedule, while any given
        // client stays deterministic.
        let seed = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        Self {
            addr,
            conn: None,
            read_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            backoff: Backoff::for_connect(seed),
            stats: ClientStats::default(),
            trace_id: None,
        }
    }

    /// Set (or clear) the trace id sent as `x-opaq-trace-id` on every
    /// subsequent request, so a hop to this server records its spans under
    /// the caller's trace.  Sticky until changed.
    pub fn set_trace_id(&mut self, trace: Option<TraceId>) {
        self.trace_id = trace;
    }

    /// The trace id currently stamped on outgoing requests.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace_id
    }

    /// Override the per-response read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Override the connect deadline (default 2s).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Override the reconnect pacing policy.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// The address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Cumulative retry/connect-failure/timeout tallies.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// `GET target` (path plus optional query string).
    ///
    /// # Errors
    /// Connection or protocol failures; HTTP error statuses are *not*
    /// errors — check [`ClientResponse::status`].
    pub fn get(&mut self, target: &str) -> NetResult<ClientResponse> {
        self.request("GET", target, None)
    }

    /// `POST target` with a JSON body.
    ///
    /// # Errors
    /// As for [`Self::get`].
    pub fn post_json(&mut self, target: &str, body: &str) -> NetResult<ClientResponse> {
        self.request("POST", target, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> NetResult<ClientResponse> {
        // First attempt on the cached connection (if any), one transparent
        // retry on a fresh connection: a server that closed the keep-alive
        // between requests surfaces as an I/O error or clean EOF here.  The
        // retry waits out a backoff delay first, so a dead socket throttles
        // its caller instead of spinning.
        let had_conn = self.conn.is_some();
        match self.attempt(method, target, body) {
            Ok(response) => {
                self.backoff.reset();
                Ok(response)
            }
            Err(first) if had_conn => {
                self.conn = None;
                self.note_failure(&first);
                self.stats.retries += 1;
                std::thread::sleep(self.backoff.next_delay());
                match self.attempt(method, target, body) {
                    Ok(response) => {
                        self.backoff.reset();
                        Ok(response)
                    }
                    Err(second) => {
                        self.conn = None;
                        self.note_failure(&second);
                        self.backoff.next_delay();
                        Err(second)
                    }
                }
            }
            Err(e) => {
                self.conn = None;
                self.note_failure(&e);
                // Remember the failure so the *next* call's fresh connect is
                // paced — that is what stops a retry loop on a dead replica.
                self.backoff.next_delay();
                Err(e)
            }
        }
    }

    fn note_failure(&mut self, e: &NetError) {
        match e {
            NetError::Connect(c) => {
                self.stats.connect_errors += 1;
                if c.kind == ConnectErrorKind::Timeout {
                    self.stats.timeouts += 1;
                }
            }
            NetError::Io(io_err)
                if matches!(
                    io_err.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                self.stats.timeouts += 1;
            }
            _ => {}
        }
    }

    fn connect(&mut self) -> NetResult<()> {
        let classify = |e: io::Error| NetError::Connect(ConnectError::classify(&self.addr, &e));
        let target = self
            .addr
            .to_socket_addrs()
            .map_err(classify)?
            .next()
            .ok_or_else(|| {
                NetError::Connect(ConnectError {
                    kind: ConnectErrorKind::Other,
                    addr: self.addr.clone(),
                    detail: "address resolved to nothing".into(),
                })
            })?;
        let stream = TcpStream::connect_timeout(&target, self.connect_timeout).map_err(classify)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        self.conn = Some(BufReader::new(stream));
        Ok(())
    }

    fn attempt(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> NetResult<ClientResponse> {
        if self.conn.is_none() {
            self.connect()?;
        }
        let conn = self.conn.as_mut().expect("just connected");

        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {}\r\n", self.addr);
        if let Some(trace) = self.trace_id {
            head.push_str(&format!("{TRACE_HEADER}: {trace}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("content-type: application/json\r\n");
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body.as_bytes())?;
        }
        stream.flush()?;

        let response = read_response(conn)?;
        if response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.conn = None;
        }
        Ok(response)
    }
}

fn read_response(conn: &mut BufReader<TcpStream>) -> NetResult<ClientResponse> {
    let status_line = read_line(conn)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(NetError::Protocol(format!(
            "bad status line: {status_line:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NetError::Protocol(format!("bad status code in {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(conn)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| NetError::Protocol("response header without ':'".into()))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| NetError::Protocol("response without Content-Length".into()))?;
    let mut body = vec![0u8; length];
    conn.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

fn read_line(conn: &mut BufReader<TcpStream>) -> NetResult<String> {
    let mut line = Vec::new();
    let n = conn.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Err(NetError::Protocol("connection closed mid-response".into()));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    }
    String::from_utf8(line).map_err(|_| NetError::Protocol("non-UTF-8 response header".into()))
}
