//! Ring-routed fleet: N replica groups behind one consistent-hash routing
//! layer, with failover *inside* each group and `wrong_owner` re-routing
//! *between* them.
//!
//! A [`RoutedFleet`] is the client half of the partitioned serving story:
//! it keys a [`crate::ReplicaSet`] per replica group off the shared
//! [`HashRing`], routes every single-tenant request to the group the ring
//! says owns that tenant, and keeps all the per-group machinery — sticky
//! failover, circuit breakers, degraded replay — exactly as it was for a
//! flat fleet.  When a request lands on the wrong group anyway (a stale
//! client ring, a deliberate misroute in the harness), the server answers
//! the typed `wrong_owner` error naming the owning group; the fleet
//! re-routes **once** to that group — same trace id, counted in
//! [`ReplicationStats::reroutes`] — and never loops.
//!
//! [`run_routed_workload`] is the harness: G groups × R replicas, each
//! group a primary plus `--peer`-synced secondaries, tenants seeded only
//! into their owning group, optional chaos proxies and a mid-run
//! kill/restart of one replica — and every answer still verified
//! **byte-for-byte** against the registered sketch of its claimed version,
//! plus an ownership check: a 200 whose `x-opaq-owner` header names any
//! group but the ring's owner counts as *mis-owned* (must be 0).  Every
//! fifth op is a glob `coalesce` plan through a rotating coordinator group;
//! the coordinator scatters to its peers, and the offline replay (fuse the
//! registered sketches of every claimed version, re-render) is exactly the
//! answer an unpartitioned catalog would have produced — the byte-identity
//! gate for the scatter/gather path.

use crate::chaos::{ChaosConfig, ChaosCounters, ChaosProxy};
use crate::client::{ClientResponse, ClientStats};
use crate::failover::{get_request_for, sleep_sliced, start_secondary, wait_for_progress};
use crate::json::{write_escaped, Json};
use crate::replica::{FailoverResponse, ReplicaConfig, ReplicaSet, ReplicationStats};
use crate::ring::{GroupConfig, HashRing, RingConfig, RingMembership};
use crate::server::{HttpServer, ServerConfig, OWNER_HEADER};
use crate::workload::{
    plan_for, trace_ok, verify, verify_plan, wire_form, PlanVerdict, Registry, Verdict,
};
use crate::{NetError, NetResult};
use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_metrics::{LatencyHistogram, LatencySnapshot, SloOutcome, SloThresholds, TraceId};
use opaq_serve::{
    chunk_spec, next_rand, DatasetId, QueryEngine, SketchCatalog, TenantId, WorkloadSpec,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// If `response` is a well-formed typed `wrong_owner` answer, the name of
/// the owning group it claims.
fn wrong_owner_group(response: &ClientResponse) -> Option<String> {
    if response.status != 421 {
        return None;
    }
    let body = std::str::from_utf8(&response.body).ok()?;
    let parsed = Json::parse(body).ok()?;
    let error = parsed.get("error")?;
    if error.get("code")?.as_str()? != "wrong_owner" {
        return None;
    }
    Some(error.get("owner")?.get("group")?.as_str()?.to_owned())
}

/// A ring-keyed fleet of per-group [`ReplicaSet`]s.
///
/// Single-tenant GETs route to the owning group ([`RoutedFleet::get`]);
/// glob plans POST to a rotating coordinator group
/// ([`RoutedFleet::post_plan`]) whose server-side scatter hook reaches the
/// peers.  Failover, breakers and degraded replay stay entirely inside each
/// group's `ReplicaSet`; the fleet only decides *which* group a request
/// belongs to — and re-routes once on a typed `wrong_owner` answer.
pub struct RoutedFleet {
    ring: Arc<HashRing>,
    /// Index-aligned with `ring.groups()`.
    groups: Vec<ReplicaSet>,
    stats: Option<Arc<ReplicationStats>>,
    /// Round-robin cursor for plan coordinators.
    plan_cursor: usize,
}

impl std::fmt::Debug for RoutedFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedFleet")
            .field("groups", &self.groups.len())
            .finish_non_exhaustive()
    }
}

impl RoutedFleet {
    /// A fleet over `ring`, dialing `group_addrs[i]` for ring group `i` —
    /// the indirection lets a harness dial through chaos proxies while the
    /// ring itself carries the servers' real addresses.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] when `group_addrs` does not line up with
    /// the ring's groups or any group has no address.
    pub fn new(
        ring: Arc<HashRing>,
        group_addrs: &[Vec<String>],
        config: &ReplicaConfig,
    ) -> NetResult<Self> {
        if group_addrs.len() != ring.groups().len() {
            return Err(NetError::InvalidConfig(format!(
                "fleet has {} address groups but the ring has {} groups",
                group_addrs.len(),
                ring.groups().len()
            )));
        }
        let groups = group_addrs
            .iter()
            .map(|addrs| ReplicaSet::new(addrs, config.clone()))
            .collect::<NetResult<Vec<_>>>()?;
        Ok(Self {
            ring,
            groups,
            stats: None,
            plan_cursor: 0,
        })
    }

    /// A fleet dialing the ring's own per-group addresses directly.
    ///
    /// # Errors
    /// Same as [`RoutedFleet::new`].
    pub fn from_ring(ring: Arc<HashRing>, config: &ReplicaConfig) -> NetResult<Self> {
        let addrs: Vec<Vec<String>> = ring.groups().iter().map(|g| g.addrs.clone()).collect();
        Self::new(ring, &addrs, config)
    }

    /// Attach a shared stats block (failovers, breaker gauges, re-routes).
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<ReplicationStats>) -> Self {
        self.groups = self
            .groups
            .drain(..)
            .map(|set| set.with_stats(Arc::clone(&stats)))
            .collect();
        self.stats = Some(stats);
        self
    }

    /// The ring this fleet routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Ring index of the group owning `tenant`.
    pub fn owner_index(&self, tenant: &str) -> usize {
        self.ring.owner_index(tenant)
    }

    /// Stamp (or clear) the trace id on every group's clients — a re-routed
    /// hop carries the same trace as the misdirected one.
    pub fn set_trace_id(&mut self, trace: Option<TraceId>) {
        for set in &mut self.groups {
            set.set_trace_id(trace);
        }
    }

    /// Probe whichever groups are due for a health sweep; returns whether
    /// any group actually probed.
    pub fn maybe_probe(&mut self) -> bool {
        let mut probed = false;
        for set in &mut self.groups {
            probed |= set.maybe_probe();
        }
        probed
    }

    /// Aggregate client-level transport tallies across every group.
    pub fn client_stats(&self) -> ClientStats {
        self.groups.iter().fold(ClientStats::default(), |acc, set| {
            let s = set.client_stats();
            ClientStats {
                retries: acc.retries + s.retries,
                connect_errors: acc.connect_errors + s.connect_errors,
                timeouts: acc.timeouts + s.timeouts,
            }
        })
    }

    /// `GET target` for `tenant`, routed to the ring's owning group, with
    /// that group's full failover behaviour.
    ///
    /// # Errors
    /// The owning group's transport error when every one of its replicas
    /// failed and nothing is cached for `target`.
    pub fn get(&mut self, tenant: &str, target: &str) -> NetResult<FailoverResponse> {
        let owner = self.ring.owner_index(tenant);
        self.get_via(owner, target)
    }

    /// `GET target` deliberately sent to a **non-owning** group — the
    /// harness hook that exercises the organic misdirection path: the wrong
    /// group answers the typed `wrong_owner` error, and the fleet re-routes
    /// once to the group that error names.  Falls back to the plain routed
    /// path when the ring has a single group.
    ///
    /// # Errors
    /// Same as [`RoutedFleet::get`].
    pub fn get_misrouted(&mut self, tenant: &str, target: &str) -> NetResult<FailoverResponse> {
        let owner = self.ring.owner_index(tenant);
        let wrong = (owner + 1) % self.groups.len();
        self.get_via(wrong, target)
    }

    /// `GET target` via a specific group, following one `wrong_owner`
    /// re-route if that group disclaims the tenant.  The re-route is a
    /// single hop: a second `wrong_owner` (a ring the servers disagree on)
    /// is returned as-is rather than chased.
    fn get_via(&mut self, group: usize, target: &str) -> NetResult<FailoverResponse> {
        let first = self.groups[group].get(target)?;
        let Some(owner_name) = wrong_owner_group(&first.response) else {
            return Ok(first);
        };
        let Some(owner_idx) = self.ring.group_index(&owner_name) else {
            return Ok(first); // the server names a group this ring lacks
        };
        if owner_idx == group {
            return Ok(first); // self-contradictory answer; don't loop
        }
        if let Some(stats) = &self.stats {
            stats.reroutes.fetch_add(1, Ordering::Relaxed);
        }
        self.groups[owner_idx].get(target)
    }

    /// `POST /v1/query` to the next coordinator group in round-robin order.
    /// Glob plans are ownership-free: any group coordinates, scattering to
    /// its ring peers server-side for the tenants it does not hold.
    ///
    /// # Errors
    /// The coordinator group's transport error (plan POSTs are never
    /// retried or failed over across groups — same discipline as
    /// [`ReplicaSet::post_json`]).
    pub fn post_plan(&mut self, body: &str) -> NetResult<FailoverResponse> {
        let coordinator = self.plan_cursor % self.groups.len();
        self.plan_cursor = self.plan_cursor.wrapping_add(1);
        self.groups[coordinator].post_json("/v1/query", body)
    }
}

/// Shape of one routed-fleet workload: G groups × R replicas.
#[derive(Debug, Clone)]
pub struct RoutedWorkloadSpec {
    /// Tenant/client/op counts and sketch parameters (shared with the other
    /// harnesses; TTL/spill knobs are ignored here).
    pub spec: WorkloadSpec,
    /// Replica groups on the ring.  At least 1.
    pub groups: usize,
    /// Serving replicas per group, primary included.  At least 1.
    pub replicas_per_group: usize,
    /// Virtual nodes per group on the ring.
    pub vnodes: u32,
    /// `Some` puts a fault-injecting [`ChaosProxy`] in front of every
    /// replica.
    pub chaos: Option<ChaosConfig>,
    /// Kill group 0's leading secondary mid-run and restart it on a fresh
    /// port (needs `replicas_per_group >= 2`; ignored otherwise).
    pub kill_restart: bool,
    /// Deliberately misroute every N-th op to a non-owning group, forcing
    /// the `wrong_owner` → re-route arc.  0 disables; ignored with one
    /// group.
    pub misroute_every: u64,
    /// Delta-poll interval for the secondaries' replicators.
    pub poll: Duration,
    /// Client tuning for every group's [`ReplicaSet`].
    pub replica: ReplicaConfig,
    /// Server tuning, applied to every replica.
    pub server: ServerConfig,
    /// `Some(qps)` runs the clients open-loop at this aggregate offered
    /// rate, latency measured from each op's scheduled send time.
    pub target_qps: Option<f64>,
    /// Declared objectives, evaluated client-side into
    /// [`RoutedLoadReport::slo`].
    pub slo: SloThresholds,
}

impl Default for RoutedWorkloadSpec {
    fn default() -> Self {
        let mut replica = ReplicaConfig::default();
        // Short cooldown: the harness wants to see the full open →
        // half-open → closed arc inside one bench run.
        replica.breaker.cooldown = Duration::from_millis(150);
        replica.probe_interval = Duration::from_millis(20);
        Self {
            spec: WorkloadSpec::default(),
            groups: 2,
            replicas_per_group: 2,
            vnodes: 128,
            chaos: None,
            kill_restart: false,
            misroute_every: 7,
            poll: Duration::from_millis(40),
            replica,
            server: ServerConfig::default(),
            target_qps: None,
            slo: SloThresholds::default(),
        }
    }
}

impl RoutedWorkloadSpec {
    /// A small chaos configuration for CI smoke runs: 2 groups × 2
    /// replicas, fault proxies on, kill-and-restart on.
    pub fn quick() -> Self {
        Self {
            spec: WorkloadSpec::quick(),
            chaos: Some(ChaosConfig::default()),
            kill_restart: true,
            ..Self::default()
        }
    }
}

/// Per-group share of the routed run, for the balance report.
#[derive(Debug, Clone)]
pub struct GroupShare {
    /// The group's ring name.
    pub group: String,
    /// Tenants the ring assigns to this group.
    pub tenants: u64,
    /// Single-tenant ops whose owner this group was.
    pub ops: u64,
}

/// What a routed-fleet workload observed.
#[derive(Debug, Clone)]
pub struct RoutedLoadReport {
    /// Replica groups on the ring.
    pub groups: usize,
    /// Serving replicas per group the fleet started with.
    pub replicas_per_group: usize,
    /// Single-tenant GETs issued by the client threads.
    pub ops: u64,
    /// Responses verified byte-for-byte against their claimed version.
    pub verified: u64,
    /// Responses that matched no complete published version (must be 0).
    pub torn_reads: u64,
    /// 200s whose `x-opaq-owner` header named a group other than the
    /// ring's owner for that tenant (must be 0).
    pub mis_owned: u64,
    /// Glob `coalesce` plans POSTed through rotating coordinators.
    pub plan_ops: u64,
    /// Plan responses whose offline replay — the unpartitioned-catalog
    /// oracle — matched byte-for-byte.
    pub plan_verified: u64,
    /// Plan POSTs that died to a transport fault (single-attempt, never
    /// retried; expected only under chaos).
    pub plan_unanswered: u64,
    /// Non-200, non-503 responses, plans included (torn-gated runs expect
    /// 0; a chaos run may see a handful from mid-handshake faults).
    pub http_errors: u64,
    /// 503s from a replica's bounded accept queue.
    pub sheds: u64,
    /// Answers replayed from a group's degradation cache (stale but still
    /// byte-verified).
    pub degraded: u64,
    /// Ops for which the owning group had no answer *and* nothing cached.
    pub unanswered: u64,
    /// Versions published by the background refresher during the run.
    pub refreshes_published: u64,
    /// `wrong_owner` answers followed by a one-hop re-route to the owner.
    pub reroutes: u64,
    /// Preferred-replica switches, across all groups and clients.
    pub failovers: u64,
    /// Circuit-breaker open transitions, across all groups and clients.
    pub breaker_opens: u64,
    /// Catalog entries secondaries applied from their primaries.
    pub sync_deltas_applied: u64,
    /// Faults injected by the chaos proxies, total.
    pub chaos_faults_injected: u64,
    /// Per-kind chaos tallies, summed over all proxies.
    pub chaos: ChaosCounters,
    /// Connection-establishment failures across all fleet clients.
    pub connect_errors: u64,
    /// Deadline-killed requests across all fleet clients.
    pub timeouts: u64,
    /// Transparent reconnect-retries across all fleet clients.
    pub retries: u64,
    /// Responses missing the trace header or echoing the wrong id (must be
    /// 0 — the misdirected hop and the re-route share one trace).
    pub trace_violations: u64,
    /// Replicas the chaos monkey shut down mid-run.
    pub kills: u64,
    /// Replicas the chaos monkey brought back (fresh port, re-bootstrap).
    pub restarts: u64,
    /// Per-group tenant/op balance, in ring order.
    pub shares: Vec<GroupShare>,
    /// Wall-clock time of the client phase.
    pub wall: Duration,
    /// Client-observed latency distribution (from scheduled send times when
    /// run open-loop).
    pub latency: LatencySnapshot,
    /// The offered rate the clients held, when run open-loop.
    pub target_qps: Option<f64>,
    /// Verdicts for the declared objectives (empty when none declared).
    pub slo: SloOutcome,
}

impl RoutedLoadReport {
    /// Client requests per second (single-tenant and plan ops) over the
    /// client phase.
    pub fn throughput(&self) -> f64 {
        (self.ops + self.plan_ops) as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of requests answered with a non-200, non-503 status.
    pub fn error_rate(&self) -> f64 {
        self.http_errors as f64 / ((self.ops + self.plan_ops) as f64).max(1.0)
    }

    /// Fraction of requests shed with 503.
    pub fn shed_rate(&self) -> f64 {
        self.sheds as f64 / ((self.ops + self.plan_ops) as f64).max(1.0)
    }

    /// Render the report as text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "routed fleet: {} groups x {} replicas | kills {} | restarts {}\n",
            self.groups, self.replicas_per_group, self.kills, self.restarts
        );
        for share in &self.shares {
            out.push_str(&format!(
                "  {}: tenants {} | ops {}\n",
                share.group, share.tenants, share.ops
            ));
        }
        out.push_str(&format!(
            "ops {} | verified {} | torn {} | mis-owned {} | plan ops {} | plan verified {} | \
             plan unanswered {} | http errors {} | sheds {} | degraded {} | unanswered {} | \
             refreshes {} | {:.0} ops/s\n",
            self.ops,
            self.verified,
            self.torn_reads,
            self.mis_owned,
            self.plan_ops,
            self.plan_verified,
            self.plan_unanswered,
            self.http_errors,
            self.sheds,
            self.degraded,
            self.unanswered,
            self.refreshes_published,
            self.throughput()
        ));
        out.push_str(&format!(
            "reroutes {} | failovers {} | breaker opens {} | sync deltas applied {} | \
             chaos faults injected {}\n",
            self.reroutes,
            self.failovers,
            self.breaker_opens,
            self.sync_deltas_applied,
            self.chaos_faults_injected
        ));
        out.push_str(&format!(
            "chaos: drops {} | delays {} | truncates {} | resets {} | flaps {}\n",
            self.chaos.drops,
            self.chaos.delays,
            self.chaos.truncates,
            self.chaos.resets,
            self.chaos.flaps
        ));
        out.push_str(&format!(
            "client transport: connect errors {} | timeouts {} | retries {} | \
             trace violations {}\n",
            self.connect_errors, self.timeouts, self.retries, self.trace_violations
        ));
        if let Some(qps) = self.target_qps {
            out.push_str(&format!("target qps (open loop): {qps:.0}\n"));
        }
        out.push_str(&self.slo.render("slo verdicts"));
        out
    }
}

/// Reserve an ephemeral loopback port per group primary so the ring can
/// carry real dialable addresses *before* any server starts (the scatter
/// hook dials ring addresses, so placeholders would break glob plans).
/// The listeners stay bound until the moment each primary takes the port.
fn reserve_primary_ports(groups: usize) -> NetResult<Vec<(std::net::TcpListener, String)>> {
    (0..groups)
        .map(|_| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?.to_string();
            Ok((listener, addr))
        })
        .collect()
}

/// Bind a server on the exact reserved address, retrying briefly: the
/// reservation listener was just dropped, so the only contention is another
/// process landing on the port in the microseconds between.
fn start_primary_on(engine: &Arc<QueryEngine>, config: &ServerConfig) -> NetResult<HttpServer> {
    let mut last = None;
    for _ in 0..50 {
        match HttpServer::start(Arc::clone(engine), config.clone()) {
            Ok(server) => return Ok(server),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(last.unwrap_or_else(|| NetError::InvalidConfig("primary bind retry exhausted".into())))
}

/// Run `fleet_spec` end to end: a partitioned fleet (G ring groups, each a
/// primary plus peer-synced secondaries), ring-routed clients with one-hop
/// `wrong_owner` re-routing, optional chaos and mid-run kill/restart, full
/// byte-for-byte plus ownership verification, ordered teardown.
///
/// # Errors
/// Configuration, socket and serving-layer errors.  Torn reads, mis-owned
/// answers, HTTP error statuses and unanswered ops are *reported*, not
/// errors — the caller decides whether non-zero is fatal.
#[allow(clippy::too_many_lines)]
pub fn run_routed_workload(fleet_spec: &RoutedWorkloadSpec) -> NetResult<RoutedLoadReport> {
    let spec = &fleet_spec.spec;
    if spec.tenants == 0 || spec.clients == 0 || spec.ops_per_client == 0 {
        return Err(NetError::InvalidConfig(
            "a workload needs at least one tenant, one client and one op".into(),
        ));
    }
    if fleet_spec.groups == 0 || fleet_spec.replicas_per_group == 0 {
        return Err(NetError::InvalidConfig(
            "a routed fleet needs at least one group and one replica per group".into(),
        ));
    }
    if let Some(qps) = fleet_spec.target_qps {
        if !qps.is_finite() || qps <= 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "target_qps must be positive and finite, got {qps}"
            )));
        }
    }
    let config = OpaqConfig::builder()
        .run_length(spec.run_length)
        .sample_size(spec.sample_size.min(spec.run_length))
        .build()
        .map_err(opaq_serve::ServeError::from)?;

    // The ring must exist before any server starts (every server loads it),
    // and must carry real addresses (the scatter hook dials them) — so the
    // primaries' ports are reserved up front.
    let mut reserved = reserve_primary_ports(fleet_spec.groups)?;
    let ring_config = RingConfig {
        vnodes: fleet_spec.vnodes,
        groups: reserved
            .iter()
            .enumerate()
            .map(|(g, (_, addr))| GroupConfig {
                name: format!("group-{g}"),
                addrs: vec![addr.clone()],
            })
            .collect(),
    };
    let ring = Arc::new(HashRing::new(ring_config)?);

    let stats = ReplicationStats::new();
    let registry: Registry = Arc::new(RwLock::new(HashMap::new()));
    let catalogs: Vec<Arc<SketchCatalog>> = (0..fleet_spec.groups)
        .map(|_| Arc::new(SketchCatalog::unbounded()))
        .collect();
    let engines: Vec<Arc<QueryEngine>> = catalogs
        .iter()
        .map(|c| {
            let engine = Arc::new(QueryEngine::new(Arc::clone(c)));
            engine.set_slo_threshold(fleet_spec.slo.p99);
            engine
        })
        .collect();

    let ids: Vec<(TenantId, DatasetId)> = (0..spec.tenants)
        .map(|i| {
            (
                TenantId::new(format!("tenant-{i}")),
                DatasetId::new("events"),
            )
        })
        .collect();
    let owners: Vec<usize> = ids
        .iter()
        .map(|(tenant, _)| ring.owner_index(tenant.as_str()))
        .collect();

    // Seed version 1 of every tenant into its *owning* group only —
    // ring-scoped ingest.  `chunk_spec` derives tenant data purely from
    // `(seed, tenant_idx, round)`, so an unpartitioned oracle catalog would
    // hold exactly these bytes, which is what makes the plan replay below a
    // true single-catalog oracle.
    let mut incrementals = Vec::with_capacity(spec.tenants);
    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
        let mut inc = IncrementalOpaq::new(config).map_err(opaq_serve::ServeError::from)?;
        inc.add_run(chunk_spec(spec, tenant_idx, 0, spec.keys_per_tenant).generate())
            .map_err(opaq_serve::ServeError::from)?;
        let sketch = inc.sketch().expect("just added a run").clone();
        registry
            .write()
            .insert((tenant.to_string(), 1), Arc::new(sketch.clone()));
        catalogs[owners[tenant_idx]].publish(tenant, dataset, sketch)?;
        incrementals.push(inc);
    }

    // Worker sizing: every client fleet holds a keep-alive connection per
    // replica, peer coordinators open transient scatter connections, and
    // each group's secondaries poll their primary.
    let mut server_config = fleet_spec.server.clone();
    server_config.workers = server_config
        .workers
        .max(spec.clients * 2 + fleet_spec.replicas_per_group + 4);

    // Per-group server configs: ring membership baked in, ephemeral bind
    // for secondaries (the primary overrides `addr` with its reserved one).
    let mut group_configs = Vec::with_capacity(fleet_spec.groups);
    for group in ring.groups() {
        let membership = RingMembership::new((*ring).clone(), &group.name)?;
        let mut cfg = server_config.clone();
        cfg.addr = "127.0.0.1:0".into();
        cfg.ring = Some(Arc::new(membership));
        cfg.replication = Some(Arc::clone(&stats));
        group_configs.push(cfg);
    }

    // Primaries take their reserved ports (reservation dropped just before
    // the bind), then each group's secondaries bootstrap off them.
    let mut primaries = Vec::with_capacity(fleet_spec.groups);
    for g in 0..fleet_spec.groups {
        let (listener, addr) = reserved.remove(0);
        drop(listener);
        let mut cfg = group_configs[g].clone();
        cfg.addr = addr;
        primaries.push(start_primary_on(&engines[g], &cfg)?);
    }
    let primary_addrs: Vec<String> = primaries
        .iter()
        .map(|p| p.local_addr().to_string())
        .collect();

    let mut secondaries: Vec<Vec<_>> = Vec::with_capacity(fleet_spec.groups);
    let mut serving_addrs: Vec<Vec<String>> = Vec::with_capacity(fleet_spec.groups);
    for g in 0..fleet_spec.groups {
        let mut group_secondaries = Vec::new();
        let mut group_serving = Vec::new();
        for _ in 1..fleet_spec.replicas_per_group {
            let (runtime, addr) = start_secondary(
                &primary_addrs[g],
                &group_configs[g],
                fleet_spec.poll,
                &stats,
            )?;
            group_secondaries.push(runtime);
            group_serving.push(addr);
        }
        // The first secondary leads the routing order, so sticky clients
        // prefer the replica the monkey will kill (group 0); the primary
        // anchors the tail as the always-up fallback.
        group_serving.push(primary_addrs[g].clone());
        secondaries.push(group_secondaries);
        serving_addrs.push(group_serving);
    }

    let kill_restart = fleet_spec.kill_restart && fleet_spec.replicas_per_group >= 2;
    let use_proxy = fleet_spec.chaos.is_some() || kill_restart;
    let chaos_config = fleet_spec.chaos.clone().unwrap_or(ChaosConfig {
        fault_rate: 0.0,
        ..ChaosConfig::default()
    });
    let mut proxies: Vec<Vec<ChaosProxy>> = Vec::with_capacity(fleet_spec.groups);
    let mut client_addrs: Vec<Vec<String>> = Vec::with_capacity(fleet_spec.groups);
    for (g, group_serving) in serving_addrs.iter().enumerate() {
        let mut group_proxies = Vec::new();
        let mut group_clients = Vec::with_capacity(group_serving.len());
        if use_proxy {
            for (i, upstream) in group_serving.iter().enumerate() {
                let proxy = ChaosProxy::start(
                    upstream.clone(),
                    ChaosConfig {
                        seed: chaos_config
                            .seed
                            .wrapping_add(0x9e37 * ((g * 64 + i) as u64 + 1)),
                        ..chaos_config.clone()
                    },
                    Some(Arc::clone(&stats)),
                )?;
                group_clients.push(proxy.local_addr().to_string());
                group_proxies.push(proxy);
            }
        } else {
            group_clients.clone_from(group_serving);
        }
        proxies.push(group_proxies);
        client_addrs.push(group_clients);
    }

    let misroute_every = if fleet_spec.groups >= 2 {
        fleet_spec.misroute_every
    } else {
        0
    };
    let total_ops = spec.ops_per_client * spec.clients as u64;
    let ops_done = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let torn = AtomicU64::new(0);
    let mis_owned = AtomicU64::new(0);
    let http_errors = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let unanswered = AtomicU64::new(0);
    let plan_ops = AtomicU64::new(0);
    let plan_verified = AtomicU64::new(0);
    let plan_torn = AtomicU64::new(0);
    let plan_unanswered = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let connect_errors = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let trace_violations = AtomicU64::new(0);
    let kills = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let group_op_counts: Vec<AtomicU64> =
        (0..fleet_spec.groups).map(|_| AtomicU64::new(0)).collect();
    let stop_monkey = AtomicBool::new(false);
    let latency = LatencyHistogram::new();
    let client_phase_nanos = AtomicU64::new(0);
    let start = Instant::now();

    // Offline-replay target for plan ops: every main tenant, sorted key
    // order — exactly what an unpartitioned catalog would report.
    let mut expected_sources: Vec<(String, String)> = ids
        .iter()
        .map(|(t, d)| (t.to_string(), d.to_string()))
        .collect();
    expected_sources.sort();
    let expected_sources = &expected_sources;

    let victim = kill_restart.then(|| secondaries[0].remove(0));

    let run_result = std::thread::scope(|scope| -> NetResult<()> {
        // Background refresher: new versions land on each tenant's *owning*
        // group (registered first); that group's secondaries catch up via
        // their pollers.
        let refresher = {
            let catalogs = &catalogs;
            let owners = &owners;
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let refreshes = &refreshes;
            scope.spawn(move || -> NetResult<()> {
                for round in 1..=spec.refresh_rounds {
                    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
                        let chunk =
                            chunk_spec(spec, tenant_idx, round, (spec.keys_per_tenant / 4).max(1))
                                .generate();
                        let inc = &mut incrementals[tenant_idx];
                        inc.add_run(chunk).map_err(opaq_serve::ServeError::from)?;
                        let sketch = inc.sketch().expect("non-empty").clone();
                        registry
                            .write()
                            .insert((tenant.to_string(), round + 1), Arc::new(sketch.clone()));
                        catalogs[owners[tenant_idx]].publish(tenant, dataset, sketch)?;
                        refreshes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                Ok(())
            })
        };

        // Chaos monkey: kill group 0's preferred secondary at ~25% of the
        // run, restart it (fresh port, fresh bootstrap, proxy repoint) at
        // ~50%.  Progress-based triggers, so "mid-run" holds at any speed.
        let monkey = victim.map(|mut victim| {
            let stats = Arc::clone(&stats);
            let primary_addr = primary_addrs[0].clone();
            let group_config = group_configs[0].clone();
            let poll = fleet_spec.poll;
            let victim_proxy = proxies[0].first();
            let (ops_done, stop_monkey) = (&ops_done, &stop_monkey);
            let (kills, restarts) = (&kills, &restarts);
            scope.spawn(move || -> NetResult<()> {
                if !wait_for_progress(ops_done, total_ops / 4, stop_monkey) {
                    victim.shutdown();
                    return Ok(());
                }
                victim.shutdown();
                kills.fetch_add(1, Ordering::Relaxed);
                let _ = wait_for_progress(ops_done, total_ops / 2, stop_monkey);
                // Bring the replica back even if the clients finished during
                // the outage: recovery is part of what the run verifies.
                let mut attempts = 0u32;
                let mut replacement = loop {
                    match start_secondary(&primary_addr, &group_config, poll, &stats) {
                        Ok((runtime, addr)) => break (runtime, addr),
                        Err(e) => {
                            attempts += 1;
                            if attempts > 100 {
                                return Err(e);
                            }
                            if !sleep_sliced(Duration::from_millis(20), stop_monkey) {
                                return Ok(());
                            }
                        }
                    }
                };
                if let Some(proxy) = victim_proxy {
                    proxy.set_upstream(replacement.1.clone());
                }
                restarts.fetch_add(1, Ordering::Relaxed);
                while !stop_monkey.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                replacement.0.shutdown();
                Ok(())
            })
        });

        // Open-loop rate control: same scheme as the flat HTTP harness —
        // the aggregate rate divides across clients, start times stagger
        // across one interval, latency is measured from the schedule.
        let interval = fleet_spec
            .target_qps
            .map(|qps| Duration::from_secs_f64(spec.clients as f64 / qps));
        let mut clients = Vec::with_capacity(spec.clients);
        for client_idx in 0..spec.clients {
            let ring = Arc::clone(&ring);
            let client_addrs = &client_addrs;
            let replica_config = fleet_spec.replica.clone();
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let owners = &owners;
            let ops_done = &ops_done;
            let group_op_counts = &group_op_counts;
            let (verified, torn, mis_owned) = (&verified, &torn, &mis_owned);
            let (http_errors, sheds, degraded, unanswered) =
                (&http_errors, &sheds, &degraded, &unanswered);
            let (plan_ops, plan_verified, plan_torn, plan_unanswered) =
                (&plan_ops, &plan_verified, &plan_torn, &plan_unanswered);
            let (connect_errors, timeouts, retries) = (&connect_errors, &timeouts, &retries);
            let trace_violations = &trace_violations;
            let latency = &latency;
            clients.push(scope.spawn(move || -> NetResult<()> {
                let mut fleet = RoutedFleet::new(ring, client_addrs, &replica_config)?
                    .with_stats(Arc::clone(&stats));
                let mut rng = spec
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(client_idx as u64 + 1));
                let stagger = interval
                    .map(|iv| iv.mul_f64(client_idx as f64 / spec.clients as f64))
                    .unwrap_or(Duration::ZERO);
                let mut body = || -> NetResult<()> {
                    for op_idx in 0..spec.ops_per_client {
                        let sent = match interval {
                            Some(iv) => {
                                let scheduled = start + stagger + iv.mul_f64(op_idx as f64);
                                if let Some(wait) = scheduled.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                                scheduled
                            }
                            None => Instant::now(),
                        };
                        fleet.maybe_probe();
                        let stamped = TraceId::mint();
                        fleet.set_trace_id(Some(stamped));
                        // Every fifth op is a glob coalesce plan through a
                        // rotating coordinator group; the rest are routed
                        // single-tenant GETs.
                        if op_idx % 5 == 4 {
                            let (plan, request) = plan_for(&mut rng);
                            let mut plan_body = String::from("{\"plan\":");
                            write_escaped(&mut plan_body, &plan);
                            plan_body.push('}');
                            plan_ops.fetch_add(1, Ordering::Relaxed);
                            match fleet.post_plan(&plan_body) {
                                Ok(answer) => {
                                    latency.record(sent.elapsed());
                                    if !trace_ok(&answer.response, Some(stamped)) {
                                        trace_violations.fetch_add(1, Ordering::Relaxed);
                                    }
                                    match verify_plan(
                                        &request,
                                        &answer.response,
                                        &registry,
                                        expected_sources,
                                    ) {
                                        PlanVerdict::Verified => {
                                            plan_verified.fetch_add(1, Ordering::Relaxed);
                                        }
                                        PlanVerdict::Torn => {
                                            plan_torn.fetch_add(1, Ordering::Relaxed);
                                        }
                                        PlanVerdict::Shed => {
                                            sheds.fetch_add(1, Ordering::Relaxed);
                                        }
                                        PlanVerdict::HttpError => {
                                            http_errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Err(_) => {
                                    // Plan POSTs are single-attempt by design;
                                    // a chaos fault mid-flight is an honest
                                    // "no answer", never silently replayed.
                                    plan_unanswered.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            ops_done.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        let tenant_idx = (next_rand(&mut rng) % spec.tenants as u64) as usize;
                        let (tenant, dataset) = &ids[tenant_idx];
                        let owner_idx = owners[tenant_idx];
                        let owner_name = fleet.ring().groups()[owner_idx].name.clone();
                        group_op_counts[owner_idx].fetch_add(1, Ordering::Relaxed);
                        let request = get_request_for(&mut rng);
                        let (target, post) = wire_form(tenant.as_str(), dataset.as_str(), &request);
                        debug_assert!(post.is_none(), "routed mix must be GET-only");
                        // The deliberate misroute exercises the organic
                        // wrong_owner → one-hop re-route arc end to end.
                        let misroute =
                            misroute_every > 0 && op_idx % misroute_every == misroute_every - 1;
                        let outcome = if misroute {
                            fleet.get_misrouted(tenant.as_str(), &target)
                        } else {
                            fleet.get(tenant.as_str(), &target)
                        };
                        match outcome {
                            Ok(answer) => {
                                latency.record(sent.elapsed());
                                if answer.degraded {
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                                if !trace_ok(&answer.response, Some(stamped)) {
                                    trace_violations.fetch_add(1, Ordering::Relaxed);
                                }
                                // Ownership gate: a 200 must be stamped by the
                                // ring's owner — anything else is a mis-owned
                                // answer, the partitioning equivalent of torn.
                                if answer.response.status == 200
                                    && answer.response.header(OWNER_HEADER)
                                        != Some(owner_name.as_str())
                                {
                                    mis_owned.fetch_add(1, Ordering::Relaxed);
                                }
                                match verify(tenant.as_str(), &request, &answer.response, &registry)
                                {
                                    Verdict::Verified { .. } => {
                                        verified.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::Torn => {
                                        torn.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::Shed => {
                                        sheds.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Verdict::HttpError => {
                                        http_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(_) => {
                                unanswered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        ops_done.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                };
                let result = body();
                let client_stats = fleet.client_stats();
                connect_errors.fetch_add(client_stats.connect_errors, Ordering::Relaxed);
                timeouts.fetch_add(client_stats.timeouts, Ordering::Relaxed);
                retries.fetch_add(client_stats.retries, Ordering::Relaxed);
                result
            }));
        }

        fn note(
            first_error: &mut Option<NetError>,
            joined: std::thread::Result<NetResult<()>>,
            who: &str,
        ) {
            let outcome = match joined {
                Ok(Ok(())) => return,
                Ok(Err(e)) => e,
                Err(_) => NetError::Protocol(format!("{who} thread panicked")),
            };
            if first_error.is_none() {
                *first_error = Some(outcome);
            }
        }
        let mut first_error: Option<NetError> = None;
        for client in clients {
            note(&mut first_error, client.join(), "client");
        }
        client_phase_nanos.store(
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        // Give the monkey a grace window to finish a restart that straddles
        // the end of the client phase, then stop everything.
        if monkey.is_some() && first_error.is_none() {
            let deadline = Instant::now() + Duration::from_secs(5);
            while kills.load(Ordering::Relaxed) > restarts.load(Ordering::Relaxed)
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        stop_monkey.store(true, Ordering::Release);
        if let Some(monkey) = monkey {
            note(&mut first_error, monkey.join(), "chaos monkey");
        }
        note(&mut first_error, refresher.join(), "refresher");
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    let wall = Duration::from_nanos(client_phase_nanos.load(Ordering::Relaxed));

    // Teardown order: secondaries first (their pollers dial the primaries),
    // then the proxies, then the primaries.
    for mut group in secondaries {
        for secondary in &mut group {
            secondary.shutdown();
        }
    }
    let mut chaos_totals = ChaosCounters::default();
    for group in proxies {
        for proxy in group {
            let c = proxy.counters();
            chaos_totals.drops += c.drops;
            chaos_totals.delays += c.delays;
            chaos_totals.truncates += c.truncates;
            chaos_totals.resets += c.resets;
            chaos_totals.flaps += c.flaps;
            proxy.shutdown();
        }
    }
    for mut primary in primaries {
        primary.shutdown();
    }
    run_result?;

    let shares = ring
        .groups()
        .iter()
        .enumerate()
        .map(|(g, group)| GroupShare {
            group: group.name.clone(),
            tenants: owners.iter().filter(|&&o| o == g).count() as u64,
            ops: group_op_counts[g].load(Ordering::Relaxed),
        })
        .collect();

    let mut report = RoutedLoadReport {
        groups: fleet_spec.groups,
        replicas_per_group: fleet_spec.replicas_per_group,
        ops: verified.load(Ordering::Relaxed)
            + torn.load(Ordering::Relaxed)
            + http_errors.load(Ordering::Relaxed)
            + sheds.load(Ordering::Relaxed),
        verified: verified.load(Ordering::Relaxed),
        torn_reads: torn.load(Ordering::Relaxed) + plan_torn.load(Ordering::Relaxed),
        mis_owned: mis_owned.load(Ordering::Relaxed),
        plan_ops: plan_ops.load(Ordering::Relaxed),
        plan_verified: plan_verified.load(Ordering::Relaxed),
        plan_unanswered: plan_unanswered.load(Ordering::Relaxed),
        http_errors: http_errors.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        unanswered: unanswered.load(Ordering::Relaxed),
        refreshes_published: refreshes.load(Ordering::Relaxed),
        reroutes: stats.reroutes(),
        failovers: stats.failovers(),
        breaker_opens: stats.breaker_opens(),
        sync_deltas_applied: stats.sync_deltas_applied(),
        chaos_faults_injected: stats.chaos_faults_injected(),
        chaos: chaos_totals,
        connect_errors: connect_errors.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        trace_violations: trace_violations.load(Ordering::Relaxed),
        kills: kills.load(Ordering::Relaxed),
        restarts: restarts.load(Ordering::Relaxed),
        shares,
        wall,
        latency: latency.snapshot(),
        target_qps: fleet_spec.target_qps,
        slo: SloOutcome::default(),
    };
    report.slo = fleet_spec
        .slo
        .evaluate(&report.latency, report.error_rate(), report.shed_rate());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ring(names: &[&str]) -> Arc<HashRing> {
        Arc::new(
            HashRing::new(RingConfig::new(
                names
                    .iter()
                    .map(|n| GroupConfig {
                        name: (*n).to_string(),
                        addrs: vec!["127.0.0.1:1".into()],
                    })
                    .collect(),
            ))
            .unwrap(),
        )
    }

    #[test]
    fn wrong_owner_bodies_parse() {
        let body = br#"{"error":{"code":"wrong_owner","message":"nope","owner":{"group":"group-1","addrs":["127.0.0.1:9"]}}}"#;
        let response = ClientResponse {
            status: 421,
            headers: Vec::new(),
            body: body.to_vec(),
        };
        assert_eq!(wrong_owner_group(&response).as_deref(), Some("group-1"));
        let ok = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: body.to_vec(),
        };
        assert_eq!(wrong_owner_group(&ok), None, "status gates the parse");
        let other = ClientResponse {
            status: 421,
            headers: Vec::new(),
            body: br#"{"error":{"code":"not_found","message":"x"}}"#.to_vec(),
        };
        assert_eq!(wrong_owner_group(&other), None, "code gates the parse");
    }

    #[test]
    fn fleet_rejects_mismatched_address_groups() {
        let ring = make_ring(&["a", "b"]);
        let err = RoutedFleet::new(
            ring,
            &[vec!["127.0.0.1:1".into()]],
            &ReplicaConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn fleet_routes_by_ring_owner() {
        let ring = make_ring(&["a", "b", "c"]);
        let fleet = RoutedFleet::from_ring(Arc::clone(&ring), &ReplicaConfig::default()).unwrap();
        for i in 0..100 {
            let tenant = format!("tenant-{i}");
            assert_eq!(fleet.owner_index(&tenant), ring.owner_index(&tenant));
        }
    }

    #[test]
    fn spec_validation_rejects_zeroes() {
        let zero_groups = RoutedWorkloadSpec {
            groups: 0,
            ..Default::default()
        };
        assert!(run_routed_workload(&zero_groups).is_err());
        let zero_replicas = RoutedWorkloadSpec {
            replicas_per_group: 0,
            ..Default::default()
        };
        assert!(run_routed_workload(&zero_replicas).is_err());
        let bad_qps = RoutedWorkloadSpec {
            target_qps: Some(0.0),
            ..Default::default()
        };
        assert!(run_routed_workload(&bad_qps).is_err());
    }
}
