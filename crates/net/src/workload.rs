//! The HTTP twin of `opaq_serve::run_workload`: replay a mixed read/refresh
//! workload over real TCP and verify every response **byte-for-byte**.
//!
//! Verification discipline (same as the in-process harness, now across the
//! wire): before a version is published, the refresher registers an
//! independent clone of that version's sketch keyed `(tenant, version)`.
//! Every HTTP response names the version that answered it in the
//! `x-opaq-version` header, so the client re-executes the request against
//! the registered sketch, re-renders the canonical JSON body through the
//! *same* renderer the server uses, and compares bytes.  Any response that
//! is not exactly the serialization of one complete published version — a
//! torn sketch, an invented version, a half-flushed body — counts as torn.
//!
//! On top of that, an optional **TTL probe tenant** gets a short `max_age`
//! and a refresh hook into a real `RefreshPool`: a dedicated watcher client
//! polls it over HTTP and records the freshness transitions — `fresh` until
//! expiry, then `stale`/`refreshing` (old version still served, byte-exact)
//! until the background re-ingest publishes, then `fresh` again at the next
//! version.
//!
//! Every fifth client op is a **plan op**: a `POST /v1/query` pipeline
//! (`fetch tenant-*/events | coalesce | …`) that fans out over every main
//! tenant.  The response embeds the full `(tenant, dataset, version,
//! freshness)` provenance, so the client replays the plan offline — looks
//! up each claimed version's registered sketch, fuses them with the same
//! deterministic merge tree, re-runs the extract, re-renders through the
//! server's renderer — and compares bytes.  A plan answer that names a
//! version the refresher never registered, skips a tenant, or differs by
//! one byte from the offline replay counts as torn.

use crate::client::HttpClient;
use crate::json::{write_escaped, Json};
use crate::server::{
    render_plan_response_json, render_response_json, HttpServer, ServerConfig, ServerStats,
    FRESHNESS_HEADER, SOURCES_HEADER, TRACE_HEADER, VERSION_HEADER,
};
use crate::{NetError, NetResult};
use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_metrics::trace::format_nanos;
use opaq_metrics::{
    render_latency_table, LatencyHistogram, LatencySnapshot, SloOutcome, SloThresholds, TraceId,
};
use opaq_query::{merge_tree, PlanResponse, PlanSource};
use opaq_serve::{
    chunk_spec, execute_on, next_rand, request_for, CatalogStats, DatasetId, Freshness,
    QueryEngine, QueryRequest, QueryResponse, RefreshPool, SketchCatalog, TenantId, WorkloadSpec,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one HTTP serving workload.
#[derive(Debug, Clone)]
pub struct HttpWorkloadSpec {
    /// Tenant/client/op counts and sketch parameters (shared with the
    /// in-process harness; its `budget_sample_points`/`spill_dir` are
    /// ignored here — eviction churn is the in-process suite's job).
    pub spec: WorkloadSpec,
    /// TTL applied to the dedicated probe tenant; `None` disables the
    /// staleness leg of the workload.
    pub ttl: Option<Duration>,
    /// Server tuning (workers, keep-alive, limits).
    pub server: ServerConfig,
    /// `Some(qps)` switches the clients from closed-loop to **open-loop**
    /// rate control: ops get fixed scheduled send times at this aggregate
    /// rate and latency is measured from the *schedule*, so server queueing
    /// delay shows up in the distribution instead of silently throttling the
    /// offered load (coordinated-omission-safe).  `None` is the classic
    /// closed-loop as-fast-as-possible mode.
    pub target_qps: Option<f64>,
    /// Declared objectives; evaluated against the client-observed latency
    /// distribution and error/shed rates into [`HttpLoadReport::slo`].
    pub slo: SloThresholds,
}

impl Default for HttpWorkloadSpec {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec::default(),
            ttl: Some(Duration::from_millis(200)),
            server: ServerConfig::default(),
            target_qps: None,
            slo: SloThresholds::default(),
        }
    }
}

impl HttpWorkloadSpec {
    /// A small configuration for CI smoke runs.
    pub fn quick() -> Self {
        Self {
            spec: WorkloadSpec::quick(),
            ttl: Some(Duration::from_millis(100)),
            server: ServerConfig::default(),
            target_qps: None,
            slo: SloThresholds::default(),
        }
    }
}

/// What an HTTP workload observed.
#[derive(Debug, Clone)]
pub struct HttpLoadReport {
    /// Single-target requests issued by the client threads (each ends up
    /// verified, torn, or an HTTP error; plan ops are counted in
    /// [`Self::plan_ops`] and TTL-probe traffic in [`Self::probe_polls`]).
    pub ops: u64,
    /// Client responses verified byte-for-byte against their claimed
    /// version.
    pub verified: u64,
    /// `POST /v1/query` plans issued by the client threads.
    pub plan_ops: u64,
    /// Plan responses whose offline replay (registered sketches of every
    /// claimed version, fused and re-rendered) matched byte-for-byte.
    pub plan_verified: u64,
    /// Responses (client or probe) that matched no complete published
    /// version (must be 0).
    pub torn_reads: u64,
    /// Non-200, non-503 responses observed (client or probe; must be 0).
    pub http_errors: u64,
    /// Responses shed with 503 because the server's accept queue was full
    /// (client, plan or probe).  Expected 0 below capacity; under open-loop
    /// overload this is the server protecting itself, reported apart from
    /// real errors.
    pub sheds: u64,
    /// Verified polls issued by the TTL watcher, including during the
    /// post-client grace window.
    pub probe_polls: u64,
    /// Versions published by the background refresher while clients ran.
    pub refreshes_published: u64,
    /// TTL probe: responses served past their `max_age` (`stale` or
    /// `refreshing`).
    pub non_fresh_served: u64,
    /// TTL probe: version bumps that followed an observed expiry — i.e.
    /// complete expiry→refresh→publish cycles seen over the wire.
    pub ttl_refreshes_observed: u64,
    /// Connection-establishment failures across all client connections —
    /// kept apart from [`Self::http_errors`] (a response with an error
    /// status) so a chaos run's transport damage is diagnosable.
    pub connect_errors: u64,
    /// Requests that died to a read/connect deadline, across all clients.
    pub timeouts: u64,
    /// Responses missing `x-opaq-trace-id`, or echoing a different id than
    /// the one the client stamped on the request (must be 0 — *every*
    /// response, including sheds and errors, carries the trace header).
    pub trace_violations: u64,
    /// Transparent reconnect-and-retry attempts across all clients (benign
    /// keep-alive rollovers included).
    pub retries: u64,
    /// Wall-clock time of the client phase.
    pub wall: Duration,
    /// Client-observed (over-the-wire) latency distribution.
    pub latency: LatencySnapshot,
    /// Catalog counters at the end of the run.
    pub catalog: CatalogStats,
    /// HTTP server counters at the end of the run.
    pub server: ServerStats,
    /// The offered rate the clients held, when run open-loop.
    pub target_qps: Option<f64>,
    /// Verdicts for the declared objectives (empty when none declared).
    pub slo: SloOutcome,
    /// The server's slowest requests (trace id, duration, provenance),
    /// pre-rendered from its slow log; empty when nothing was recorded.
    pub slow_log: String,
}

impl HttpLoadReport {
    /// Client requests per second (single-target and plan ops) over the
    /// client phase.
    pub fn throughput(&self) -> f64 {
        (self.ops + self.plan_ops) as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Client-issued requests: the denominator for the error/shed rates.
    fn attempts(&self) -> f64 {
        ((self.ops + self.plan_ops) as f64).max(1.0)
    }

    /// Fraction of requests answered with a non-200, non-503 status.
    /// (Probe errors count in the numerator; probe traffic is tiny and must
    /// be error-free in any passing run.)
    pub fn error_rate(&self) -> f64 {
        self.http_errors as f64 / self.attempts()
    }

    /// Fraction of requests shed with 503.
    pub fn shed_rate(&self) -> f64 {
        self.sheds as f64 / self.attempts()
    }

    /// Render the report as text.
    pub fn render(&self) -> String {
        let mut out = render_latency_table(
            "http client-observed latency",
            &[("all".to_string(), self.latency)],
        );
        out.push_str(&format!(
            "ops {} | verified {} | plan ops {} | plan verified {} | torn {} | \
             http errors {} | sheds {} | refreshes {} | probe polls {} | non-fresh {} | \
             ttl refreshes observed {} | {:.0} ops/s\n",
            self.ops,
            self.verified,
            self.plan_ops,
            self.plan_verified,
            self.torn_reads,
            self.http_errors,
            self.sheds,
            self.refreshes_published,
            self.probe_polls,
            self.non_fresh_served,
            self.ttl_refreshes_observed,
            self.throughput()
        ));
        out.push_str(&format!(
            "connect errors {} | timeouts {} | retries {} | trace violations {}\n",
            self.connect_errors, self.timeouts, self.retries, self.trace_violations
        ));
        if let Some(qps) = self.target_qps {
            out.push_str(&format!("target qps (open loop): {qps:.0}\n"));
        }
        out.push_str(&self.slo.render("slo verdicts"));
        out.push_str(&self.slow_log);
        out
    }
}

/// `(tenant-name, version) -> the complete sketch of that version`,
/// registered *before* the catalog publish.  Shared with the replica
/// failover harness ([`crate::failover`]).
pub(crate) type Registry = Arc<RwLock<HashMap<(String, u64), Arc<QuantileSketch<u64>>>>>;

/// Map a typed request to its HTTP form: `(target, optional JSON body)`.
pub(crate) fn wire_form(
    tenant: &str,
    dataset: &str,
    request: &QueryRequest,
) -> (String, Option<String>) {
    match request {
        QueryRequest::Quantile { phi } => {
            (format!("/v1/{tenant}/{dataset}/quantile?phi={phi}"), None)
        }
        QueryRequest::Rank { key } => (format!("/v1/{tenant}/{dataset}/rank?key={key}"), None),
        QueryRequest::Profile { count } => (
            format!("/v1/{tenant}/{dataset}/profile?count={count}"),
            None,
        ),
        QueryRequest::QuantileBatch { phis } => {
            let mut body = String::from("{\"phis\":[");
            for (i, phi) in phis.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{phi}"));
            }
            body.push_str("]}");
            (format!("/v1/{tenant}/{dataset}/quantile_batch"), Some(body))
        }
    }
}

pub(crate) enum Verdict {
    Verified {
        version: u64,
        freshness: Freshness,
    },
    Torn,
    /// 503: the server's bounded queue shed the connection.  Load
    /// protection, not corruption — tracked apart from real errors.
    Shed,
    HttpError,
}

/// Plan responses verify against their full claimed provenance, not a
/// single `(version, freshness)` pair, so their verdict carries no handle.
pub(crate) enum PlanVerdict {
    Verified,
    Torn,
    Shed,
    HttpError,
}

/// Re-render the expected body from the registered sketch of the claimed
/// version and compare bytes.
pub(crate) fn verify(
    tenant: &str,
    request: &QueryRequest,
    response: &crate::client::ClientResponse,
    registry: &Registry,
) -> Verdict {
    if response.status == 503 {
        return Verdict::Shed;
    }
    if response.status != 200 {
        return Verdict::HttpError;
    }
    let Some(version) = response
        .header(VERSION_HEADER)
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return Verdict::Torn;
    };
    let Some(freshness) = response.header(FRESHNESS_HEADER).and_then(Freshness::parse) else {
        return Verdict::Torn;
    };
    let Some(sketch) = registry.read().get(&(tenant.to_string(), version)).cloned() else {
        return Verdict::Torn; // a version the refresher never registered
    };
    let Ok(output) = execute_on(&sketch, request) else {
        return Verdict::Torn;
    };
    let expected = render_response_json(&QueryResponse {
        output,
        version,
        total_elements: sketch.total_elements(),
        freshness,
    });
    if expected.as_bytes() == response.body.as_slice() {
        Verdict::Verified { version, freshness }
    } else {
        Verdict::Torn
    }
}

/// `true` iff the response carries a well-formed `x-opaq-trace-id` — and,
/// when the client stamped one on the request, the server echoed that exact
/// id back rather than minting its own.
pub(crate) fn trace_ok(response: &crate::client::ClientResponse, sent: Option<TraceId>) -> bool {
    match (response.header(TRACE_HEADER).and_then(TraceId::parse), sent) {
        (Some(echoed), Some(stamped)) => echoed == stamped,
        (Some(_), None) => true,
        (None, _) => false,
    }
}

/// Pick a coalescing pipeline over every main tenant: the plan text to POST
/// plus the typed extract the offline replay re-runs.
pub(crate) fn plan_for(rng: &mut u64) -> (String, QueryRequest) {
    let (extract, request) = match next_rand(rng) % 4 {
        0 => (
            "quantile 0.5".to_string(),
            QueryRequest::Quantile { phi: 0.5 },
        ),
        1 => (
            "quantile 0.25,0.5,0.75".to_string(),
            QueryRequest::QuantileBatch {
                phis: vec![0.25, 0.5, 0.75],
            },
        ),
        2 => {
            let key = next_rand(rng) % (1 << 24);
            (format!("rank {key}"), QueryRequest::Rank { key })
        }
        _ => ("profile 8".to_string(), QueryRequest::Profile { count: 8 }),
    };
    // `tenant-*` matches every main tenant and not `ttl-probe`, so the
    // expected source set is exactly the workload's tenant list.
    (
        format!("fetch tenant-*/events | coalesce | {extract}"),
        request,
    )
}

/// Replay a plan response offline and compare bytes.
///
/// The response claims its provenance — `(tenant, dataset, version,
/// freshness)` per source.  The claimed set must be exactly the expected
/// tenant set, every claimed version must have been registered before
/// publication, and fusing the registered sketches in response order with
/// the same deterministic merge tree, re-running the extract, and
/// re-rendering through [`render_plan_response_json`] must reproduce the
/// body byte-for-byte.
pub(crate) fn verify_plan(
    request: &QueryRequest,
    response: &crate::client::ClientResponse,
    registry: &Registry,
    expected: &[(String, String)],
) -> PlanVerdict {
    if response.status == 503 {
        return PlanVerdict::Shed;
    }
    if response.status != 200 {
        return PlanVerdict::HttpError;
    }
    let Ok(body) = std::str::from_utf8(&response.body) else {
        return PlanVerdict::Torn;
    };
    let Ok(parsed) = Json::parse(body) else {
        return PlanVerdict::Torn;
    };
    let Some(claimed) = parsed.get("sources").and_then(Json::as_array) else {
        return PlanVerdict::Torn;
    };
    if response
        .header(SOURCES_HEADER)
        .and_then(|v| v.parse::<usize>().ok())
        != Some(claimed.len())
    {
        return PlanVerdict::Torn;
    }
    let mut sources = Vec::with_capacity(claimed.len());
    for entry in claimed {
        let (Some(tenant), Some(dataset), Some(version), Some(freshness)) = (
            entry.get("tenant").and_then(Json::as_str),
            entry.get("dataset").and_then(Json::as_str),
            entry.get("version").and_then(Json::as_u64),
            entry
                .get("freshness")
                .and_then(Json::as_str)
                .and_then(Freshness::parse),
        ) else {
            return PlanVerdict::Torn;
        };
        sources.push(PlanSource {
            tenant: TenantId::new(tenant),
            dataset: DatasetId::new(dataset),
            version,
            freshness,
        });
    }
    // The claimed source set must be the full fan-out, in sorted key order —
    // a plan that silently skipped a tenant (or invented one) is torn.
    if sources.len() != expected.len()
        || sources
            .iter()
            .zip(expected)
            .any(|(s, (t, d))| s.tenant.as_str() != t || s.dataset.as_str() != d)
    {
        return PlanVerdict::Torn;
    }
    let mut sketches = Vec::with_capacity(sources.len());
    for source in &sources {
        let key = (source.tenant.to_string(), source.version);
        let Some(sketch) = registry.read().get(&key).cloned() else {
            return PlanVerdict::Torn; // a version the refresher never registered
        };
        sketches.push(sketch);
    }
    let Ok(fused) = merge_tree(&sketches) else {
        return PlanVerdict::Torn;
    };
    let Ok(output) = execute_on(&fused, request) else {
        return PlanVerdict::Torn;
    };
    let expected_body = render_plan_response_json(&PlanResponse {
        output,
        total_elements: fused.total_elements(),
        sources,
    });
    if expected_body.as_bytes() == response.body.as_slice() {
        PlanVerdict::Verified
    } else {
        PlanVerdict::Torn
    }
}

/// Run `spec` end to end: stand the server up on a loopback port, hammer it
/// with real HTTP clients, verify every byte, and tear everything down in
/// order (server, refresh pool, catalog).
///
/// # Errors
/// Configuration, socket and serving-layer errors.  Torn reads and HTTP
/// error statuses are *reported*, not errors — the caller decides whether
/// non-zero is fatal.
pub fn run_http_workload(http_spec: &HttpWorkloadSpec) -> NetResult<HttpLoadReport> {
    let spec = &http_spec.spec;
    if spec.tenants == 0 || spec.clients == 0 || spec.ops_per_client == 0 {
        return Err(NetError::InvalidConfig(
            "a workload needs at least one tenant, one client and one op".into(),
        ));
    }
    if let Some(qps) = http_spec.target_qps {
        if !qps.is_finite() || qps <= 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "target_qps must be positive and finite, got {qps}"
            )));
        }
    }
    let config = OpaqConfig::builder()
        .run_length(spec.run_length)
        .sample_size(spec.sample_size.min(spec.run_length))
        .build()
        .map_err(opaq_serve::ServeError::from)?;

    let catalog = Arc::new(SketchCatalog::unbounded());
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    // Arm the server-side breach counter with the declared p99 so
    // `opaq_slo_breaches` in `/metrics` tracks the same objective the
    // client-side verdicts use.
    engine.set_slo_threshold(http_spec.slo.p99);
    let registry: Registry = Arc::new(RwLock::new(HashMap::new()));

    let ids: Vec<(TenantId, DatasetId)> = (0..spec.tenants)
        .map(|i| {
            (
                TenantId::new(format!("tenant-{i}")),
                DatasetId::new("events"),
            )
        })
        .collect();

    // Initial version per tenant; the refresher keeps folding new runs in.
    let mut incrementals = Vec::with_capacity(spec.tenants);
    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
        let mut inc = IncrementalOpaq::new(config).map_err(opaq_serve::ServeError::from)?;
        inc.add_run(chunk_spec(spec, tenant_idx, 0, spec.keys_per_tenant).generate())
            .map_err(opaq_serve::ServeError::from)?;
        let sketch = inc.sketch().expect("just added a run").clone();
        registry
            .write()
            .insert((tenant.to_string(), 1), Arc::new(sketch.clone()));
        catalog.publish(tenant, dataset, sketch)?;
        incrementals.push(inc);
    }

    // The TTL probe tenant: short max_age + a refresh hook that re-ingests
    // through a real RefreshPool.  The builder registers the new version's
    // sketch *before* returning it for publication, so the watcher can
    // byte-verify across the refresh boundary.
    let pool = Arc::new(RefreshPool::new(Arc::clone(&catalog), 1)?);
    let ttl_tenant = TenantId::new("ttl-probe");
    let ttl_dataset = DatasetId::new("events");
    if let Some(ttl) = http_spec.ttl {
        let mut inc = IncrementalOpaq::new(config).map_err(opaq_serve::ServeError::from)?;
        inc.add_run(
            chunk_spec(spec, usize::MAX / 2, 0, spec.keys_per_tenant.min(20_000)).generate(),
        )
        .map_err(opaq_serve::ServeError::from)?;
        let sketch = inc.into_sketch().ok_or(opaq_serve::ServeError::Opaq(
            opaq_core::OpaqError::EmptyDataset,
        ))?;
        registry
            .write()
            .insert((ttl_tenant.to_string(), 1), Arc::new(sketch.clone()));
        catalog.publish(&ttl_tenant, &ttl_dataset, sketch)?;
        catalog.set_ttl(&ttl_tenant, &ttl_dataset, Some(ttl))?;

        let weak_pool = Arc::downgrade(&pool);
        let weak_catalog = Arc::downgrade(&catalog);
        let hook_registry = Arc::clone(&registry);
        let rounds = Arc::new(AtomicU64::new(0));
        let hook_spec = spec.clone();
        catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
            let Some(pool) = weak_pool.upgrade() else {
                return false;
            };
            let weak_catalog = weak_catalog.clone();
            let registry = Arc::clone(&hook_registry);
            let rounds = Arc::clone(&rounds);
            let hook_spec = hook_spec.clone();
            let tenant_name = tenant.to_string();
            let (tenant, dataset) = (tenant.clone(), dataset.clone());
            let (submit_tenant, submit_dataset) = (tenant.clone(), dataset.clone());
            pool.submit(&submit_tenant, &submit_dataset, move || {
                let round = rounds.fetch_add(1, Ordering::Relaxed) + 1;
                let mut inc = IncrementalOpaq::new(config)?;
                inc.add_run(
                    chunk_spec(
                        &hook_spec,
                        usize::MAX / 2,
                        round,
                        hook_spec.keys_per_tenant.min(20_000),
                    )
                    .generate(),
                )?;
                let sketch = inc.into_sketch().ok_or(opaq_serve::ServeError::Opaq(
                    opaq_core::OpaqError::EmptyDataset,
                ))?;
                // Only this pool refreshes the probe tenant, and the
                // catalog fires at most one in-flight refresh per entry, so
                // `current version + 1` is exactly what publish will assign.
                if let Some(catalog) = weak_catalog.upgrade() {
                    let version = catalog.snapshot(&tenant, &dataset)?.version + 1;
                    registry
                        .write()
                        .insert((tenant_name.clone(), version), Arc::new(sketch.clone()));
                }
                Ok(sketch)
            })
            .is_ok()
        }));
    }

    // Thread-per-connection: every client (plus the TTL watcher) holds one
    // keep-alive connection for the whole run, so the worker pool must be at
    // least that wide or late connections would starve in the accept queue.
    let mut server_config = http_spec.server.clone();
    server_config.workers = server_config.workers.max(spec.clients + 2);
    let mut server = HttpServer::start(Arc::clone(&engine), server_config)?;
    let addr = server.local_addr().to_string();

    // Offline-replay target for plan ops: the glob fans out over every main
    // tenant, and the executor reports sources in sorted key order.
    let mut expected_sources: Vec<(String, String)> = ids
        .iter()
        .map(|(t, d)| (t.to_string(), d.to_string()))
        .collect();
    expected_sources.sort();
    let expected_sources = &expected_sources;

    let torn = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let http_errors = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let plan_ops = AtomicU64::new(0);
    let plan_verified = AtomicU64::new(0);
    let plan_torn = AtomicU64::new(0);
    let plan_errors = AtomicU64::new(0);
    let plan_shed = AtomicU64::new(0);
    let probe_polls = AtomicU64::new(0);
    let probe_torn = AtomicU64::new(0);
    let probe_errors = AtomicU64::new(0);
    let probe_shed = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let non_fresh = AtomicU64::new(0);
    let ttl_bumps = AtomicU64::new(0);
    let stop_watcher = AtomicBool::new(false);
    let connect_errors = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let trace_violations = AtomicU64::new(0);
    let latency = LatencyHistogram::new();
    let client_phase_nanos = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| -> NetResult<()> {
        // Background refresher over the main tenants (in-process publishes,
        // registered first — exactly the in-process harness discipline).
        let refresher = {
            let catalog = Arc::clone(&catalog);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let refreshes = &refreshes;
            scope.spawn(move || -> NetResult<()> {
                for round in 1..=spec.refresh_rounds {
                    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
                        let chunk =
                            chunk_spec(spec, tenant_idx, round, (spec.keys_per_tenant / 4).max(1))
                                .generate();
                        let inc = &mut incrementals[tenant_idx];
                        inc.add_run(chunk).map_err(opaq_serve::ServeError::from)?;
                        let sketch = inc.sketch().expect("non-empty").clone();
                        registry
                            .write()
                            .insert((tenant.to_string(), round + 1), Arc::new(sketch.clone()));
                        catalog.publish(tenant, dataset, sketch)?;
                        refreshes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                Ok(())
            })
        };

        // TTL watcher: poll the probe tenant over HTTP, byte-verify, and
        // record the expiry→refresh→publish cycles it can see on the wire.
        let watcher = http_spec.ttl.map(|ttl| {
            let addr = addr.clone();
            let registry = Arc::clone(&registry);
            let ttl_tenant = ttl_tenant.to_string();
            let (probe_torn, probe_polls, probe_errors, probe_shed) =
                (&probe_torn, &probe_polls, &probe_errors, &probe_shed);
            let (non_fresh, ttl_bumps, stop_watcher) = (&non_fresh, &ttl_bumps, &stop_watcher);
            let (connect_errors, timeouts, retries) = (&connect_errors, &timeouts, &retries);
            let trace_violations = &trace_violations;
            scope.spawn(move || -> NetResult<()> {
                let mut client = HttpClient::new(addr);
                let request = QueryRequest::Quantile { phi: 0.5 };
                let (target, _) = wire_form(&ttl_tenant, "events", &request);
                let mut last: Option<(u64, Freshness)> = None;
                let mut expiry_seen_at: Option<u64> = None;
                let mut body = || -> NetResult<()> {
                    while !stop_watcher.load(Ordering::Acquire) {
                        let response = client.get(&target)?;
                        // The watcher never stamps a trace, so this checks
                        // the server's front-door minting path.
                        if !trace_ok(&response, None) {
                            trace_violations.fetch_add(1, Ordering::Relaxed);
                        }
                        match verify(&ttl_tenant, &request, &response, &registry) {
                            Verdict::Verified { version, freshness } => {
                                // Probe traffic is verified like everything else
                                // but tracked apart from client ops, so reported
                                // throughput stays a pure client-phase number.
                                probe_polls.fetch_add(1, Ordering::Relaxed);
                                if freshness != Freshness::Fresh {
                                    non_fresh.fetch_add(1, Ordering::Relaxed);
                                    expiry_seen_at = Some(version);
                                }
                                if let (Some(expired_version), Some((last_version, _))) =
                                    (expiry_seen_at, last)
                                {
                                    if version > last_version && version > expired_version {
                                        // A full cycle: expiry observed at the
                                        // old version, then a newer one landed.
                                        ttl_bumps.fetch_add(1, Ordering::Relaxed);
                                        expiry_seen_at = None;
                                    }
                                }
                                last = Some((version, freshness));
                            }
                            Verdict::Torn => {
                                probe_torn.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Shed => {
                                probe_shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::HttpError => {
                                probe_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        std::thread::sleep(ttl / 4);
                    }
                    Ok(())
                };
                let result = body();
                let stats = client.stats();
                connect_errors.fetch_add(stats.connect_errors, Ordering::Relaxed);
                timeouts.fetch_add(stats.timeouts, Ordering::Relaxed);
                retries.fetch_add(stats.retries, Ordering::Relaxed);
                result
            })
        });

        // Open-loop rate control: the aggregate target rate is divided
        // evenly across clients (each sends one op every `clients/qps`
        // seconds), client start times are staggered across one interval so
        // the aggregate stream is smooth, and every op's latency is measured
        // from its *scheduled* send time — an op delayed behind a slow
        // predecessor accrues that queueing delay in the recorded
        // distribution (coordinated-omission-safe).
        let interval = http_spec
            .target_qps
            .map(|qps| Duration::from_secs_f64(spec.clients as f64 / qps));
        let mut clients = Vec::with_capacity(spec.clients);
        for client_idx in 0..spec.clients {
            let addr = addr.clone();
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let (torn, verified, http_errors, shed) = (&torn, &verified, &http_errors, &shed);
            let (plan_ops, plan_verified, plan_torn, plan_errors, plan_shed) = (
                &plan_ops,
                &plan_verified,
                &plan_torn,
                &plan_errors,
                &plan_shed,
            );
            let latency = &latency;
            let (connect_errors, timeouts, retries) = (&connect_errors, &timeouts, &retries);
            let trace_violations = &trace_violations;
            clients.push(scope.spawn(move || -> NetResult<()> {
                let mut client = HttpClient::new(addr);
                let mut rng = spec
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(client_idx as u64 + 1));
                let stagger = interval
                    .map(|iv| iv.mul_f64(client_idx as f64 / spec.clients as f64))
                    .unwrap_or(Duration::ZERO);
                let mut body = || -> NetResult<()> {
                    for op_idx in 0..spec.ops_per_client {
                        // `sent` is the scheduled time in open-loop mode, the
                        // actual send time in closed-loop mode.
                        let sent = match interval {
                            Some(iv) => {
                                let scheduled = start + stagger + iv.mul_f64(op_idx as f64);
                                if let Some(wait) = scheduled.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                                scheduled
                            }
                            None => Instant::now(),
                        };
                        // Every op stamps a fresh trace id; the server must
                        // echo it back on the response — the propagation
                        // contract failover hops and sync pulls rely on.
                        let stamped = TraceId::mint();
                        client.set_trace_id(Some(stamped));
                        // Every fifth op is a coalescing pipeline over all main
                        // tenants; the rest are single-target requests.
                        if op_idx % 5 == 4 {
                            let (plan, request) = plan_for(&mut rng);
                            let mut body = String::from("{\"plan\":");
                            write_escaped(&mut body, &plan);
                            body.push('}');
                            let response = client.post_json("/v1/query", &body)?;
                            latency.record(sent.elapsed());
                            plan_ops.fetch_add(1, Ordering::Relaxed);
                            if !trace_ok(&response, Some(stamped)) {
                                trace_violations.fetch_add(1, Ordering::Relaxed);
                            }
                            match verify_plan(&request, &response, &registry, expected_sources) {
                                PlanVerdict::Verified => {
                                    plan_verified.fetch_add(1, Ordering::Relaxed);
                                }
                                PlanVerdict::Torn => {
                                    plan_torn.fetch_add(1, Ordering::Relaxed);
                                }
                                PlanVerdict::Shed => {
                                    plan_shed.fetch_add(1, Ordering::Relaxed);
                                }
                                PlanVerdict::HttpError => {
                                    plan_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            continue;
                        }
                        let tenant_idx = (next_rand(&mut rng) % spec.tenants as u64) as usize;
                        let (tenant, dataset) = &ids[tenant_idx];
                        let request = request_for(&mut rng);
                        let (target, body) = wire_form(tenant.as_str(), dataset.as_str(), &request);
                        let response = match &body {
                            Some(body) => client.post_json(&target, body)?,
                            None => client.get(&target)?,
                        };
                        latency.record(sent.elapsed());
                        if !trace_ok(&response, Some(stamped)) {
                            trace_violations.fetch_add(1, Ordering::Relaxed);
                        }
                        match verify(tenant.as_str(), &request, &response, &registry) {
                            Verdict::Verified { .. } => {
                                verified.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Torn => {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Shed => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::HttpError => {
                                http_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Ok(())
                };
                let result = body();
                let stats = client.stats();
                connect_errors.fetch_add(stats.connect_errors, Ordering::Relaxed);
                timeouts.fetch_add(stats.timeouts, Ordering::Relaxed);
                retries.fetch_add(stats.retries, Ordering::Relaxed);
                result
            }));
        }

        // Join everything defensively: the watcher loops until the stop
        // flag, so any early return (a client error) or panic propagation
        // before `stop_watcher` is set would leave `scope` blocked on it
        // forever.  Collect failures, always set the flag, then report.
        fn note(
            first_error: &mut Option<NetError>,
            joined: std::thread::Result<NetResult<()>>,
            who: &str,
        ) {
            let outcome = match joined {
                Ok(Ok(())) => return,
                Ok(Err(e)) => e,
                Err(_) => NetError::Protocol(format!("{who} thread panicked")),
            };
            if first_error.is_none() {
                *first_error = Some(outcome);
            }
        }
        let mut first_error: Option<NetError> = None;
        for client in clients {
            note(&mut first_error, client.join(), "client");
        }
        client_phase_nanos.store(
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        // The client phase may be shorter than the probe tenant's TTL; give
        // the watcher a grace window to see one complete cycle (expiry →
        // background refresh → publish → fresh again) before stopping it —
        // but only on the happy path; a failed run stops immediately.
        if first_error.is_none() {
            if let Some(ttl) = http_spec.ttl {
                let grace = (ttl * 30).max(Duration::from_secs(2));
                let deadline = Instant::now() + grace;
                while ttl_bumps.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
                    std::thread::sleep(ttl / 4);
                }
            }
        }
        stop_watcher.store(true, Ordering::Release);
        if let Some(watcher) = watcher {
            note(&mut first_error, watcher.join(), "watcher");
        }
        note(&mut first_error, refresher.join(), "refresher");
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;
    let wall = Duration::from_nanos(client_phase_nanos.load(Ordering::Relaxed));

    // Teardown order: HTTP server first (no more engine calls), then the
    // refresh pool (drains any in-flight re-ingest into the still-live
    // catalog), then the catalog goes with the last Arc.  Stats are read
    // after the drain so in-flight requests are counted.
    server.shutdown();
    let server_stats = server.stats();
    let slow_log = server
        .telemetry()
        .slow()
        .top(3)
        .into_iter()
        .map(|e| {
            format!(
                "slow: trace {} {} — {}\n",
                e.trace,
                format_nanos(e.duration_nanos),
                e.detail
            )
        })
        .collect::<String>();
    pool.shutdown();

    // Client ops only: the probe's verified polls live in `probe_polls` and
    // plan pipelines in `plan_ops`, so `ops` stays a pure single-target
    // count (`verified == ops` is the consistency gate benches assert on).
    // Torn reads and HTTP errors stay shared — they are correctness signals
    // wherever they occur.
    let mut report = HttpLoadReport {
        ops: verified.load(Ordering::Relaxed)
            + torn.load(Ordering::Relaxed)
            + http_errors.load(Ordering::Relaxed)
            + shed.load(Ordering::Relaxed),
        verified: verified.load(Ordering::Relaxed),
        plan_ops: plan_ops.load(Ordering::Relaxed),
        plan_verified: plan_verified.load(Ordering::Relaxed),
        torn_reads: torn.load(Ordering::Relaxed)
            + probe_torn.load(Ordering::Relaxed)
            + plan_torn.load(Ordering::Relaxed),
        http_errors: http_errors.load(Ordering::Relaxed)
            + probe_errors.load(Ordering::Relaxed)
            + plan_errors.load(Ordering::Relaxed),
        sheds: shed.load(Ordering::Relaxed)
            + plan_shed.load(Ordering::Relaxed)
            + probe_shed.load(Ordering::Relaxed),
        probe_polls: probe_polls.load(Ordering::Relaxed),
        refreshes_published: refreshes.load(Ordering::Relaxed),
        non_fresh_served: non_fresh.load(Ordering::Relaxed),
        ttl_refreshes_observed: ttl_bumps.load(Ordering::Relaxed),
        connect_errors: connect_errors.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        trace_violations: trace_violations.load(Ordering::Relaxed),
        wall,
        latency: latency.snapshot(),
        catalog: catalog.stats(),
        server: server_stats,
        target_qps: http_spec.target_qps,
        slo: SloOutcome::default(),
        slow_log,
    };
    report.slo = http_spec
        .slo
        .evaluate(&report.latency, report.error_rate(), report.shed_rate());
    Ok(report)
}
