//! Per-replica circuit breaker: closed → open → half-open.
//!
//! The breaker watches a sliding window of recent request outcomes.  While
//! **closed** everything is allowed; the breaker **opens** — rejecting
//! requests locally (no socket touched) for `cooldown` — on either trigger:
//! the window holds at least `min_samples` outcomes and the failure rate
//! crosses `failure_threshold` (a flaky replica), or `min_samples` failures
//! land consecutively (a dead replica, which a success-warmed window must
//! not protect from detection).  After the cooldown it becomes **half-open**: exactly one
//! probe request is let through at a time — a success closes the breaker and
//! clears the window, a failure re-opens it for another cooldown.
//!
//! What it guarantees: a dead replica costs at most `min_samples` failed
//! requests plus one probe per cooldown, and recovery is detected within one
//! cooldown of the replica coming back.  What it does *not* guarantee:
//! correctness of answers (that is the byte-for-byte verifier's job) or
//! fairness across callers — it is a per-client local view, not a shared
//! consensus on replica health.
//!
//! Time is injected (`with_clock`) so state transitions are testable under a
//! deterministic fake clock.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are being recorded.
    Closed,
    /// Requests are rejected locally until the cooldown elapses.
    Open,
    /// One probe at a time is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for metrics/logs.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for gauge exposition: 0 closed, 1 open, 2 half-open.
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

type Clock = Arc<dyn Fn() -> Instant + Send + Sync>;

/// Tunables for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding outcome window size.
    pub window: usize,
    /// Minimum outcomes in the window before the rate is judged.
    pub min_samples: usize,
    /// Failure rate in `[0, 1]` at which the breaker opens.
    pub failure_threshold: f64,
    /// How long an open breaker rejects before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// A sliding-window failure-rate circuit breaker with injectable time.
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: Clock,
    state: BreakerState,
    /// Ring buffer of recent outcomes (`true` = failure).
    outcomes: Vec<bool>,
    cursor: usize,
    filled: usize,
    /// Failures since the last success, regardless of window contents: a
    /// success-warmed window must not buy a dead replica extra failures.
    consecutive_failures: usize,
    opened_at: Option<Instant>,
    /// In half-open: is a probe currently in flight?
    probe_inflight: bool,
    opens: u64,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state)
            .field("filled", &self.filled)
            .field("opens", &self.opens)
            .finish_non_exhaustive()
    }
}

impl CircuitBreaker {
    /// A breaker reading real time.
    pub fn new(config: BreakerConfig) -> Self {
        Self::with_clock(config, Arc::new(Instant::now))
    }

    /// A breaker reading time through `clock` — deterministic tests inject a
    /// fake clock here.
    pub fn with_clock(config: BreakerConfig, clock: Clock) -> Self {
        let window = config.window.max(1);
        Self {
            config: BreakerConfig { window, ..config },
            clock,
            state: BreakerState::Closed,
            outcomes: vec![false; window],
            cursor: 0,
            filled: 0,
            consecutive_failures: 0,
            opened_at: None,
            probe_inflight: false,
            opens: 0,
        }
    }

    /// Current state, advancing open → half-open if the cooldown elapsed.
    pub fn state(&mut self) -> BreakerState {
        self.tick();
        self.state
    }

    /// How many times this breaker has transitioned into `Open`.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// May a request be sent now?  In half-open this *claims* the single
    /// probe slot — the caller must follow up with
    /// [`Self::record_success`] or [`Self::record_failure`].
    pub fn allow(&mut self) -> bool {
        self.tick();
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    false
                } else {
                    self.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Record a successful outcome.
    pub fn record_success(&mut self) {
        self.tick();
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                self.push_outcome(false);
            }
            BreakerState::HalfOpen => {
                // Probe succeeded: the replica is back. Start from a clean
                // window so one stale failure cannot immediately re-open.
                self.reset_window();
                self.state = BreakerState::Closed;
                self.probe_inflight = false;
                self.opened_at = None;
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed outcome.
    pub fn record_failure(&mut self) {
        self.tick();
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                self.push_outcome(true);
                // Either trigger opens: the windowed failure rate (flaky
                // replica), or min_samples consecutive failures (dead
                // replica behind a success-filled window) — the latter is
                // what makes the "at most min_samples failures" guarantee
                // hold regardless of history.
                if self.consecutive_failures >= self.config.min_samples.max(1) || self.should_open()
                {
                    self.open_now();
                }
            }
            BreakerState::HalfOpen => {
                // Probe failed: back to a full cooldown.
                self.open_now();
            }
            BreakerState::Open => {}
        }
    }

    fn tick(&mut self) {
        if self.state == BreakerState::Open {
            let now = (self.clock)();
            if let Some(at) = self.opened_at {
                if now.duration_since(at) >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = false;
                }
            }
        }
    }

    fn open_now(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some((self.clock)());
        self.probe_inflight = false;
        self.opens += 1;
    }

    fn push_outcome(&mut self, failed: bool) {
        self.outcomes[self.cursor] = failed;
        self.cursor = (self.cursor + 1) % self.outcomes.len();
        self.filled = (self.filled + 1).min(self.outcomes.len());
    }

    fn reset_window(&mut self) {
        self.outcomes.iter_mut().for_each(|o| *o = false);
        self.cursor = 0;
        self.filled = 0;
        self.consecutive_failures = 0;
    }

    fn should_open(&self) -> bool {
        if self.filled < self.config.min_samples.max(1) {
            return false;
        }
        let failures = self.outcomes[..self.filled].iter().filter(|&&f| f).count();
        (failures as f64) / (self.filled as f64) >= self.config.failure_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A fake clock the test advances by hand.
    fn fake_clock() -> (Arc<Mutex<Instant>>, Clock) {
        let now = Arc::new(Mutex::new(Instant::now()));
        let handle = Arc::clone(&now);
        (now, Arc::new(move || *handle.lock().unwrap()))
    }

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn closed_until_failure_rate_crosses_threshold() {
        let (_, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        // Three failures: below min_samples, still closed.
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        // Fourth failure reaches min_samples at 100% failure rate: opens.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn mixed_outcomes_below_threshold_stay_closed() {
        let (_, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        // One failure per three outcomes (S,S,F,…): the running rate peaks
        // at 3/8 = 37.5% < 50% at every judgment point, so the breaker must
        // never open — not even transiently.
        for i in 0..9 {
            if i % 3 == 2 {
                b.record_failure();
            } else {
                b.record_success();
            }
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn open_rejects_until_cooldown_then_half_open_probes() {
        let (now, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        for _ in 0..4 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());

        // Advance past the cooldown: half-open, exactly one probe allowed.
        *now.lock().unwrap() += Duration::from_millis(150);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "first probe slot");
        assert!(!b.allow(), "second concurrent probe must be rejected");
    }

    #[test]
    fn half_open_probe_success_closes_and_clears_window() {
        let (now, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        for _ in 0..4 {
            b.record_failure();
        }
        *now.lock().unwrap() += Duration::from_millis(150);
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // The window was cleared: a single new failure must not re-open.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn half_open_probe_failure_reopens_for_another_cooldown() {
        let (now, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        for _ in 0..4 {
            b.record_failure();
        }
        *now.lock().unwrap() += Duration::from_millis(150);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.allow());

        // Half of the new cooldown is not enough.
        *now.lock().unwrap() += Duration::from_millis(50);
        assert_eq!(b.state(), BreakerState::Open);
        // The full cooldown is.
        *now.lock().unwrap() += Duration::from_millis(60);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn a_success_warmed_window_still_opens_after_min_samples_consecutive_failures() {
        let (_, clock) = fake_clock();
        let mut b = CircuitBreaker::with_clock(config(), clock);
        // Fill the window with successes: the windowed rate alone would now
        // need 4+ failures in 8 to open — but a replica that just died must
        // still cost only min_samples failures.
        for _ in 0..8 {
            b.record_success();
        }
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);

        // An interleaved success resets the consecutive count.  A wide
        // window keeps the rate trigger out of play (6 failures / 32 slots),
        // so only the consecutive trigger could open — and it must not.
        let (_, clock) = fake_clock();
        let wide = BreakerConfig {
            window: 32,
            ..config()
        };
        let mut b = CircuitBreaker::with_clock(wide, clock);
        for _ in 0..32 {
            b.record_success();
        }
        for _ in 0..3 {
            b.record_failure();
        }
        b.record_success();
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
        assert_eq!(BreakerState::HalfOpen.as_str(), "half_open");
    }
}
