//! Consistent-hash tenant ring: which replica group owns which tenant.
//!
//! The ring is the one routing truth the whole partitioned fleet shares —
//! servers load it to scope ingest and answer ownership, clients load it to
//! pick a replica group, and the scatter path walks it to reach every
//! group.  Placement is classic consistent hashing: every group projects
//! [`RingConfig::vnodes`] virtual points onto a 64-bit circle via FNV-1a
//! plus a 64-bit avalanche finalizer, a tenant hashes onto the same circle,
//! and the first point at or after the tenant's hash owns it.  The hash is
//! fully deterministic (no per-process seeding), so two processes that
//! parse the same [`RingConfig`] compute byte-identical placements — the
//! property the `wrong_owner` protocol and the cross-process CI leg rely
//! on.  (The finalizer matters: raw FNV leaves sequential names like
//! `tenant-0..tenant-9` clustered in one arc; see [`mix`].)
//!
//! Rebalance is minimal-disruption by construction: adding a group inserts
//! only that group's virtual points, so only tenants whose hash falls in
//! the newly claimed arcs move (≈ `1/(N+1)` of them for N existing groups);
//! removing a group deletes only its points, so only *its* tenants are
//! redistributed and nothing else moves.  The property suite in
//! `tests/ring_properties.rs` pins balance, determinism, and both
//! disruption bounds.

use crate::json::{write_escaped, Json};
use crate::{NetError, NetResult};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes — the one hash everything on the ring uses.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    bytes.into_iter().fold(FNV_OFFSET, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// 64-bit avalanche finalizer (the murmur3 `fmix64` constants) applied on
/// top of FNV-1a.  Raw FNV barely diffuses its final byte: two keys that
/// differ only in the last character land within `9 * FNV_PRIME ≈ 2^43` of
/// each other on a 2^64 circle, so sequential tenant names ("tenant-0",
/// "tenant-1", …) would all fall in one arc and one group would own every
/// one of them.  The finalizer spreads that cluster across the whole
/// circle while staying exactly as deterministic as FNV itself.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Position of a key on the ring circle.
fn ring_point(bytes: impl IntoIterator<Item = u8>) -> u64 {
    mix(fnv1a(bytes))
}

/// One replica group: a name and the addresses of its replicas (which
/// replicate internally via `--peer` sync).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Unique group name (the value of the `x-opaq-owner` header).
    pub name: String,
    /// Replica addresses of the group, in preference order.
    pub addrs: Vec<String>,
}

/// The serializable description of a tenant hash ring.
///
/// The wire form is the JSON object `opaq serve --ring FILE` loads:
///
/// ```json
/// {"vnodes":128,"groups":[{"name":"group-0","addrs":["127.0.0.1:4000"]}]}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingConfig {
    /// Virtual points each group projects onto the circle.  More points
    /// mean tighter balance; 128 keeps the spread within a few percent.
    pub vnodes: u32,
    /// The replica groups sharing the ring.
    pub groups: Vec<GroupConfig>,
}

impl RingConfig {
    /// A ring over `groups` with the default 128 virtual nodes per group.
    pub fn new(groups: Vec<GroupConfig>) -> Self {
        Self {
            vnodes: 128,
            groups,
        }
    }

    /// Parse the JSON wire form.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] on malformed JSON or a missing/mistyped
    /// field; structural rules (unique names, non-empty groups) are checked
    /// by [`HashRing::new`].
    pub fn parse(text: &str) -> NetResult<Self> {
        let parsed =
            Json::parse(text).map_err(|e| NetError::InvalidConfig(format!("ring config: {e}")))?;
        let vnodes = parsed
            .get("vnodes")
            .and_then(Json::as_u64)
            .ok_or_else(|| NetError::InvalidConfig("ring config needs integer vnodes".into()))?;
        let vnodes = u32::try_from(vnodes)
            .map_err(|_| NetError::InvalidConfig("ring vnodes out of range".into()))?;
        let Some(groups) = parsed.get("groups").and_then(Json::as_array) else {
            return Err(NetError::InvalidConfig(
                "ring config needs a groups array".into(),
            ));
        };
        let groups = groups
            .iter()
            .map(|item| {
                let name = item
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        NetError::InvalidConfig("ring group needs a string name".into())
                    })?
                    .to_owned();
                let addrs = item
                    .get("addrs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| {
                        NetError::InvalidConfig("ring group needs an addrs array".into())
                    })?
                    .iter()
                    .map(|a| {
                        a.as_str().map(str::to_owned).ok_or_else(|| {
                            NetError::InvalidConfig("ring group addrs must be strings".into())
                        })
                    })
                    .collect::<NetResult<Vec<String>>>()?;
                Ok(GroupConfig { name, addrs })
            })
            .collect::<NetResult<Vec<GroupConfig>>>()?;
        Ok(Self { vnodes, groups })
    }

    /// Render the JSON wire form (what [`RingConfig::parse`] reads back).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"vnodes\":");
        out.push_str(&self.vnodes.to_string());
        out.push_str(",\"groups\":[");
        for (i, group) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &group.name);
            out.push_str(",\"addrs\":[");
            for (j, addr) in group.addrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, addr);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The config with one more group — the add-side rebalance input.
    #[must_use]
    pub fn with_group(mut self, group: GroupConfig) -> Self {
        self.groups.push(group);
        self
    }

    /// The config without the named group — the remove-side rebalance input.
    #[must_use]
    pub fn without_group(mut self, name: &str) -> Self {
        self.groups.retain(|g| g.name != name);
        self
    }
}

/// A built ring: the sorted virtual-point table placement queries walk.
#[derive(Debug, Clone)]
pub struct HashRing {
    config: RingConfig,
    /// `(point hash, group index)`, sorted by hash (ties by group index,
    /// which the construction order makes deterministic).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build the ring from its config.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] for zero vnodes, no groups, a group with
    /// no addresses, or duplicate/empty/NUL-containing group names (the
    /// vnode key uses NUL as an unambiguous separator).
    pub fn new(config: RingConfig) -> NetResult<Self> {
        if config.vnodes == 0 {
            return Err(NetError::InvalidConfig(
                "a ring needs at least one virtual node per group".into(),
            ));
        }
        if config.groups.is_empty() {
            return Err(NetError::InvalidConfig(
                "a ring needs at least one group".into(),
            ));
        }
        for (i, group) in config.groups.iter().enumerate() {
            if group.name.is_empty() || group.name.contains('\0') {
                return Err(NetError::InvalidConfig(
                    "ring group names must be non-empty and NUL-free".into(),
                ));
            }
            if group.addrs.is_empty() {
                return Err(NetError::InvalidConfig(format!(
                    "ring group {:?} has no replica addresses",
                    group.name
                )));
            }
            if config.groups[..i].iter().any(|g| g.name == group.name) {
                return Err(NetError::InvalidConfig(format!(
                    "duplicate ring group name {:?}",
                    group.name
                )));
            }
        }
        let mut points = Vec::with_capacity(config.groups.len() * config.vnodes as usize);
        for (index, group) in config.groups.iter().enumerate() {
            for vnode in 0..config.vnodes {
                // Key = name bytes + NUL + vnode LE bytes: names cannot
                // contain NUL, so distinct (name, vnode) pairs never collide
                // on key bytes.
                let key = group
                    .name
                    .bytes()
                    .chain(std::iter::once(0u8))
                    .chain(u64::from(vnode).to_le_bytes());
                points.push((ring_point(key), index));
            }
        }
        points.sort_unstable();
        Ok(Self { config, points })
    }

    /// The config this ring was built from.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// The groups, in config order (stable indices for [`Self::owner_index`]).
    pub fn groups(&self) -> &[GroupConfig] {
        &self.config.groups
    }

    /// Index of the named group, if present.
    pub fn group_index(&self, name: &str) -> Option<usize> {
        self.config.groups.iter().position(|g| g.name == name)
    }

    /// Index of the group owning `tenant`: the first virtual point at or
    /// after the tenant's hash, wrapping at the top of the circle.
    pub fn owner_index(&self, tenant: &str) -> usize {
        let h = ring_point(tenant.bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, group) = self.points[at % self.points.len()];
        group
    }

    /// The group owning `tenant`.
    pub fn owner(&self, tenant: &str) -> &GroupConfig {
        &self.config.groups[self.owner_index(tenant)]
    }
}

/// One server's view of the ring: the shared [`HashRing`] plus which group
/// this process belongs to.  [`crate::ServerConfigBuilder::ring`] attaches
/// it; the router consults it for ownership answers and the scatter hook
/// walks its peer groups.
#[derive(Debug, Clone)]
pub struct RingMembership {
    ring: HashRing,
    group: usize,
}

impl RingMembership {
    /// Membership of `group` in `ring`.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] if the ring has no group by that name.
    pub fn new(ring: HashRing, group: &str) -> NetResult<Self> {
        let Some(index) = ring.group_index(group) else {
            return Err(NetError::InvalidConfig(format!(
                "group {group:?} is not on the ring"
            )));
        };
        Ok(Self { ring, group: index })
    }

    /// The shared ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// This process's group name.
    pub fn group_name(&self) -> &str {
        &self.ring.groups()[self.group].name
    }

    /// Does this process's group own `tenant`?
    pub fn owns(&self, tenant: &str) -> bool {
        self.ring.owner_index(tenant) == self.group
    }

    /// The group owning `tenant` (this group or a peer).
    pub fn owner(&self, tenant: &str) -> &GroupConfig {
        self.ring.owner(tenant)
    }

    /// Every group except this one — the scatter fan-out set.
    pub fn peer_groups(&self) -> impl Iterator<Item = &GroupConfig> {
        let local = self.group;
        self.ring
            .groups()
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != local)
            .map(|(_, g)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(names: &[&str]) -> RingConfig {
        RingConfig::new(
            names
                .iter()
                .map(|n| GroupConfig {
                    name: (*n).to_string(),
                    addrs: vec![format!("127.0.0.1:{}", 4000 + n.len())],
                })
                .collect(),
        )
    }

    #[test]
    fn wire_form_round_trips() {
        let mut cfg = config(&["alpha", "beta"]);
        cfg.vnodes = 64;
        cfg.groups[0].addrs.push("127.0.0.1:9999".into());
        let parsed = RingConfig::parse(&cfg.to_json()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn malformed_configs_are_rejected() {
        assert!(RingConfig::parse("{").is_err());
        assert!(RingConfig::parse("{\"groups\":[]}").is_err(), "no vnodes");
        assert!(RingConfig::parse("{\"vnodes\":8}").is_err(), "no groups");
        assert!(
            RingConfig::parse("{\"vnodes\":8,\"groups\":[{\"name\":\"a\"}]}").is_err(),
            "group without addrs"
        );
    }

    #[test]
    fn structural_validation() {
        let mut zero = config(&["a"]);
        zero.vnodes = 0;
        assert!(HashRing::new(zero).is_err());
        assert!(HashRing::new(RingConfig::new(Vec::new())).is_err());
        assert!(
            HashRing::new(config(&["a", "a"])).is_err(),
            "duplicate name"
        );
        let mut empty_addr = config(&["a"]);
        empty_addr.groups[0].addrs.clear();
        assert!(HashRing::new(empty_addr).is_err());
        assert!(HashRing::new(config(&[""])).is_err(), "empty name");
    }

    #[test]
    fn ownership_is_total_and_deterministic() {
        let ring = HashRing::new(config(&["alpha", "beta", "gamma"]));
        let ring = ring.unwrap();
        let again = HashRing::new(config(&["alpha", "beta", "gamma"])).unwrap();
        for i in 0..500 {
            let tenant = format!("tenant-{i}");
            let owner = ring.owner_index(&tenant);
            assert!(owner < 3);
            assert_eq!(owner, again.owner_index(&tenant), "non-deterministic");
        }
    }

    #[test]
    fn membership_answers_ownership() {
        let ring = HashRing::new(config(&["alpha", "beta"])).unwrap();
        let m = RingMembership::new(ring.clone(), "alpha").unwrap();
        assert_eq!(m.group_name(), "alpha");
        assert_eq!(m.peer_groups().count(), 1);
        for i in 0..64 {
            let tenant = format!("tenant-{i}");
            assert_eq!(m.owns(&tenant), ring.owner(&tenant).name == "alpha");
            assert_eq!(m.owner(&tenant).name, ring.owner(&tenant).name);
        }
        assert!(RingMembership::new(ring, "ghost").is_err());
    }

    #[test]
    fn add_and_remove_rebalance_only_what_they_must() {
        let tenants: Vec<String> = (0..2000).map(|i| format!("tenant-{i}")).collect();
        let two = HashRing::new(config(&["alpha", "beta"])).unwrap();
        let three = HashRing::new(config(&["alpha", "beta"]).with_group(GroupConfig {
            name: "gamma".into(),
            addrs: vec!["127.0.0.1:5000".into()],
        }))
        .unwrap();
        for t in &tenants {
            let before = &two.owner(t).name;
            let after = &three.owner(t).name;
            // Adding gamma may claim a tenant, but never shuffles a tenant
            // between the surviving groups.
            assert!(
                after == before || after == "gamma",
                "{t}: {before}->{after}"
            );
        }
        let back = HashRing::new(three.config().clone().without_group("gamma")).unwrap();
        for t in &tenants {
            assert_eq!(two.owner(t).name, back.owner(t).name, "{t}");
        }
    }
}
