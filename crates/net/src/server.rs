//! The HTTP server: a bounded accept/worker pool over
//! `std::net::TcpListener`, routing to an `opaq_serve::QueryEngine`.
//!
//! ## Threading model
//!
//! One accept thread polls the (non-blocking) listener and hands accepted
//! connections to a **bounded** channel feeding `workers` handler threads.
//! A full queue answers **503** and closes instead of buffering unboundedly
//! — the back-pressure story mirrors the bounded crossbeam channels of the
//! sharded ingest path.  Each handler owns its connection for the duration:
//! keep-alive serves up to [`ServerConfig::keep_alive_max_requests`]
//! requests per connection, with a read timeout per request and an idle
//! timeout between requests (both shutdown-aware).
//!
//! ## Shutdown ordering
//!
//! [`HttpServer::shutdown`] mirrors the refresh pool's drain-then-join
//! discipline: stop accepting (join the accept thread), close the
//! connection queue, then join the handlers — which finish their in-flight
//! request, announce `connection: close`, and exit.  When `shutdown`
//! returns, no thread will touch the engine or catalog again, so a caller
//! tearing down "HTTP server → refresh pool → catalog" gets a quiescent
//! stack at every step.

use crate::client::HttpClient;
use crate::http::{read_request, ParseError, ReadLimits, Request, Response};
use crate::json::{write_escaped, write_f64};
use crate::replica::ReplicationStats;
use crate::ring::RingMembership;
use crate::{NetError, NetResult};
use crossbeam::channel;
use opaq_core::QuantileEstimate;
use opaq_metrics::trace::{
    render_span_tree, SlowLog, SpanRecorder, SpanTag, Stage, TraceId, TraceSink, ROOT_SPAN_ID,
};
use opaq_metrics::{Counter, Gauge, LatencySnapshot, MetricRegistry, PlanStage};
use opaq_query::{
    PlanExecutor, PlanResponse, QueryError, QueryPlan, RemotePartial, ScatterFn, Selector,
};
use opaq_serve::{
    DatasetId, Freshness, QueryEngine, QueryOutput, QueryRequest, QueryResponse, ServeError,
    TenantId,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Response header carrying the sketch version that answered.
pub const VERSION_HEADER: &str = "x-opaq-version";
/// Response header carrying the TTL status (`fresh|stale|refreshing`).
pub const FRESHNESS_HEADER: &str = "x-opaq-freshness";
/// Response header carrying the number of catalog entries a plan fused.
pub const SOURCES_HEADER: &str = "x-opaq-sources";
/// Request/response header carrying the request's trace id (16 hex digits).
/// Present on **every** response the server writes — success, error, parse
/// failure, and 503 shed alike; an id sent by the client is propagated,
/// otherwise one is minted at the front door.
pub const TRACE_HEADER: &str = "x-opaq-trace-id";
/// Response header naming the replica group that owns the addressed tenant.
/// A ring-configured server stamps it on **every** response: its own group
/// name normally, or — on a typed `wrong_owner` answer — the group the
/// misdirected request should have gone to.
pub const OWNER_HEADER: &str = "x-opaq-owner";

/// Shared observability state of one serving process: the span ring behind
/// `/v1/_debug/trace`, the slow-query log behind `/v1/_debug/slow`, and the
/// [`MetricRegistry`] rendered by `/metrics`.
///
/// Construct one (or let [`HttpServer::start`] build a default), share it
/// via [`ServerConfigBuilder::telemetry`], and read it back after shutdown
/// for the CLI banner.  All metric families the server exports are
/// registered up front — in [`Telemetry::new`] and [`Telemetry::bind`] — so
/// the exposition schema is identical from the very first scrape.
pub struct Telemetry {
    recorder: Arc<SpanRecorder>,
    slow: Arc<SlowLog>,
    registry: Arc<MetricRegistry>,
    requests: Counter,
    parse_errors: Counter,
    sheds: Counter,
    spans_recorded: Counter,
    spans_dropped: Counter,
    slow_entries: Gauge,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans_recorded", &self.recorder.recorded())
            .field("slow_entries", &self.slow.len())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Default sizing: a 4096-slot span ring and a 32-entry slow log with a
    /// zero admission threshold (the log simply keeps the 32 slowest).
    pub fn new() -> Self {
        Self::with_capacity(4096, 32, Duration::ZERO)
    }

    /// Explicit sizing for the span ring and slow log.
    pub fn with_capacity(
        span_capacity: usize,
        slow_capacity: usize,
        slow_threshold: Duration,
    ) -> Self {
        let registry = Arc::new(MetricRegistry::new());
        let requests = registry.counter("opaq_http_requests", "Requests answered (any status).");
        let parse_errors = registry.counter(
            "opaq_http_parse_errors",
            "Requests rejected because they could not be parsed.",
        );
        let sheds = registry.counter(
            "opaq_http_sheds",
            "Connections answered 503 by the bounded accept queue.",
        );
        let spans_recorded = registry.counter(
            "opaq_trace_spans_recorded",
            "Spans written into the trace ring (including since-overwritten ones).",
        );
        let spans_dropped = registry.counter(
            "opaq_trace_spans_dropped",
            "Spans dropped because every probed ring slot was mid-write.",
        );
        let slow_entries = registry.gauge(
            "opaq_slow_log_entries",
            "Entries currently held by the slow-query log.",
        );
        Self {
            recorder: Arc::new(SpanRecorder::new(span_capacity)),
            slow: Arc::new(SlowLog::new(slow_capacity, slow_threshold)),
            registry,
            requests,
            parse_errors,
            sheds,
            spans_recorded,
            spans_dropped,
            slow_entries,
        }
    }

    /// The span ring requests record into.
    pub fn recorder(&self) -> &Arc<SpanRecorder> {
        &self.recorder
    }

    /// The top-N slow-query log.
    pub fn slow(&self) -> &Arc<SlowLog> {
        &self.slow
    }

    /// The metric registry `/metrics` renders.
    pub fn registry(&self) -> &Arc<MetricRegistry> {
        &self.registry
    }

    /// Register the engine-backed families — the request and per-stage
    /// latency histograms plus every catalog/replication scalar — and seed
    /// their first values.  Called once by [`HttpServer::start`];
    /// idempotent (re-binding fetches the existing series).
    pub fn bind(
        &self,
        engine: &QueryEngine,
        executor: &PlanExecutor,
        replication: Option<&Arc<ReplicationStats>>,
        ring: Option<&RingMembership>,
    ) {
        self.registry.histogram(
            "opaq_request_duration_nanos",
            "End-to-end request latency (cumulative histogram, nanoseconds).",
            engine.overall_shared(),
        );
        for stage in PlanStage::ALL {
            self.registry.histogram_with(
                "opaq_plan_stage_duration_nanos",
                "Per-plan-stage latency (cumulative histogram, nanoseconds).",
                &[("stage", stage.as_str())],
                executor.stages().shared(stage),
            );
        }
        self.update(engine, executor, replication, ring);
    }

    /// Mirror every scalar whose source of truth lives outside the registry
    /// (engine quantile summaries, catalog stats, replication counters,
    /// trace-ring tallies) into their registered series.  Called on each
    /// `/metrics` scrape.
    pub fn update(
        &self,
        engine: &QueryEngine,
        executor: &PlanExecutor,
        replication: Option<&Arc<ReplicationStats>>,
        ring: Option<&RingMembership>,
    ) {
        self.spans_recorded.set(self.recorder.recorded());
        self.spans_dropped.set(self.recorder.dropped());
        self.slow_entries.set(self.slow.len() as u64);

        const LAT_HELP: &str = "Per-tenant latency quantile summary (nanoseconds).";
        const CNT_HELP: &str = "Requests recorded per tenant.";
        let mirror = |label: &str, snap: &LatencySnapshot| {
            for (q, value) in [("p50", snap.p50), ("p99", snap.p99), ("p999", snap.p999)] {
                self.registry
                    .gauge_with(
                        "opaq_request_latency_nanos",
                        LAT_HELP,
                        &[("tenant", label), ("quantile", q)],
                    )
                    .set(value.as_nanos().min(u64::MAX as u128) as u64);
            }
            self.registry
                .counter_with("opaq_request_count", CNT_HELP, &[("tenant", label)])
                .set(snap.count);
        };
        for (tenant, snap) in engine.latency_report() {
            mirror(tenant.as_str(), &snap);
        }
        mirror("_all", &engine.overall().snapshot());

        const STAGE_LAT_HELP: &str = "Per-plan-stage latency quantile summary (nanoseconds).";
        const STAGE_CNT_HELP: &str = "Plan stages recorded.";
        for (stage, snap) in executor.stages().snapshot() {
            for (q, value) in [("p50", snap.p50), ("p99", snap.p99), ("p999", snap.p999)] {
                self.registry
                    .gauge_with(
                        "opaq_plan_stage_latency_nanos",
                        STAGE_LAT_HELP,
                        &[("stage", stage.as_str()), ("quantile", q)],
                    )
                    .set(value.as_nanos().min(u64::MAX as u128) as u64);
            }
            self.registry
                .counter_with(
                    "opaq_plan_stage_count",
                    STAGE_CNT_HELP,
                    &[("stage", stage.as_str())],
                )
                .set(snap.count);
        }

        let stats = engine.catalog().stats();
        for (name, help, value) in [
            (
                "opaq_catalog_publishes",
                "Sketch versions published.",
                stats.publishes,
            ),
            (
                "opaq_catalog_snapshots",
                "Snapshot reads served.",
                stats.snapshots,
            ),
            (
                "opaq_catalog_evictions",
                "Entries spilled to disk by the resident budget.",
                stats.evictions,
            ),
            (
                "opaq_catalog_reloads",
                "Spilled entries reloaded on the query path.",
                stats.reloads,
            ),
            (
                "opaq_catalog_spill_failures",
                "Spill attempts that failed.",
                stats.spill_failures,
            ),
            (
                "opaq_catalog_stale_snapshots",
                "Snapshots served past their TTL.",
                stats.stale_snapshots,
            ),
            (
                "opaq_catalog_ttl_refreshes",
                "Expired entries routed to the refresh hook.",
                stats.ttl_refreshes,
            ),
            (
                "opaq_catalog_recoveries",
                "Catalog recoveries replayed from the manifest.",
                stats.recoveries,
            ),
            (
                "opaq_manifest_records",
                "Records appended to the write-ahead manifest.",
                stats.manifest_records,
            ),
            (
                "opaq_catalog_orphan_spills_removed",
                "Orphan spill files deleted during recovery.",
                stats.orphan_spills_removed,
            ),
            (
                "opaq_slo_breaches",
                "Requests over the configured SLO threshold.",
                engine.slo_breaches(),
            ),
        ] {
            self.registry.counter(name, help).set(value);
        }
        for (name, help, value) in [
            (
                "opaq_catalog_entries",
                "Entries currently published.",
                stats.entries,
            ),
            (
                "opaq_catalog_resident_sample_points",
                "Sample points currently resident in memory.",
                stats.resident_sample_points,
            ),
        ] {
            self.registry.gauge(name, help).set(value);
        }

        // Replication/failover: always present (zeros for a standalone
        // server) so dashboards and CI greps never branch on topology.
        let (failovers, breaker_opens, deltas, faults, reroutes, breaker_sum, per_peer) =
            replication
                .map(|r| {
                    (
                        r.failovers(),
                        r.breaker_opens(),
                        r.sync_deltas_applied(),
                        r.chaos_faults_injected(),
                        r.reroutes(),
                        r.breaker_state_sum(),
                        r.breaker_states(),
                    )
                })
                .unwrap_or((0, 0, 0, 0, 0, 0, Vec::new()));
        for (name, help, value) in [
            (
                "opaq_failovers",
                "Requests answered by a non-preferred replica.",
                failovers,
            ),
            (
                "opaq_breaker_opens",
                "Circuit-breaker transitions into the open state.",
                breaker_opens,
            ),
            (
                "opaq_sync_deltas_applied",
                "Catalog entries applied from a peer.",
                deltas,
            ),
            (
                "opaq_chaos_faults_injected",
                "Faults injected by the chaos proxy.",
                faults,
            ),
            (
                "opaq_reroutes",
                "Requests re-routed to their owning group after a wrong_owner answer.",
                reroutes,
            ),
        ] {
            self.registry.counter(name, help).set(value);
        }
        const BREAKER_HELP: &str =
            "Breaker state (0 closed, 1 open, 2 half-open); unlabeled series is the sum.";
        self.registry
            .gauge("opaq_replica_breaker_state", BREAKER_HELP)
            .set(breaker_sum);
        for (peer, gauge) in per_peer {
            self.registry
                .gauge_with(
                    "opaq_replica_breaker_state",
                    BREAKER_HELP,
                    &[("peer", &peer)],
                )
                .set(gauge);
        }

        // Ring ownership: how many distinct tenants in the catalog this
        // group owns per the ring.  Zero (and equal to zero forever) on a
        // ring-less server, so the exposition schema is topology-stable.
        let tenants_owned = ring.map_or(0, |membership| {
            let mut seen: Vec<String> = Vec::new();
            for entry in engine.catalog().inventory() {
                if membership.owns(&entry.tenant) && !seen.contains(&entry.tenant) {
                    seen.push(entry.tenant.clone());
                }
            }
            seen.len() as u64
        });
        self.registry
            .gauge(
                "opaq_ring_tenants_owned",
                "Distinct catalog tenants owned by this replica group per the hash ring.",
            )
            .set(tenants_owned);
    }
}

/// Tunables of one [`HttpServer`].
///
/// Marked `#[non_exhaustive]`: construct it with [`ServerConfig::builder`]
/// (or start from [`ServerConfig::default`]), so query-engine knobs can be
/// added later without breaking downstream construction sites.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection-handler threads (the accept pool bound).
    pub workers: usize,
    /// Accepted-but-unhandled connections the queue holds before the accept
    /// thread answers 503 and closes.
    pub accept_backlog: usize,
    /// Requests served per connection before the server closes it.
    pub keep_alive_max_requests: u32,
    /// Timeout for reading one request once its first byte arrived.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection may wait for its next request.
    pub keep_alive_idle: Duration,
    /// Request parsing limits (header/body caps).
    pub limits: ReadLimits,
    /// Shared replication/failover counters to expose via `/metrics`
    /// (`None` for a standalone server: the gauges render as zeros).
    pub replication: Option<Arc<ReplicationStats>>,
    /// This server's ring membership on a consistent-hash partitioned
    /// fleet.  `None` (the default) serves every tenant, unpartitioned.
    /// With a membership: single-tenant requests for tenants another group
    /// owns get a typed `wrong_owner` 421, every response carries
    /// [`OWNER_HEADER`], and glob plans scatter to peer groups so coalesced
    /// answers stay byte-identical to an unpartitioned catalog.
    pub ring: Option<Arc<RingMembership>>,
    /// Shared observability state (span ring, slow log, metric registry).
    /// `None` lets the server build a default-sized one; supply your own to
    /// read traces and slow-log summaries back after shutdown.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            accept_backlog: 64,
            keep_alive_max_requests: 1_000,
            read_timeout: Duration::from_secs(5),
            keep_alive_idle: Duration::from_secs(10),
            limits: ReadLimits::default(),
            replication: None,
            ring: None,
            telemetry: None,
        }
    }
}

impl ServerConfig {
    /// Start building a validated configuration (from the defaults).
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }
}

/// Builder for [`ServerConfig`] — see [`ServerConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Connection-handler threads (must be at least one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Accepted-but-unhandled connections queued before shedding with 503.
    /// Zero is valid: every connection not immediately claimed by a worker
    /// is shed (useful for overload tests).
    pub fn accept_backlog(mut self, backlog: usize) -> Self {
        self.config.accept_backlog = backlog;
        self
    }

    /// Requests served per connection before closing (must be positive).
    pub fn keep_alive_max_requests(mut self, max: u32) -> Self {
        self.config.keep_alive_max_requests = max;
        self
    }

    /// Timeout for reading one request (must be non-zero).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Idle deadline between keep-alive requests (must be non-zero).
    pub fn keep_alive_idle(mut self, idle: Duration) -> Self {
        self.config.keep_alive_idle = idle;
        self
    }

    /// Request parsing limits (header/body caps).
    pub fn limits(mut self, limits: ReadLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Attach shared replication/failover counters for `/metrics`.
    pub fn replication(mut self, stats: Arc<ReplicationStats>) -> Self {
        self.config.replication = Some(stats);
        self
    }

    /// Join a consistent-hash partitioned fleet as a member of one replica
    /// group (see [`ServerConfig::ring`]).
    pub fn ring(mut self, membership: Arc<RingMembership>) -> Self {
        self.config.ring = Some(membership);
        self
    }

    /// Attach shared observability state (span ring, slow log, registry).
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.config.telemetry = Some(telemetry);
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] for zero workers, a zero keep-alive
    /// request cap, or zero timeouts — all of which would make the server
    /// accept connections it can never answer.
    pub fn build(self) -> NetResult<ServerConfig> {
        if self.config.workers == 0 {
            return Err(NetError::InvalidConfig(
                "the server needs at least one worker".into(),
            ));
        }
        if self.config.keep_alive_max_requests == 0 {
            return Err(NetError::InvalidConfig(
                "keep_alive_max_requests must be positive".into(),
            ));
        }
        if self.config.read_timeout.is_zero() {
            return Err(NetError::InvalidConfig(
                "read_timeout must be non-zero".into(),
            ));
        }
        if self.config.keep_alive_idle.is_zero() {
            return Err(NetError::InvalidConfig(
                "keep_alive_idle must be non-zero".into(),
            ));
        }
        Ok(self.config)
    }
}

/// Monotonic counters of one server's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused with 503 because the queue was full.
    pub rejected: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests that could not be parsed (400/408/413/431/501 family).
    pub parse_errors: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    parse_errors: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
        }
    }
}

/// A running HTTP front-end over one [`QueryEngine`].
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<StatsInner>,
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Bind `config.addr` and start serving `engine`.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] for zero workers; I/O errors from binding.
    pub fn start(engine: Arc<QueryEngine>, config: ServerConfig) -> NetResult<Self> {
        if config.workers == 0 {
            return Err(NetError::InvalidConfig(
                "the server needs at least one worker".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept: the accept thread polls so it can observe
        // shutdown without needing a wake-up connection.
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let (conn_tx, conn_rx) = channel::bounded::<TcpStream>(config.accept_backlog);
        let conn_rx = Arc::new(parking_lot::Mutex::new(conn_rx));
        // One executor serves every route: the GET point queries compile to
        // degenerate plans and run through it alongside POST /v1/query, so
        // there is exactly one evaluation path (and one set of per-stage
        // latency histograms) behind the whole API surface.  On a ring
        // member, the executor also carries the cross-group scatter hook.
        let mut executor = PlanExecutor::new(Arc::clone(engine.catalog()));
        if let Some(membership) = config.ring.clone() {
            executor = executor.with_scatter(scatter_hook(membership));
        }
        let executor = Arc::new(executor);
        let telemetry = config
            .telemetry
            .clone()
            .unwrap_or_else(|| Arc::new(Telemetry::new()));
        telemetry.bind(
            &engine,
            &executor,
            config.replication.as_ref(),
            config.ring.as_deref(),
        );

        let workers = (0..config.workers)
            .map(|i| {
                let conn_rx = Arc::clone(&conn_rx);
                let engine = Arc::clone(&engine);
                let executor = Arc::clone(&executor);
                let config = config.clone();
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let telemetry = Arc::clone(&telemetry);
                std::thread::Builder::new()
                    .name(format!("opaq-net-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let rx = conn_rx.lock();
                            rx.recv()
                        };
                        let Ok(stream) = stream else {
                            return; // queue closed and drained
                        };
                        handle_connection(
                            stream, &engine, &executor, &config, &shutdown, &stats, &telemetry,
                        );
                    })
                    .expect("spawning an HTTP worker cannot fail")
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let telemetry = Arc::clone(&telemetry);
            std::thread::Builder::new()
                .name("opaq-net-accept".to_string())
                .spawn(move || {
                    // `conn_tx` moves in here: when this thread exits, the
                    // channel closes and the workers drain out.
                    let conn_tx = conn_tx;
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                // Bounded hand-off: a full queue means the
                                // workers are saturated — shed load with a
                                // 503 instead of queueing unboundedly.
                                if let Err(back) = try_send(&conn_tx, stream) {
                                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                                    telemetry.sheds.inc();
                                    // Even a shed carries a trace id and a
                                    // root span, so overload is visible in
                                    // the ring, not just a counter.
                                    let trace = TraceId::mint();
                                    TraceSink::new(Arc::clone(&telemetry.recorder), trace)
                                        .finish_root(Stage::Request, SpanTag::Shed);
                                    let mut stream = back;
                                    let _ = Response::error(503, "server overloaded")
                                        .with_header(TRACE_HEADER, trace.to_string())
                                        .write_to(&mut stream, false);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => {
                                // Transient accept failure (e.g. EMFILE):
                                // back off briefly rather than spin.
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                })
                .expect("spawning the accept thread cannot fail")
        };

        Ok(Self {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
            stats,
            telemetry,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// The observability state this server records into (the configured one,
    /// or the default built at start).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Stop accepting, drain queued connections' in-flight requests, join
    /// every thread.  Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            // Joining the accept thread drops the connection sender, which
            // closes the queue; the workers then drain what was accepted
            // (each serving at most its current request before noticing the
            // flag) and exit.
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Non-blocking send; gives the stream back on a full (or closed) queue so
/// the accept thread can answer 503 instead of blocking.
fn try_send(tx: &channel::Sender<TcpStream>, stream: TcpStream) -> Result<(), TcpStream> {
    tx.try_send(stream).map_err(|e| match e {
        channel::TrySendError::Full(stream) | channel::TrySendError::Disconnected(stream) => stream,
    })
}

/// Serve one connection until close/limits/shutdown.
fn handle_connection(
    stream: TcpStream,
    engine: &Arc<QueryEngine>,
    executor: &Arc<PlanExecutor>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    stats: &StatsInner,
    telemetry: &Telemetry,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    for served in 0..config.keep_alive_max_requests {
        match wait_for_request(&mut reader, config, shutdown) {
            Wait::Ready => {}
            Wait::Close => return,
        }
        let _ = reader.get_ref().set_read_timeout(Some(config.read_timeout));
        let parse_start = Instant::now();
        let request = read_request(&mut reader, &config.limits);
        let parse_nanos = parse_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let (response, keep_alive) = match request {
            Ok(request) => {
                // The trace id arrives in the request header (a failover hop
                // or sync pull propagating its trace) or is minted here at
                // the front door.  Parsing happened before the id was
                // readable, so its span is recorded retroactively.
                let trace = request
                    .header(TRACE_HEADER)
                    .and_then(TraceId::parse)
                    .unwrap_or_else(TraceId::mint);
                let sink = TraceSink::new(Arc::clone(&telemetry.recorder), trace);
                sink.complete_with(
                    sink.allocate(),
                    ROOT_SPAN_ID,
                    Stage::Parse,
                    SpanTag::Untagged,
                    0,
                    parse_nanos,
                );
                let response = route(engine, executor, config, telemetry, &sink, &request);
                let tag = if response.status >= 500 {
                    SpanTag::Error
                } else {
                    SpanTag::Untagged
                };
                let total = parse_start.elapsed();
                sink.complete_with(
                    ROOT_SPAN_ID,
                    0,
                    Stage::Request,
                    tag,
                    0,
                    total.as_nanos().min(u64::MAX as u128) as u64,
                );
                let detail = sink.take_annotation();
                telemetry.slow.offer(trace, total, || {
                    detail.unwrap_or_else(|| format!("{} {}", request.method, request.path))
                });
                let keep_alive = request.wants_keep_alive()
                    && served + 1 < config.keep_alive_max_requests
                    && !shutdown.load(Ordering::Acquire);
                (
                    response.with_header(TRACE_HEADER, trace.to_string()),
                    keep_alive,
                )
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(e) => {
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                telemetry.parse_errors.inc();
                // Unparseable requests can't propagate an id; mint one so
                // even the 4xx carries a trace handle into the ring.
                let trace = TraceId::mint();
                let sink = TraceSink::new(Arc::clone(&telemetry.recorder), trace);
                sink.complete_with(
                    sink.allocate(),
                    ROOT_SPAN_ID,
                    Stage::Parse,
                    SpanTag::Error,
                    0,
                    parse_nanos,
                );
                sink.complete_with(
                    ROOT_SPAN_ID,
                    0,
                    Stage::Request,
                    SpanTag::Error,
                    0,
                    parse_nanos,
                );
                (
                    parse_error_response(&e).with_header(TRACE_HEADER, trace.to_string()),
                    false,
                )
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        telemetry.requests.inc();
        if response.write_to(reader.get_mut(), keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

enum Wait {
    Ready,
    Close,
}

/// Idle phase between keep-alive requests: poll for the first byte with a
/// short timeout so both shutdown and the idle deadline are observed without
/// consuming any request bytes (pipelined bytes already buffered count as
/// ready).  A request whose bytes have already arrived is reported `Ready`
/// even under shutdown — it gets served (with `connection: close`) rather
/// than dropped, so the drain semantics documented on
/// [`HttpServer::shutdown`] hold for queued work too.
fn wait_for_request(
    reader: &mut BufReader<TcpStream>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> Wait {
    if !reader.buffer().is_empty() {
        return Wait::Ready;
    }
    let started = Instant::now();
    let poll = Duration::from_millis(50);
    loop {
        // Probe for data *before* consulting the shutdown flag, so a
        // request that raced shutdown onto the wire is answered, not
        // silently closed on.
        let _ = reader.get_ref().set_read_timeout(Some(poll));
        let mut probe = [0u8; 1];
        match reader.get_ref().peek(&mut probe) {
            Ok(0) => return Wait::Close, // clean EOF
            Ok(_) => return Wait::Ready,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Wait::Close,
        }
        if shutdown.load(Ordering::Acquire) {
            return Wait::Close;
        }
        if started.elapsed() > config.keep_alive_idle {
            return Wait::Close;
        }
    }
}

fn parse_error_response(e: &ParseError) -> Response {
    match e {
        ParseError::HeadersTooLarge => Response::error(431, &e.to_string()),
        ParseError::BodyTooLarge => Response::error(413, &e.to_string()),
        ParseError::Unsupported(_) => Response::error(501, &e.to_string()),
        ParseError::Io(io) if io.kind() == std::io::ErrorKind::WouldBlock => {
            Response::error(408, "timed out reading the request")
        }
        ParseError::Io(io) if io.kind() == std::io::ErrorKind::TimedOut => {
            Response::error(408, "timed out reading the request")
        }
        _ => Response::error(400, &e.to_string()),
    }
}

/// A typed, already-validated API request: the single conversion layer
/// between wire parameters and the executor.  Every endpoint — the four
/// legacy GET/POST point routes and the plan endpoint — lowers to one of
/// these, and both compile to a [`QueryPlan`] for the shared executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// A single-`(tenant, dataset)` point query (the GET /v1 family).
    Point {
        /// The tenant addressed by the path.
        tenant: TenantId,
        /// The dataset addressed by the path.
        dataset: DatasetId,
        /// The validated extract request.
        request: QueryRequest,
    },
    /// A pipeline expression (POST /v1/query).
    Plan(QueryPlan),
}

impl ApiRequest {
    /// Lower to the plan the executor runs.  Point requests become
    /// degenerate exact-selector plans, so ids containing `*`/`?` remain
    /// addressable through the path-based API.
    pub fn into_plan(self) -> QueryPlan {
        match self {
            ApiRequest::Point {
                tenant,
                dataset,
                request,
            } => QueryPlan::single(tenant, dataset, request),
            ApiRequest::Plan(plan) => plan,
        }
    }
}

/// Route one parsed request to the engine.  Pure function of
/// `(engine state, config, request)` — the HTTP workload harness
/// re-renders expected responses through the same code path to compare
/// bytes.  Spans for route/compile/fetch/merge/extract/render land on
/// `sink`; the caller owns the root span and the trace-id response header.
/// On a ring member every response leaves with [`OWNER_HEADER`] set — the
/// local group normally, the actual owner on a `wrong_owner` answer.
pub fn route(
    engine: &Arc<QueryEngine>,
    executor: &Arc<PlanExecutor>,
    config: &ServerConfig,
    telemetry: &Telemetry,
    sink: &TraceSink,
    request: &Request,
) -> Response {
    let response = route_inner(engine, executor, config, telemetry, sink, request);
    match config.ring.as_deref() {
        Some(membership) if !response.headers.iter().any(|(k, _)| k == OWNER_HEADER) => {
            response.with_header(OWNER_HEADER, membership.group_name().to_string())
        }
        _ => response,
    }
}

/// Resolve tenant ownership for a ring member, recording a [`Stage::Route`]
/// span (tagged [`SpanTag::Error`] when misdirected).  Returns the typed
/// `wrong_owner` response to send when another group owns the tenant.
fn check_ownership(
    config: &ServerConfig,
    sink: &TraceSink,
    tenant: &str,
) -> Result<(), Box<Response>> {
    let Some(membership) = config.ring.as_deref() else {
        return Ok(());
    };
    let route_start = sink.now_nanos();
    let owned = membership.owns(tenant);
    let tag = if owned {
        SpanTag::Untagged
    } else {
        SpanTag::Error
    };
    sink.child(ROOT_SPAN_ID, Stage::Route, tag, route_start);
    if owned {
        return Ok(());
    }
    let owner = membership.owner(tenant);
    let mut body = String::from("{\"error\":{\"code\":\"wrong_owner\",\"message\":");
    write_escaped(
        &mut body,
        &format!("tenant {:?} is owned by group {:?}", tenant, owner.name),
    );
    body.push_str(",\"owner\":{\"group\":");
    write_escaped(&mut body, &owner.name);
    body.push_str(",\"addrs\":[");
    for (i, addr) in owner.addrs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        write_escaped(&mut body, addr);
    }
    body.push_str("]}}}");
    Err(Box::new(
        Response::json(421, body).with_header(OWNER_HEADER, owner.name.clone()),
    ))
}

fn route_inner(
    engine: &Arc<QueryEngine>,
    executor: &Arc<PlanExecutor>,
    config: &ServerConfig,
    telemetry: &Telemetry,
    sink: &TraceSink,
    request: &Request,
) -> Response {
    // Segments were percent-decoded individually by the parser, so a tenant
    // id containing a literal `/` (sent as `%2F`) is one segment here.
    let segments: Vec<&str> = request.segments.iter().map(String::as_str).collect();
    match segments.as_slice() {
        ["healthz"] => {
            if request.method != "GET" {
                return Response::error(405, "healthz is GET-only");
            }
            let stats = engine.catalog().stats();
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"entries\":{},\"publishes\":{}}}",
                    stats.entries, stats.publishes
                ),
            )
        }
        ["metrics"] => {
            if request.method != "GET" {
                return Response::error(405, "metrics is GET-only");
            }
            telemetry.update(
                engine,
                executor,
                config.replication.as_ref(),
                config.ring.as_deref(),
            );
            Response::text(200, telemetry.registry.render())
        }
        ["v1", "_debug", "trace"] => route_debug_trace(telemetry, request),
        ["v1", "_debug", "slow"] => route_debug_slow(telemetry, request),
        ["v1", "_sync", "manifest"] => {
            if request.method != "GET" {
                return Response::error(405, "sync manifest is GET-only");
            }
            Response::json(200, render_inventory_json(engine))
        }
        ["v1", "_sync", "sketch"] => route_sync_sketch(engine, request),
        ["v1", "query"] => route_query(engine, executor, config, sink, request),
        ["v1", tenant, dataset, op] => {
            if let Err(response) = check_ownership(config, sink, tenant) {
                return *response;
            }
            let compile_start = sink.now_nanos();
            let api = match parse_point_request(request, tenant, dataset, op) {
                Ok(api) => api,
                Err(response) => return *response,
            };
            let plan = api.into_plan();
            sink.child(
                ROOT_SPAN_ID,
                Stage::Compile,
                SpanTag::Untagged,
                compile_start,
            );
            match run_plan(engine, executor, sink, &plan) {
                Ok(executed) => {
                    // A degenerate plan has exactly one source; reconstruct
                    // the legacy single-target response shape from it, so
                    // the GET bodies stay byte-for-byte what they were when
                    // each route parsed and executed on its own.
                    let (version, freshness) = executed
                        .sources
                        .first()
                        .map(|s| (s.version, s.freshness))
                        .unwrap_or((0, Freshness::Fresh));
                    let response = QueryResponse {
                        output: executed.output,
                        version,
                        total_elements: executed.total_elements,
                        freshness,
                    };
                    let render_start = sink.now_nanos();
                    let body = render_response_json(&response);
                    sink.child(ROOT_SPAN_ID, Stage::Render, SpanTag::Untagged, render_start);
                    Response::json(200, body)
                        .with_header(VERSION_HEADER, version.to_string())
                        .with_header(FRESHNESS_HEADER, freshness.as_str())
                }
                Err(response) => *response,
            }
        }
        _ => Response::error(404, "no such route"),
    }
}

/// `GET /v1/_debug/trace?id=HEX`: render the recorded span tree of one
/// trace as indented text (partial if the ring wrapped).
fn route_debug_trace(telemetry: &Telemetry, request: &Request) -> Response {
    if request.method != "GET" {
        return Response::error(405, "debug trace is GET-only");
    }
    let Some(raw) = request.query_param("id") else {
        return Response::error(400, "missing query parameter id");
    };
    let Some(id) = TraceId::parse(raw) else {
        return Response::error(400, "id must be 1-16 hex digits");
    };
    let spans = telemetry.recorder.trace(id);
    if spans.is_empty() {
        return Response::error(404, "no spans recorded for that trace");
    }
    Response::text(200, format!("trace {id}\n{}", render_span_tree(&spans)))
}

/// `GET /v1/_debug/slow?n=N`: the N slowest requests (default 10), slowest
/// first, as JSON with each entry's trace id and plan provenance.
fn route_debug_slow(telemetry: &Telemetry, request: &Request) -> Response {
    if request.method != "GET" {
        return Response::error(405, "debug slow is GET-only");
    }
    let n = match request.query_param("n") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "n must be an unsigned integer"),
        },
    };
    let mut out = String::from("{\"threshold_nanos\":");
    out.push_str(&(telemetry.slow.threshold().as_nanos().min(u64::MAX as u128) as u64).to_string());
    out.push_str(",\"entries\":[");
    for (i, entry) in telemetry.slow.top(n).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"trace\":");
        write_escaped(&mut out, &entry.trace.to_string());
        out.push_str(",\"duration_nanos\":");
        out.push_str(&entry.duration_nanos.to_string());
        out.push_str(",\"detail\":");
        write_escaped(&mut out, &entry.detail);
        out.push('}');
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// `GET /v1/_sync/manifest`: the catalog's version vector as JSON, sorted —
/// what a bootstrapping or delta-polling replica diffs against its own
/// catalog.
fn render_inventory_json(engine: &Arc<QueryEngine>) -> String {
    let mut out = String::from("{\"entries\":[");
    for (i, entry) in engine.catalog().inventory().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"tenant\":");
        write_escaped(&mut out, &entry.tenant);
        out.push_str(",\"dataset\":");
        write_escaped(&mut out, &entry.dataset);
        out.push_str(",\"version\":");
        out.push_str(&entry.version.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// `GET /v1/_sync/sketch?tenant=&dataset=`: the entry's current sketch in
/// the checksummed `opaq_storage::sketch_codec` frame, with the served
/// version in `x-opaq-version` — one atomic `(version, bytes)` pair, so a
/// replica can never apply bytes under the wrong version number.
fn route_sync_sketch(engine: &Arc<QueryEngine>, request: &Request) -> Response {
    if request.method != "GET" {
        return Response::error(405, "sync sketch is GET-only");
    }
    let Some(tenant) = request.query_param("tenant") else {
        return Response::error(400, "missing query parameter tenant");
    };
    let Some(dataset) = request.query_param("dataset") else {
        return Response::error(400, "missing query parameter dataset");
    };
    let snapshot = match engine
        .catalog()
        .snapshot(&TenantId::new(tenant), &DatasetId::new(dataset))
    {
        Ok(snapshot) => snapshot,
        Err(ServeError::UnknownEntry { .. }) => {
            return Response::error(404, "no sketch published for that entry")
        }
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let bytes = opaq_storage::sketch_codec::to_bytes(&snapshot.sketch.to_wire());
    Response::octets(200, bytes).with_header(VERSION_HEADER, snapshot.version.to_string())
}

/// Parse the legacy per-`(tenant, dataset)` wire parameters into a typed
/// [`ApiRequest::Point`].  Validation errors come back as ready-to-send
/// responses with the same statuses and messages the per-route parsers
/// used to emit.
fn parse_point_request(
    request: &Request,
    tenant: &str,
    dataset: &str,
    op: &str,
) -> Result<ApiRequest, Box<Response>> {
    let fail = |status: u16, message: &str| Err(Box::new(Response::error(status, message)));
    let query = match op {
        "quantile" => {
            if request.method != "GET" {
                return fail(405, "quantile is GET-only");
            }
            let Some(raw) = request.query_param("phi") else {
                return fail(400, "missing query parameter phi");
            };
            let Ok(phi) = raw.parse::<f64>() else {
                return fail(400, "phi must be a number");
            };
            if !phi.is_finite() {
                return fail(400, "phi must be finite");
            }
            QueryRequest::Quantile { phi }
        }
        "rank" => {
            if request.method != "GET" {
                return fail(405, "rank is GET-only");
            }
            let Some(raw) = request.query_param("key") else {
                return fail(400, "missing query parameter key");
            };
            let Ok(key) = raw.parse::<u64>() else {
                return fail(400, "key must be an unsigned integer");
            };
            QueryRequest::Rank { key }
        }
        "profile" => {
            if request.method != "GET" {
                return fail(405, "profile is GET-only");
            }
            let count = match request.query_param("count") {
                None => 10,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(count) => count,
                    Err(_) => return fail(400, "count must be an unsigned integer"),
                },
            };
            QueryRequest::Profile { count }
        }
        "quantile_batch" => {
            if request.method != "POST" {
                return fail(405, "quantile_batch is POST-only");
            }
            let Ok(body) = std::str::from_utf8(&request.body) else {
                return fail(400, "body must be UTF-8 JSON");
            };
            let parsed = match crate::json::Json::parse(body) {
                Ok(parsed) => parsed,
                Err(e) => return fail(400, &e.to_string()),
            };
            let Some(items) = parsed.get("phis").and_then(|v| v.as_array()) else {
                return fail(400, "body must be {\"phis\": [numbers]}");
            };
            let mut phis = Vec::with_capacity(items.len());
            for item in items {
                match item.as_f64() {
                    Some(phi) if phi.is_finite() => phis.push(phi),
                    _ => return fail(400, "phis must be finite numbers"),
                }
            }
            QueryRequest::QuantileBatch { phis }
        }
        _ => return fail(404, "no such operation"),
    };
    Ok(ApiRequest::Point {
        tenant: TenantId::new(tenant),
        dataset: DatasetId::new(dataset),
        request: query,
    })
}

/// `POST /v1/query`: parse `{"plan": "fetch ... | ..."}`, execute, render
/// the plan response with its full source provenance.
fn route_query(
    engine: &Arc<QueryEngine>,
    executor: &Arc<PlanExecutor>,
    config: &ServerConfig,
    sink: &TraceSink,
    request: &Request,
) -> Response {
    if request.method != "POST" {
        return Response::error(405, "query is POST-only");
    }
    let compile_start = sink.now_nanos();
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let parsed = match crate::json::Json::parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let Some(text) = parsed.get("plan").and_then(|v| v.as_str()) else {
        return Response::error(400, "body must be {\"plan\": \"fetch ... | ...\"}");
    };
    // The plan text is the provenance the slow log wants: a slow entry
    // names the pipeline, not just a path.
    sink.annotate(format!("plan: {text}"));
    let plan = match QueryPlan::parse(text) {
        Ok(plan) => plan,
        Err(e) => return Response::error_coded(400, "invalid_plan", &e.to_string()),
    };
    sink.child(
        ROOT_SPAN_ID,
        Stage::Compile,
        SpanTag::Untagged,
        compile_start,
    );
    // Single-tenant plans are routed like the point API: a misdirected one
    // answers `wrong_owner`.  Glob plans run anywhere — the executor's
    // scatter hook gathers the other groups' partials.
    if let Selector::Exact { tenant, .. } = &plan.selector {
        if let Err(response) = check_ownership(config, sink, tenant.as_str()) {
            return *response;
        }
    }
    match run_plan(engine, executor, sink, &plan) {
        Ok(executed) => {
            let sources = executed.sources.len().to_string();
            let render_start = sink.now_nanos();
            let body = render_plan_response_json(&executed);
            sink.child(ROOT_SPAN_ID, Stage::Render, SpanTag::Untagged, render_start);
            Response::json(200, body).with_header(SOURCES_HEADER, sources)
        }
        Err(response) => *response,
    }
}

/// Execute a plan through the shared executor, recording request latency
/// exactly as the engine's own execute path does: the elapsed time lands in
/// the fleet-wide histogram once, and in each distinct contributing
/// tenant's histogram, on success only.
fn run_plan(
    engine: &Arc<QueryEngine>,
    executor: &Arc<PlanExecutor>,
    sink: &TraceSink,
    plan: &QueryPlan,
) -> Result<PlanResponse, Box<Response>> {
    let start = Instant::now();
    let executed = executor
        .execute_traced(plan, sink, ROOT_SPAN_ID)
        .map_err(plan_error_response)?;
    let elapsed = start.elapsed();
    engine.overall().record(elapsed);
    let mut previous: Option<&TenantId> = None;
    for source in &executed.sources {
        // Sources arrive in sorted key order, so equal tenants are adjacent.
        if previous != Some(&source.tenant) {
            engine.tenant_histogram(&source.tenant).record(elapsed);
            previous = Some(&source.tenant);
        }
    }
    Ok(executed)
}

/// Build the cross-group gather hook a ring member installs on its
/// [`PlanExecutor`]: for every *peer* group, pull a replica's manifest,
/// keep the selector's matches, and fetch each matching sketch at its exact
/// published version (the same `/v1/_sync/*` endpoints replication uses, so
/// bytes and version travel atomically).  Replica addresses are tried in
/// order; a group with no reachable replica fails the plan loudly (500)
/// rather than returning a silently partial answer.  The request's trace id
/// rides on every hop, so the scatter fan-out is one trace end to end.
fn scatter_hook(membership: Arc<RingMembership>) -> Arc<ScatterFn> {
    Arc::new(move |selector: &Selector, trace: Option<TraceId>| {
        let mut partials = Vec::new();
        for group in membership.peer_groups() {
            let mut gathered: Option<Vec<RemotePartial>> = None;
            let mut last_err: Option<NetError> = None;
            for addr in &group.addrs {
                let mut client = HttpClient::new(addr.clone())
                    .with_read_timeout(Duration::from_millis(500))
                    .with_connect_timeout(Duration::from_millis(250));
                client.set_trace_id(trace);
                match gather_from_peer(&mut client, selector) {
                    Ok(found) => {
                        gathered = Some(found);
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match gathered {
                Some(found) => partials.extend(found),
                None => {
                    let detail = last_err
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "group has no replica addresses".to_string());
                    return Err(QueryError::Serve(ServeError::InvalidConfig(format!(
                        "scatter to group {:?} failed: {detail}",
                        group.name
                    ))));
                }
            }
        }
        Ok(partials)
    })
}

/// One peer replica's contribution to a scatter: its manifest filtered by
/// the selector, each match fetched at the manifest-then-header version.
fn gather_from_peer(client: &mut HttpClient, selector: &Selector) -> NetResult<Vec<RemotePartial>> {
    let mut found = Vec::new();
    for entry in crate::sync::fetch_manifest(client)? {
        let tenant = TenantId::new(&entry.tenant);
        let dataset = DatasetId::new(&entry.dataset);
        if !selector.matches(&tenant, &dataset) {
            continue;
        }
        let (version, sketch) = crate::sync::fetch_sketch(client, &entry.tenant, &entry.dataset)?;
        found.push(RemotePartial {
            tenant,
            dataset,
            version,
            sketch: Arc::new(sketch),
        });
    }
    Ok(found)
}

/// Map executor errors to responses.  The single-target serve errors keep
/// the statuses and messages the legacy routes emitted; plan-specific
/// failures get their own stable codes.
fn plan_error_response(e: QueryError) -> Box<Response> {
    Box::new(match &e {
        QueryError::Parse { .. } => Response::error_coded(400, "invalid_plan", &e.to_string()),
        QueryError::NoMatch { .. } => Response::error_coded(404, "not_found", &e.to_string()),
        QueryError::NeedsCoalesce { .. } => {
            Response::error_coded(400, "needs_coalesce", &e.to_string())
        }
        QueryError::Serve(ServeError::UnknownEntry { tenant, dataset }) => {
            Response::error(404, &format!("no sketch published for {tenant}/{dataset}"))
        }
        QueryError::Serve(ServeError::Opaq(err)) => Response::error(400, &err.to_string()),
        QueryError::Serve(err) => Response::error(500, &err.to_string()),
    })
}

/// Canonical JSON body of a successful query response.  Both the server and
/// the HTTP workload harness use this single renderer, so "byte-for-byte
/// identical to the in-process answer" is checkable by string equality.
pub fn render_response_json(response: &QueryResponse) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"version\":");
    out.push_str(&response.version.to_string());
    out.push_str(",\"total_elements\":");
    out.push_str(&response.total_elements.to_string());
    out.push_str(",\"freshness\":");
    write_escaped(&mut out, response.freshness.as_str());
    match &response.output {
        QueryOutput::Quantile(est) => {
            out.push_str(",\"estimate\":");
            write_estimate(&mut out, est);
        }
        QueryOutput::Rank(bounds) => {
            out.push_str(",\"rank\":{\"min_rank\":");
            out.push_str(&bounds.min_rank.to_string());
            out.push_str(",\"max_rank\":");
            out.push_str(&bounds.max_rank.to_string());
            out.push('}');
        }
        QueryOutput::QuantileBatch(ests) | QueryOutput::Profile(ests) => {
            out.push_str(",\"estimates\":[");
            for (i, est) in ests.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_estimate(&mut out, est);
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Canonical JSON body of a successful `POST /v1/query` response: the same
/// output keys as [`render_response_json`], plus the full `sources` array —
/// one `(tenant, dataset, version, freshness)` tuple per contributing
/// snapshot — in place of the single version/freshness pair.  Shared with
/// the workload verifier so plan answers are byte-replayable too.
pub fn render_plan_response_json(response: &PlanResponse) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"total_elements\":");
    out.push_str(&response.total_elements.to_string());
    out.push_str(",\"sources\":[");
    for (i, source) in response.sources.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"tenant\":");
        write_escaped(&mut out, source.tenant.as_str());
        out.push_str(",\"dataset\":");
        write_escaped(&mut out, source.dataset.as_str());
        out.push_str(",\"version\":");
        out.push_str(&source.version.to_string());
        out.push_str(",\"freshness\":");
        write_escaped(&mut out, source.freshness.as_str());
        out.push('}');
    }
    out.push(']');
    match &response.output {
        QueryOutput::Quantile(est) => {
            out.push_str(",\"estimate\":");
            write_estimate(&mut out, est);
        }
        QueryOutput::Rank(bounds) => {
            out.push_str(",\"rank\":{\"min_rank\":");
            out.push_str(&bounds.min_rank.to_string());
            out.push_str(",\"max_rank\":");
            out.push_str(&bounds.max_rank.to_string());
            out.push('}');
        }
        QueryOutput::QuantileBatch(ests) | QueryOutput::Profile(ests) => {
            out.push_str(",\"estimates\":[");
            for (i, est) in ests.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_estimate(&mut out, est);
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

fn write_estimate(out: &mut String, est: &QuantileEstimate<u64>) {
    out.push_str("{\"phi\":");
    write_f64(out, est.phi);
    out.push_str(",\"target_rank\":");
    out.push_str(&est.target_rank.to_string());
    out.push_str(",\"lower\":");
    out.push_str(&est.lower.to_string());
    out.push_str(",\"upper\":");
    out.push_str(&est.upper.to_string());
    out.push_str(",\"max_rank_slack\":");
    out.push_str(&est.max_rank_slack.to_string());
    out.push('}');
}
