//! Client-side replica failover: route to a healthy replica, break the
//! circuit on a dead one, degrade gracefully on total outage.
//!
//! A [`ReplicaSet`] owns one [`HttpClient`] + [`CircuitBreaker`] per replica
//! address.  `GET`s (idempotent) are retried across replicas with capped
//! jittered backoff between full passes; `POST`s get exactly one attempt on
//! the currently-preferred replica — a write must never be silently
//! replayed.  Routing is sticky: the set keeps answering from the same
//! replica until it fails, then fails over to the next one whose breaker
//! admits traffic and sticks there.  When *every* replica is down and the
//! retry budget is spent, a `GET` degrades gracefully: the last successful
//! response for that exact target is replayed, tagged
//! [`FailoverResponse::degraded`], instead of surfacing an error — the
//! caller decides whether a stale-but-verified answer beats no answer.
//!
//! All of it feeds [`ReplicationStats`], the one atomics block shared by
//! the replica set, the replication poller and the chaos proxy, which the
//! server's `/metrics` route and the CLI shutdown summary read.

use crate::backoff::Backoff;
use crate::circuit::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::client::{ClientResponse, ClientStats, HttpClient};
use crate::server::TRACE_HEADER;
use crate::{NetError, NetResult};
use opaq_metrics::TraceId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Replication/failover counters shared across the client, the sync poller
/// and the chaos proxy; exposed via `/metrics` and the shutdown summary.
#[derive(Debug, Default)]
pub struct ReplicationStats {
    /// Requests answered by a different replica than the preferred one.
    pub failovers: AtomicU64,
    /// Circuit-breaker transitions into the open state, across replicas.
    pub breaker_opens: AtomicU64,
    /// Catalog entries applied from a peer after bootstrap (delta polls).
    pub sync_deltas_applied: AtomicU64,
    /// Faults the chaos proxy injected (drops, delays, truncations, resets).
    pub chaos_faults_injected: AtomicU64,
    /// Requests re-routed to the owning replica group after a typed
    /// `wrong_owner` answer (one hop, never a loop).
    pub reroutes: AtomicU64,
    /// Latest breaker state gauge per replica address (0 closed, 1 open,
    /// 2 half-open).
    breaker_states: Mutex<Vec<(String, u64)>>,
}

impl ReplicationStats {
    /// A fresh, all-zero stats block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record the current breaker state for `peer`.
    pub fn set_breaker_state(&self, peer: &str, state: BreakerState) {
        let mut states = self.breaker_states.lock().expect("breaker states lock");
        match states.iter_mut().find(|(p, _)| p == peer) {
            Some((_, g)) => *g = state.as_gauge(),
            None => {
                states.push((peer.to_string(), state.as_gauge()));
                states.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }

    /// Snapshot of per-replica breaker gauges, sorted by address.
    pub fn breaker_states(&self) -> Vec<(String, u64)> {
        self.breaker_states
            .lock()
            .expect("breaker states lock")
            .clone()
    }

    /// Sum of all per-replica breaker gauges — non-zero iff any breaker is
    /// currently not closed.
    pub fn breaker_state_sum(&self) -> u64 {
        self.breaker_states
            .lock()
            .expect("breaker states lock")
            .iter()
            .map(|(_, g)| *g)
            .sum()
    }

    /// Convenience load of the failover counter.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Convenience load of the breaker-open counter.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }

    /// Convenience load of the applied-delta counter.
    pub fn sync_deltas_applied(&self) -> u64 {
        self.sync_deltas_applied.load(Ordering::Relaxed)
    }

    /// Convenience load of the injected-fault counter.
    pub fn chaos_faults_injected(&self) -> u64 {
        self.chaos_faults_injected.load(Ordering::Relaxed)
    }

    /// Convenience load of the wrong-owner re-route counter.
    pub fn reroutes(&self) -> u64 {
        self.reroutes.load(Ordering::Relaxed)
    }
}

/// Validated tuning for a [`ReplicaSet`]: breaker behaviour, per-request
/// timeouts, the GET retry budget, and how often [`ReplicaSet::maybe_probe`]
/// actually probes.  Construct via [`ReplicaConfig::builder`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReplicaConfig {
    /// Circuit-breaker tuning applied to every replica.
    pub breaker: BreakerConfig,
    /// Per-request read timeout on every replica's client.
    pub read_timeout: Duration,
    /// Per-request connect timeout on every replica's client.
    pub connect_timeout: Duration,
    /// Full passes over all replicas before a GET gives up.
    pub retry_passes: u32,
    /// Minimum interval between health-probe sweeps issued by
    /// [`ReplicaSet::maybe_probe`].
    pub probe_interval: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            breaker: BreakerConfig::default(),
            read_timeout: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(150),
            retry_passes: 3,
            probe_interval: Duration::from_millis(100),
        }
    }
}

impl ReplicaConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ReplicaConfigBuilder {
        ReplicaConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ReplicaConfig`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct ReplicaConfigBuilder {
    config: ReplicaConfig,
}

impl ReplicaConfigBuilder {
    /// Circuit-breaker tuning applied to every replica.
    #[must_use]
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Per-request read timeout.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Per-request connect timeout.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.config.connect_timeout = timeout;
        self
    }

    /// Full passes over all replicas before a GET gives up.
    #[must_use]
    pub fn retry_passes(mut self, passes: u32) -> Self {
        self.config.retry_passes = passes;
        self
    }

    /// Minimum interval between [`ReplicaSet::maybe_probe`] sweeps.
    #[must_use]
    pub fn probe_interval(mut self, interval: Duration) -> Self {
        self.config.probe_interval = interval;
        self
    }

    /// Validate and produce the config.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] for a zero retry budget, zero probe
    /// interval, or zero timeouts — every one of those silently disables a
    /// mechanism the caller thinks it configured.
    pub fn build(self) -> NetResult<ReplicaConfig> {
        if self.config.retry_passes == 0 {
            return Err(NetError::InvalidConfig(
                "replica retry_passes must be at least 1".into(),
            ));
        }
        if self.config.probe_interval.is_zero() {
            return Err(NetError::InvalidConfig(
                "replica probe_interval must be non-zero".into(),
            ));
        }
        if self.config.read_timeout.is_zero() || self.config.connect_timeout.is_zero() {
            return Err(NetError::InvalidConfig(
                "replica timeouts must be non-zero".into(),
            ));
        }
        Ok(self.config)
    }
}

/// One replica endpoint: its client, breaker, and open-count watermark.
struct Endpoint {
    addr: String,
    client: HttpClient,
    breaker: CircuitBreaker,
    opens_seen: u64,
}

/// A successful (possibly degraded) answer from the replica set.
#[derive(Debug, Clone)]
pub struct FailoverResponse {
    /// The HTTP response.
    pub response: ClientResponse,
    /// Which replica answered (empty for a degraded cache replay).
    pub replica: String,
    /// `true` when no replica could answer and this is the last verified
    /// answer for the same target, replayed stale.
    pub degraded: bool,
}

/// Health-probe-routed, circuit-broken client over N replicas.
pub struct ReplicaSet {
    endpoints: Vec<Endpoint>,
    preferred: usize,
    /// Full passes over all replicas before a GET gives up.
    retry_passes: u32,
    /// Minimum spacing between [`ReplicaSet::maybe_probe`] sweeps.
    probe_interval: Duration,
    last_probe: Option<Instant>,
    backoff: Backoff,
    stats: Option<Arc<ReplicationStats>>,
    /// Last successful response per GET target, for graceful degradation.
    last_good: HashMap<String, ClientResponse>,
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field(
                "replicas",
                &self.endpoints.iter().map(|e| &e.addr).collect::<Vec<_>>(),
            )
            .field("preferred", &self.preferred)
            .finish_non_exhaustive()
    }
}

impl ReplicaSet {
    /// A replica set over `addrs`, tuned by a validated [`ReplicaConfig`].
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] if `addrs` is empty.
    pub fn new(addrs: &[String], config: ReplicaConfig) -> NetResult<Self> {
        if addrs.is_empty() {
            return Err(NetError::InvalidConfig(
                "replica set needs at least one address".into(),
            ));
        }
        let endpoints = addrs
            .iter()
            .map(|addr| Endpoint {
                addr: addr.clone(),
                client: HttpClient::new(addr.clone())
                    .with_read_timeout(config.read_timeout)
                    .with_connect_timeout(config.connect_timeout),
                breaker: CircuitBreaker::new(config.breaker.clone()),
                opens_seen: 0,
            })
            .collect::<Vec<_>>();
        let seed = addrs
            .iter()
            .flat_map(|a| a.bytes())
            .fold(0x51_7cc1_b727_2202u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
        Ok(Self {
            endpoints,
            preferred: 0,
            retry_passes: config.retry_passes,
            probe_interval: config.probe_interval,
            last_probe: None,
            backoff: Backoff::new(Duration::from_millis(5), Duration::from_millis(200), seed),
            stats: None,
            last_good: HashMap::new(),
        })
    }

    /// Attach a shared stats block (failovers, breaker gauges).
    pub fn with_stats(mut self, stats: Arc<ReplicationStats>) -> Self {
        for e in &self.endpoints {
            stats.set_breaker_state(&e.addr, BreakerState::Closed);
        }
        self.stats = Some(stats);
        self
    }

    /// Replica addresses, in routing order.
    pub fn addrs(&self) -> Vec<String> {
        self.endpoints.iter().map(|e| e.addr.clone()).collect()
    }

    /// Set (or clear) the trace id stamped on every outgoing request, on
    /// every replica's client — a failover retry keeps the same trace, so
    /// the replica that finally answers records its spans under it.
    pub fn set_trace_id(&mut self, trace: Option<TraceId>) {
        for e in &mut self.endpoints {
            e.client.set_trace_id(trace);
        }
    }

    /// The trace id currently stamped on outgoing requests, if any.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.endpoints.first().and_then(|e| e.client.trace_id())
    }

    /// Aggregate client-level tallies across all replicas.
    pub fn client_stats(&self) -> ClientStats {
        self.endpoints
            .iter()
            .fold(ClientStats::default(), |acc, e| {
                let s = e.client.stats();
                ClientStats {
                    retries: acc.retries + s.retries,
                    connect_errors: acc.connect_errors + s.connect_errors,
                    timeouts: acc.timeouts + s.timeouts,
                }
            })
    }

    /// Probe `/healthz` on every replica whose breaker admits traffic,
    /// feeding the outcomes back into the breakers.  Cheap enough to call
    /// periodically from a watcher thread.
    pub fn probe_health(&mut self) {
        self.last_probe = Some(Instant::now());
        for i in 0..self.endpoints.len() {
            if !self.endpoints[i].breaker.allow() {
                continue;
            }
            let outcome = self.endpoints[i].client.get("/healthz");
            self.settle(i, outcome.map(|r| r.status == 200).unwrap_or(false));
        }
    }

    /// Run [`ReplicaSet::probe_health`] iff the configured
    /// [`ReplicaConfig::probe_interval`] has elapsed since the last sweep
    /// (the first call always probes).  Call freely from a request loop;
    /// returns whether a sweep actually ran.
    pub fn maybe_probe(&mut self) -> bool {
        let due = self
            .last_probe
            .is_none_or(|at| at.elapsed() >= self.probe_interval);
        if due {
            self.probe_health();
        }
        due
    }

    /// `GET target` with failover: walk replicas from the preferred one,
    /// skipping open breakers, retrying up to `retry_passes` full passes
    /// with jittered backoff between passes.  On total outage, replay the
    /// last good answer for this target as degraded; error only when no
    /// such answer exists.
    ///
    /// # Errors
    /// The last transport error when every replica failed and no previous
    /// answer for `target` is cached.
    pub fn get(&mut self, target: &str) -> NetResult<FailoverResponse> {
        let n = self.endpoints.len();
        let mut last_err: Option<NetError> = None;
        for pass in 0..self.retry_passes {
            if pass > 0 {
                std::thread::sleep(self.backoff.next_delay());
            }
            for step in 0..n {
                let i = (self.preferred + step) % n;
                if !self.endpoints[i].breaker.allow() {
                    continue;
                }
                match self.endpoints[i].client.get(target) {
                    Ok(response) => {
                        self.settle(i, true);
                        self.backoff.reset();
                        if i != self.preferred {
                            self.preferred = i;
                            if let Some(stats) = &self.stats {
                                stats.failovers.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if response.status == 200 {
                            self.last_good.insert(target.to_string(), response.clone());
                        }
                        return Ok(FailoverResponse {
                            response,
                            replica: self.endpoints[i].addr.clone(),
                            degraded: false,
                        });
                    }
                    Err(e) => {
                        self.settle(i, false);
                        last_err = Some(e);
                    }
                }
            }
        }
        if let Some(cached) = self.last_good.get(target) {
            let mut response = cached.clone();
            // The replay carries the *cached* trace id from whenever the
            // answer was recorded; restamp it with the current request's
            // trace so the degraded hop stays on the caller's trace.
            if let Some(trace) = self.trace_id() {
                response.headers.retain(|(k, _)| k != TRACE_HEADER);
                response
                    .headers
                    .push((TRACE_HEADER.to_string(), trace.to_string()));
            }
            return Ok(FailoverResponse {
                response,
                replica: String::new(),
                degraded: true,
            });
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::InvalidConfig("all replica breakers open, nothing cached".into())
        }))
    }

    /// `POST target` — not idempotent, so exactly one attempt on the first
    /// replica whose breaker admits traffic; never retried or failed over.
    ///
    /// # Errors
    /// The transport error from the single attempt, or
    /// [`NetError::InvalidConfig`] when every breaker is open.
    pub fn post_json(&mut self, target: &str, body: &str) -> NetResult<FailoverResponse> {
        let n = self.endpoints.len();
        for step in 0..n {
            let i = (self.preferred + step) % n;
            if !self.endpoints[i].breaker.allow() {
                continue;
            }
            let outcome = self.endpoints[i].client.post_json(target, body);
            self.settle(i, outcome.is_ok());
            return match outcome {
                Ok(response) => {
                    if i != self.preferred {
                        self.preferred = i;
                        if let Some(stats) = &self.stats {
                            stats.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(FailoverResponse {
                        response,
                        replica: self.endpoints[i].addr.clone(),
                        degraded: false,
                    })
                }
                Err(e) => Err(e),
            };
        }
        Err(NetError::InvalidConfig(
            "all replica breakers open for POST".into(),
        ))
    }

    /// Feed an outcome into replica `i`'s breaker and publish the resulting
    /// state (plus any new opens) to the stats block.
    fn settle(&mut self, i: usize, success: bool) {
        let endpoint = &mut self.endpoints[i];
        if success {
            endpoint.breaker.record_success();
        } else {
            endpoint.breaker.record_failure();
        }
        let state = endpoint.breaker.state();
        let opens = endpoint.breaker.opens();
        if let Some(stats) = &self.stats {
            stats.set_breaker_state(&endpoint.addr, state);
            if opens > endpoint.opens_seen {
                stats
                    .breaker_opens
                    .fetch_add(opens - endpoint.opens_seen, Ordering::Relaxed);
            }
        }
        endpoint.opens_seen = opens;
    }
}
