//! Hand-rolled HTTP/1.1 message framing: request parsing and response
//! writing over a buffered `TcpStream`.
//!
//! Only the subset the front-end needs, parsed strictly:
//!
//! * request line `METHOD target HTTP/1.1` (or 1.0), target split into path
//!   and query string, both percent-decoded per segment/parameter;
//! * headers until the blank line, with a hard cap on total header bytes
//!   (overflow → [`ParseError::HeadersTooLarge`], surfaced as **431**);
//! * bodies framed by a single strict `Content-Length` (digits only, one
//!   occurrence), capped ([`ParseError::BodyTooLarge`] → **413**);
//!   `Transfer-Encoding` is refused rather than half-implemented (**501**).
//!
//! Keep-alive policy lives in the server; this module just reports what the
//! request asked for ([`Request::wants_keep_alive`]).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// The raw (still percent-encoded) path, always starting with `/`.
    /// Routing uses [`Request::segments`]; the raw form is kept so an
    /// encoded `/` inside a segment stays distinguishable from a separator.
    pub path: String,
    /// The `/`-separated path segments, percent-decoded individually (so
    /// `a%2Fb` is one segment containing a literal slash, and `+` stays a
    /// plus — `+`-as-space applies to query values only).
    pub segments: Vec<String>,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers in order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the request line said HTTP/1.1 (vs 1.0).
    pub http11: bool,
}

impl Request {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client wants the connection kept open after the response
    /// (HTTP/1.1 defaults to yes, 1.0 to no; `Connection` overrides).
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed; each variant maps to one HTTP status.
#[derive(Debug)]
pub enum ParseError {
    /// Clean EOF before the first byte of a request (keep-alive close).
    ConnectionClosed,
    /// The socket read failed or timed out mid-request.
    Io(std::io::Error),
    /// Malformed request line / header / length framing (**400**).
    Malformed(String),
    /// Header block exceeded the configured cap (**431**).
    HeadersTooLarge,
    /// Declared body exceeded the configured cap (**413**).
    BodyTooLarge,
    /// `Transfer-Encoding` or other framing this server refuses (**501**).
    Unsupported(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::HeadersTooLarge => write!(f, "request header block too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

/// Framing limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Cap on request line + all header bytes (431 beyond this).
    pub max_header_bytes: usize,
    /// Cap on the declared body length (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Read one request from `reader`.
///
/// # Errors
/// See [`ParseError`]; `ConnectionClosed` is the *clean* end of a keep-alive
/// connection, everything else is a real fault.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    limits: &ReadLimits,
) -> Result<Request, ParseError> {
    let mut header_bytes = 0usize;
    let request_line = read_crlf_line(reader, limits.max_header_bytes, &mut header_bytes)?;
    if request_line.is_empty() {
        return Err(ParseError::Malformed("empty request line".into()));
    }
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line".into()));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(ParseError::Unsupported(format!("HTTP version {other}")));
        }
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    // Split on `/` *before* decoding so an encoded slash inside a segment
    // (tenant ids may contain one) is data, not a separator; `+` is a
    // literal in paths, a space only in query strings.
    let segments = raw_path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| ParseError::Malformed("bad percent-encoding in path".into()))?;
    let path = raw_path.to_string();
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k, true)
                .ok_or_else(|| ParseError::Malformed("bad percent-encoding in query".into()))?;
            let v = percent_decode(v, true)
                .ok_or_else(|| ParseError::Malformed("bad percent-encoding in query".into()))?;
            query.push((k, v));
        }
    }

    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(reader, limits.max_header_bytes, &mut header_bytes)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed("header without ':'".into()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("bad header name".into()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ParseError::Unsupported("Transfer-Encoding".into()));
    }
    let lengths: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    let body = match lengths.as_slice() {
        [] => Vec::new(),
        [raw] => {
            if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Malformed("non-numeric Content-Length".into()));
            }
            let declared: u64 = raw
                .parse()
                .map_err(|_| ParseError::Malformed("Content-Length out of range".into()))?;
            if declared > limits.max_body_bytes as u64 {
                return Err(ParseError::BodyTooLarge);
            }
            let mut body = vec![0u8; declared as usize];
            reader.read_exact(&mut body).map_err(ParseError::Io)?;
            body
        }
        _ => {
            return Err(ParseError::Malformed(
                "multiple Content-Length headers".into(),
            ))
        }
    };

    Ok(Request {
        method,
        path,
        segments,
        query,
        headers,
        body,
        http11,
    })
}

/// Read one CRLF-terminated line (returned without the terminator), charging
/// its bytes against the shared header budget.
fn read_crlf_line(
    reader: &mut BufReader<TcpStream>,
    max_header_bytes: usize,
    used: &mut usize,
) -> Result<String, ParseError> {
    let budget = max_header_bytes.saturating_sub(*used);
    // Read at most budget + 1 bytes: seeing one byte past the budget without
    // a newline distinguishes "too large" from "line fits exactly".
    let mut limited = reader.by_ref().take(budget as u64 + 1);
    let mut line = Vec::new();
    match limited.read_until(b'\n', &mut line) {
        Ok(0) => {
            return if line.is_empty() && *used == 0 {
                Err(ParseError::ConnectionClosed)
            } else {
                Err(ParseError::Malformed("truncated header line".into()))
            };
        }
        Ok(_) => {}
        Err(e) => return Err(ParseError::Io(e)),
    }
    if line.last() != Some(&b'\n') {
        return Err(if line.len() > budget {
            ParseError::HeadersTooLarge
        } else {
            ParseError::Malformed("truncated header line".into())
        });
    }
    if line.len() > budget {
        return Err(ParseError::HeadersTooLarge);
    }
    *used += line.len();
    line.pop(); // \n
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 header bytes".into()))
}

/// Decode `%xx` sequences in one path segment or query component;
/// `plus_as_space` additionally maps `+` to a space (query strings only).
fn percent_decode(s: &str, plus_as_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// One HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (reason phrase derived from it).
    pub status: u16,
    /// Extra headers (`Content-Length`, `Content-Type` and `Connection` are
    /// managed by the writer).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A binary response (`application/octet-stream`) — the sketch-transfer
    /// frames of the replication sync endpoints.
    pub fn octets(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/octet-stream",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A typed JSON error response, `{"error":{"code":...,"message":...}}`,
    /// with the code derived from the status via [`default_error_code`].
    /// Every error body the server emits goes through here (or
    /// [`Response::error_coded`]), so clients can branch on one stable
    /// machine-readable `code` across all endpoints.
    pub fn error(status: u16, message: &str) -> Self {
        Self::error_coded(status, default_error_code(status), message)
    }

    /// A typed JSON error response with an explicit `code` (for statuses
    /// that carry more than one distinct error kind, e.g. the plan
    /// endpoint's `invalid_plan` vs `needs_coalesce` under 400).
    pub fn error_coded(status: u16, code: &str, message: &str) -> Self {
        let mut body = String::from("{\"error\":{\"code\":");
        crate::json::write_escaped(&mut body, code);
        body.push_str(",\"message\":");
        crate::json::write_escaped(&mut body, message);
        body.push_str("}}");
        Self::json(status, body)
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize to `w`, announcing `keep_alive` in the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Stable machine-readable error code for a status (the `code` field of
/// the `{"error":{...}}` body when the emitter doesn't pick a finer one).
pub fn default_error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        411 => "length_required",
        421 => "wrong_owner",
        413 => "payload_too_large",
        431 => "headers_too_large",
        500 => "internal",
        501 => "unsupported",
        503 => "overloaded",
        _ => "error",
    }
}

/// Reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        421 => "Misdirected Request",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        // Query components: `+` is a space.
        assert_eq!(percent_decode("a%20b+c", true).as_deref(), Some("a b c"));
        // Path segments: `+` is a literal plus; %2F is a literal slash
        // *inside* the segment (splitting already happened).
        assert_eq!(percent_decode("a%20b+c", false).as_deref(), Some("a b+c"));
        assert_eq!(percent_decode("a%2Fb", false).as_deref(), Some("a/b"));
        assert_eq!(percent_decode("caf%C3%A9", false).as_deref(), Some("café"));
        assert!(percent_decode("%zz", false).is_none());
        assert!(percent_decode("%2", false).is_none());
        assert!(
            percent_decode("%ff", false).is_none(),
            "invalid UTF-8 rejected"
        );
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [
            200u16, 400, 404, 405, 408, 411, 413, 421, 431, 500, 501, 503,
        ] {
            assert_ne!(reason_phrase(code), "Unknown", "{code}");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }

    #[test]
    fn response_serialization_is_framed() {
        let resp =
            Response::json(200, "{\"ok\":true}".to_string()).with_header("x-opaq-version", "7");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-opaq-version: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_are_typed_json_objects() {
        let resp = Response::error(404, "no such \"entry\"");
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            "{\"error\":{\"code\":\"not_found\",\"message\":\"no such \\\"entry\\\"\"}}"
        );
        let resp = Response::error_coded(400, "needs_coalesce", "add '| coalesce'");
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            "{\"error\":{\"code\":\"needs_coalesce\",\"message\":\"add '| coalesce'\"}}"
        );
    }

    #[test]
    fn every_emitted_status_has_a_stable_code() {
        for code in [400u16, 404, 405, 408, 411, 413, 421, 431, 500, 501, 503] {
            assert_ne!(default_error_code(code), "error", "{code}");
        }
        assert_eq!(default_error_code(418), "error");
    }
}
