//! A minimal JSON reader/writer for the HTTP wire.
//!
//! The front-end needs exactly two things from JSON: parse small request
//! bodies (`{"phis": [0.1, 0.5]}`) and write response bodies whose bytes are
//! *reproducible* — the consistency harness re-renders the expected response
//! locally and compares byte-for-byte, so serialization must be a pure
//! function of the data.  To that end numbers are kept as their raw literal
//! text when parsing (no lossy `f64` round trip for `u64` keys near 2^64),
//! and writing uses Rust's shortest-round-trip float formatting.
//!
//! Deliberately not supported: non-UTF-8 input, duplicate-key semantics
//! (last one wins), numbers outside the JSON grammar.  Depth and size are
//! bounded so a hostile body cannot recurse or allocate unboundedly.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.  Numbers keep their raw literal text; use
/// [`Json::as_f64`] / [`Json::as_u64`] to interpret them.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its exact literal text from the input.
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in input order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: a message plus the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member `key` of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected a digit"));
        }
        // JSON forbids leading zeroes like "042".
        if int_digits > 1
            && self.bytes[if start < self.pos && self.bytes[start] == b'-' {
                start + 1
            } else {
                start
            }] == b'0'
        {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected a digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected a digit in exponent"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        Ok(Json::Num(raw.to_string()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Append `s` to `out` as a quoted JSON string with escaping.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` in Rust's shortest round-trip form (the writer's
/// half of the byte-reproducibility contract; callers must reject non-finite
/// values before serializing).
pub fn write_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "non-finite floats have no JSON form");
    out.push_str(&format!("{v}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse("-12.5e3").unwrap(),
            Json::Num("-12.5e3".to_string())
        );
        let v = Json::parse(r#"{"phis":[0.1,0.5,1],"tag":"a\nb"}"#).unwrap();
        let phis = v.get("phis").unwrap().as_array().unwrap();
        assert_eq!(phis.len(), 3);
        assert_eq!(phis[0].as_f64(), Some(0.1));
        assert_eq!(phis[2].as_u64(), Some(1));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a\nb"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn u64_precision_is_not_lost() {
        let v = Json::parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "01", "1.", "1e", "\"abc", "{\"a\"1}", "[1] x", "\"\\q\"",
            "nul", "+1", "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\u0041\t\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\té 😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse("\"a\u{01}b\"").is_err(), "raw control char");

        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{01}é");
        assert_eq!(out, r#""a\"b\\c\nd\u0001é""#);
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{01}é"));
    }

    #[test]
    fn f64_writer_round_trips_shortest_form() {
        for v in [0.0, 0.5, 0.4237, 1.0, 123456.789, 1e-9] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out.parse::<f64>().unwrap(), v, "{out}");
        }
    }
}
