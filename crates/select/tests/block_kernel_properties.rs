//! Property-based equivalence suite: the branchless block kernel against the
//! scalar Dutch-national-flag oracle.
//!
//! The block kernel must be *observationally identical* to the scalar one:
//! same [`Partition`] indices (they are a function of the multiset, not the
//! algorithm), same three regions as multisets, and — one level up — the
//! same selected values from `multiselect` for **every**
//! [`SelectionStrategy`].  Each property runs over four input shapes:
//! uniform random, duplicate-heavy (tiny domain), reversed, and all-equal —
//! exactly the shapes where a partition kernel with an off-by-one
//! equal-band bug would slip through uniform random testing.

use opaq_select::partition::{partition_three_way, partition_three_way_block, Partition};
use opaq_select::{multiselect_with, quickselect_block, regular_sample_ranks, SelectionStrategy};
use proptest::prelude::*;

/// The adversarial input shapes, materialised from a (seed, len, domain)
/// triple: uniform-ish hash spray, duplicate-heavy, reversed, all-equal,
/// plus a sawtooth that straddles the 128-element block boundary.
fn shapes(seed: u64, len: usize, domain: u64) -> Vec<Vec<u32>> {
    let len = len.max(1);
    let domain = domain.max(1);
    vec![
        // Uniform-ish spray over the full u32 range.
        (0..len as u64)
            .map(|i| (i.wrapping_add(seed).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u32)
            .collect(),
        // Duplicate-heavy: tiny domain.
        (0..len as u64)
            .map(|i| ((i.wrapping_mul(48271).wrapping_add(seed)) % domain) as u32)
            .collect(),
        // Reversed.
        (0..len as u32).rev().collect(),
        // All-equal.
        vec![(seed % u64::from(u32::MAX)) as u32; len],
        // Sawtooth around the block size.
        (0..len as u32).map(|i| i % 127).collect(),
    ]
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block partition returns the identical `Partition` as the scalar
    /// oracle and establishes the identical three-region layout.
    #[test]
    fn block_partition_equals_scalar_oracle(
        seed in any::<u64>(),
        len in 1usize..600,
        domain in 1u64..8,
        pivot_seed in any::<usize>(),
    ) {
        for data in shapes(seed, len, domain) {
            let pivot = pivot_seed % data.len();

            let mut scalar = data.clone();
            let ps: Partition = partition_three_way(&mut scalar, pivot);
            let mut block = data.clone();
            let pb = partition_three_way_block(&mut block, pivot);

            prop_assert_eq!(ps, pb, "equal band must not depend on the kernel");
            // Same multiset in each region (regions may be internally
            // permuted).
            prop_assert_eq!(
                sorted(scalar[..ps.lt].to_vec()),
                sorted(block[..pb.lt].to_vec())
            );
            prop_assert_eq!(
                sorted(scalar[ps.lt..ps.gt].to_vec()),
                sorted(block[pb.lt..pb.gt].to_vec())
            );
            prop_assert_eq!(
                sorted(scalar[ps.gt..].to_vec()),
                sorted(block[pb.gt..].to_vec())
            );
            // And the three-way invariant holds outright.
            let pv = block[pb.lt];
            prop_assert!(block[..pb.lt].iter().all(|x| *x < pv));
            prop_assert!(block[pb.lt..pb.gt].iter().all(|x| *x == pv));
            prop_assert!(block[pb.gt..].iter().all(|x| *x > pv));
        }
    }

    /// The block quickselect agrees with a full sort on every shape.
    #[test]
    fn block_quickselect_matches_sort(
        seed in any::<u64>(),
        len in 1usize..600,
        domain in 1u64..8,
        rank_seed in any::<usize>(),
    ) {
        for data in shapes(seed, len, domain) {
            let rank = rank_seed % data.len();
            let truth = sorted(data.clone());
            let mut work = data;
            prop_assert_eq!(*quickselect_block(&mut work, rank), truth[rank]);
            let v = truth[rank];
            prop_assert!(work[..rank].iter().all(|x| *x <= v));
            prop_assert!(work[rank + 1..].iter().all(|x| *x >= v));
        }
    }

    /// `multiselect` returns identical values for every strategy — block or
    /// scalar, randomized or deterministic — on regular sample ranks, which
    /// is the invariant that keeps OPAQ sketches bit-identical across
    /// kernels.
    #[test]
    fn multiselect_agrees_across_all_strategies(
        seed in any::<u64>(),
        len in 1usize..600,
        domain in 1u64..8,
        s_seed in 1usize..64,
    ) {
        for data in shapes(seed, len, domain) {
            let m = data.len();
            let s = s_seed.min(m);
            let ranks = regular_sample_ranks(m, s);
            let truth = sorted(data.clone());
            let expected: Vec<u32> = ranks.iter().map(|&r| truth[r]).collect();
            for strategy in SelectionStrategy::ALL {
                let mut work = data.clone();
                let got = multiselect_with(&mut work, &ranks, strategy);
                prop_assert_eq!(&got, &expected, "{:?}", strategy);
            }
        }
    }

    /// Irregular (unsorted, arbitrary) rank sets also agree across
    /// strategies — this exercises multiselect's sorting fallback path.
    #[test]
    fn multiselect_irregular_ranks_agree(
        seed in any::<u64>(),
        len in 1usize..400,
        domain in 1u64..8,
        rank_count in 1usize..12,
    ) {
        for data in shapes(seed, len, domain) {
            let n = data.len();
            let mut ranks: Vec<usize> = (0..rank_count).map(|i| (i * 5407 + 3) % n).collect();
            ranks.sort_unstable();
            ranks.dedup();
            // Deliver them unsorted to exercise the sorting fallback.
            ranks.reverse();
            let truth = sorted(data.clone());
            let mut expected: Vec<u32> = ranks.iter().map(|&r| truth[r]).collect();
            expected.sort_unstable();
            for strategy in SelectionStrategy::ALL {
                let mut work = data.clone();
                let got = multiselect_with(&mut work, &ranks, strategy);
                prop_assert_eq!(&got, &expected, "{:?}", strategy);
            }
        }
    }
}
