//! Property-based tests for the selection substrate.

use opaq_select::{
    floyd_rivest_select, median_of_medians_select, multiselect_with, quickselect,
    quickselect_block, regular_sample_ranks, SelectionStrategy,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every strategy returns exactly the value a full sort would put at the
    /// requested rank, and establishes the partition invariant around it.
    #[test]
    fn all_strategies_agree_with_sort_and_partition(
        data in proptest::collection::vec(any::<i64>(), 1..500),
        rank_seed in any::<usize>(),
    ) {
        let rank = rank_seed % data.len();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let expected = sorted[rank];

        for (name, result) in [
            ("quickselect", { let mut w = data.clone(); let v = *quickselect(&mut w, rank); (v, w) }),
            ("quickselect_block", { let mut w = data.clone(); let v = *quickselect_block(&mut w, rank); (v, w) }),
            ("median_of_medians", { let mut w = data.clone(); let v = *median_of_medians_select(&mut w, rank); (v, w) }),
            ("floyd_rivest", { let mut w = data.clone(); let v = *floyd_rivest_select(&mut w, rank); (v, w) }),
        ]
        .map(|(n, (v, w))| (n, (v, w)))
        {
            let (value, work) = result;
            prop_assert_eq!(value, expected, "{} value mismatch", name);
            prop_assert!(work[..rank].iter().all(|x| *x <= value), "{} left invariant", name);
            prop_assert!(work[rank + 1..].iter().all(|x| *x >= value), "{} right invariant", name);
        }
    }

    /// Multi-selection of a random set of ranks equals per-rank selection.
    #[test]
    fn multiselect_matches_individual_selections(
        data in proptest::collection::vec(any::<u32>(), 1..400),
        rank_count in 1usize..16,
    ) {
        let len = data.len();
        let mut ranks: Vec<usize> = (0..rank_count).map(|i| (i * 7919 + 13) % len).collect();
        ranks.sort_unstable();
        ranks.dedup();

        let mut sorted = data.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = ranks.iter().map(|&r| sorted[r]).collect();

        for strategy in SelectionStrategy::ALL {
            let mut work = data.clone();
            let got = multiselect_with(&mut work, &ranks, strategy);
            prop_assert_eq!(&got, &expected, "{:?}", strategy);
        }
    }

    /// Regular sample ranks are strictly increasing, end at the maximum and
    /// have gaps of at most ceil(m/s).
    #[test]
    fn regular_ranks_structure(m in 1usize..10_000, s_seed in 1usize..2_000) {
        let s = s_seed.min(m);
        let ranks = regular_sample_ranks(m, s);
        prop_assert_eq!(ranks.len(), s);
        prop_assert_eq!(*ranks.last().unwrap(), m - 1);
        prop_assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        let max_gap = ranks
            .iter()
            .scan(0usize, |prev, &r| {
                let gap = r + 1 - *prev;
                *prev = r + 1;
                Some(gap)
            })
            .max()
            .unwrap();
        prop_assert!(max_gap <= m.div_ceil(s));
    }
}
