//! Partitioning primitives shared by the selection algorithms.
//!
//! All selection routines in this crate reduce to repeatedly partitioning a
//! slice around a pivot value.  To stay robust in the presence of heavy
//! duplication (the OPAQ experiments deliberately inject `n/10` duplicate
//! keys) we use a *three-way* partition: elements strictly less than the
//! pivot, elements equal to the pivot, and elements strictly greater.

/// Result of a three-way partition of a slice around a pivot value.
///
/// After partitioning, the slice is laid out as `[< pivot | == pivot | > pivot]`
/// and the two indices delimit the "equal" band: `lt` is the index of the
/// first element equal to the pivot and `gt` is the index one past the last
/// element equal to the pivot.  The band is never empty because the pivot
/// itself is part of the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Index of the first element equal to the pivot.
    pub lt: usize,
    /// Index one past the last element equal to the pivot.
    pub gt: usize,
}

impl Partition {
    /// Whether a 0-based `rank` falls inside the equal band, i.e. the pivot
    /// value *is* the order statistic of that rank.
    #[inline]
    pub fn contains(&self, rank: usize) -> bool {
        rank >= self.lt && rank < self.gt
    }
}

/// Three-way partition of `data` around the value currently stored at
/// `pivot_index`.
///
/// Returns the [`Partition`] describing the equal band.  Runs in `O(len)`
/// with a single forward scan (Dutch national flag).
///
/// # Panics
/// Panics if `pivot_index >= data.len()`.
pub fn partition_three_way<T: Ord>(data: &mut [T], pivot_index: usize) -> Partition {
    assert!(pivot_index < data.len(), "pivot index out of bounds");
    let len = data.len();
    // Move pivot to the end so we can compare against it by index without
    // aliasing issues.
    data.swap(pivot_index, len - 1);

    let mut lt = 0; // next slot for an element < pivot
    let mut i = 0; // scan cursor
    let mut gt = len - 1; // first slot of the region > pivot (pivot parked at end)

    while i < gt {
        match data[i].cmp(&data[len - 1]) {
            core::cmp::Ordering::Less => {
                data.swap(i, lt);
                lt += 1;
                i += 1;
            }
            core::cmp::Ordering::Equal => {
                i += 1;
            }
            core::cmp::Ordering::Greater => {
                gt -= 1;
                data.swap(i, gt);
            }
        }
    }
    // Move the pivot into the start of the "greater" region; it joins the
    // equal band.
    data.swap(gt, len - 1);
    gt += 1;

    debug_assert!(lt < gt);
    Partition { lt, gt }
}

/// Classic two-way Hoare-style partition used by the Floyd–Rivest algorithm,
/// which manages duplicate-heavy inputs through its sampling step instead.
///
/// Partitions `data` around the value at `pivot_index` and returns the final
/// index of the pivot; elements before that index are `<=` the pivot and
/// elements after it are `>=` the pivot.
pub fn partition_two_way<T: Ord>(data: &mut [T], pivot_index: usize) -> usize {
    let p = partition_three_way(data, pivot_index);
    // Any index inside the equal band is a valid two-way split point; the
    // middle keeps both sides balanced when duplicates abound.
    (p.lt + p.gt - 1) / 2
}

/// Insertion sort for tiny slices; used as the base case of the recursive
/// algorithms.  `O(len^2)` but with excellent constants for `len <= 32`.
pub fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_partitioned<T: Ord>(data: &[T], p: Partition) -> bool {
        let pivot = &data[p.lt];
        data[..p.lt].iter().all(|x| x < pivot)
            && data[p.lt..p.gt].iter().all(|x| x == pivot)
            && data[p.gt..].iter().all(|x| x > pivot)
    }

    #[test]
    fn three_way_basic() {
        let mut data = vec![5, 1, 7, 5, 3, 5, 9, 0, 5];
        let p = partition_three_way(&mut data, 0);
        assert!(is_partitioned(&data, p));
        assert_eq!(p.gt - p.lt, 4, "all four fives in the equal band");
    }

    #[test]
    fn three_way_all_equal() {
        let mut data = vec![2_u32; 17];
        let p = partition_three_way(&mut data, 8);
        assert_eq!(p.lt, 0);
        assert_eq!(p.gt, 17);
    }

    #[test]
    fn three_way_single_element() {
        let mut data = vec![42];
        let p = partition_three_way(&mut data, 0);
        assert_eq!((p.lt, p.gt), (0, 1));
    }

    #[test]
    fn three_way_sorted_and_reverse() {
        let mut asc: Vec<i32> = (0..50).collect();
        let p = partition_three_way(&mut asc, 25);
        assert!(is_partitioned(&asc, p));

        let mut desc: Vec<i32> = (0..50).rev().collect();
        let p = partition_three_way(&mut desc, 25);
        assert!(is_partitioned(&desc, p));
    }

    #[test]
    fn contains_band() {
        let p = Partition { lt: 3, gt: 6 };
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert!(p.contains(5));
        assert!(!p.contains(6));
    }

    #[test]
    fn two_way_split_point_holds_invariant() {
        let mut data = vec![9, 3, 9, 9, 1, 9, 2, 9];
        let idx = partition_two_way(&mut data, 0);
        let pivot = data[idx];
        assert!(data[..idx].iter().all(|x| *x <= pivot));
        assert!(data[idx + 1..].iter().all(|x| *x >= pivot));
    }

    #[test]
    fn insertion_sort_sorts() {
        let mut data = vec![5, 4, 3, 2, 1, 0, 9, 8, 7, 6];
        insertion_sort(&mut data);
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn insertion_sort_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        insertion_sort(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![7_u8];
        insertion_sort(&mut one);
        assert_eq!(one, vec![7]);
    }
}
