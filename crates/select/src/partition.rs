//! Partitioning primitives shared by the selection algorithms.
//!
//! All selection routines in this crate reduce to repeatedly partitioning a
//! slice around a pivot value.  To stay robust in the presence of heavy
//! duplication (the OPAQ experiments deliberately inject `n/10` duplicate
//! keys) we use a *three-way* partition: elements strictly less than the
//! pivot, elements equal to the pivot, and elements strictly greater.
//!
//! Two kernels produce that layout:
//!
//! * [`partition_three_way`] — the scalar Dutch-national-flag scan: one
//!   data-dependent branch per element.  Simple, and kept as the oracle the
//!   property tests compare against.
//! * [`partition_three_way_block`] — a BlockQuicksort-style kernel
//!   (Edelkamp & Weiß, ESA 2016): comparisons fill fixed-size offset
//!   buffers with unconditional stores and conditional *increments*, then
//!   the matching elements are swapped in bulk.  No branch in the scan
//!   depends on a key comparison, so random data no longer pays a ~50%
//!   misprediction rate per element.  Both kernels return the identical
//!   [`Partition`] (the equal band is a function of the multiset, not of
//!   the algorithm), which is what keeps OPAQ sketches bit-identical across
//!   kernels.

/// Result of a three-way partition of a slice around a pivot value.
///
/// After partitioning, the slice is laid out as `[< pivot | == pivot | > pivot]`
/// and the two indices delimit the "equal" band: `lt` is the index of the
/// first element equal to the pivot and `gt` is the index one past the last
/// element equal to the pivot.  The band is never empty because the pivot
/// itself is part of the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Index of the first element equal to the pivot.
    pub lt: usize,
    /// Index one past the last element equal to the pivot.
    pub gt: usize,
}

impl Partition {
    /// Whether a 0-based `rank` falls inside the equal band, i.e. the pivot
    /// value *is* the order statistic of that rank.
    #[inline]
    pub fn contains(&self, rank: usize) -> bool {
        rank >= self.lt && rank < self.gt
    }
}

/// Three-way partition of `data` around the value currently stored at
/// `pivot_index`.
///
/// Returns the [`Partition`] describing the equal band.  Runs in `O(len)`
/// with a single forward scan (Dutch national flag).
///
/// # Panics
/// Panics if `pivot_index >= data.len()`.
pub fn partition_three_way<T: Ord>(data: &mut [T], pivot_index: usize) -> Partition {
    assert!(pivot_index < data.len(), "pivot index out of bounds");
    let len = data.len();
    // Move pivot to the end so we can compare against it by index without
    // aliasing issues.
    data.swap(pivot_index, len - 1);

    let mut lt = 0; // next slot for an element < pivot
    let mut i = 0; // scan cursor
    let mut gt = len - 1; // first slot of the region > pivot (pivot parked at end)

    while i < gt {
        match data[i].cmp(&data[len - 1]) {
            core::cmp::Ordering::Less => {
                data.swap(i, lt);
                lt += 1;
                i += 1;
            }
            core::cmp::Ordering::Equal => {
                i += 1;
            }
            core::cmp::Ordering::Greater => {
                gt -= 1;
                data.swap(i, gt);
            }
        }
    }
    // Move the pivot into the start of the "greater" region; it joins the
    // equal band.
    data.swap(gt, len - 1);
    gt += 1;

    debug_assert!(lt < gt);
    Partition { lt, gt }
}

/// Block size of the branchless kernel: 128 offsets fit comfortably in L1
/// alongside the data block itself, and one `u32` offset buffer costs 512
/// bytes of stack.
const BLOCK: usize = 128;

/// Branchless stable-order-free compaction: move every element of `data`
/// satisfying `pred` to the front, returning how many there are.
///
/// The scan fills a fixed-size offset buffer with *unconditional* stores and
/// conditional increments (`offsets[num] = i; num += pred as usize`), so the
/// only data-dependent operation is an add — no unpredictable branch.  The
/// subsequent swap loop has fully predictable control flow.
#[inline]
fn block_partition_by<T, F: Fn(&T) -> bool>(data: &mut [T], pred: F) -> usize {
    let mut offsets = [0u32; BLOCK];
    let mut lt = 0usize; // data[..lt] satisfy pred
    let mut base = 0usize;
    while base < data.len() {
        let block_len = BLOCK.min(data.len() - base);
        let mut num = 0usize;
        for i in 0..block_len {
            // `num <= i < BLOCK` holds, so the store is always in bounds and
            // the bounds check is branch-predictable.
            offsets[num] = i as u32;
            num += usize::from(pred(&data[base + i]));
        }
        for &off in &offsets[..num] {
            // `lt` counts pred-satisfying elements among the scanned prefix,
            // so `lt <= base + off` always; the swap moves a failing element
            // into the scanned region where it stays put.
            data.swap(lt, base + off as usize);
            lt += 1;
        }
        base += block_len;
    }
    lt
}

/// Three-way partition of `data` around the value at `pivot_index`, using the
/// branchless block kernel.  Returns exactly the same [`Partition`] (and the
/// same three regions, as multisets) as [`partition_three_way`].
///
/// Two block passes produce the `[< | == | >]` layout: the first compacts
/// `< pivot` to the front, the second compacts `== pivot` to the front of the
/// remainder.  The second pass only scans the `>=` region, so the extra cost
/// is bounded by half the slice on balanced pivots — far cheaper than the
/// mispredictions it replaces.
///
/// # Panics
/// Panics if `pivot_index >= data.len()`.
pub fn partition_three_way_block<T: Ord>(data: &mut [T], pivot_index: usize) -> Partition {
    assert!(pivot_index < data.len(), "pivot index out of bounds");
    let len = data.len();
    // Park the pivot at the end so the body can be scanned against it
    // without aliasing the comparison target.
    data.swap(pivot_index, len - 1);
    let (body, pivot_slot) = data.split_at_mut(len - 1);
    let pivot = &pivot_slot[0];

    let lt = block_partition_by(body, |x| x < pivot);
    let eq = block_partition_by(&mut body[lt..], |x| x == pivot);

    // Un-park the pivot into the first `>` slot; it joins the equal band.
    let gt = lt + eq;
    data.swap(gt, len - 1);
    debug_assert!(lt <= gt && gt < len);
    Partition { lt, gt: gt + 1 }
}

/// Deterministic ninther (median of three medians of three) pivot sampling.
///
/// Returns the index of a pivot that is the median of nine elements spread
/// across `data` — the classic defence against sorted, reverse-sorted and
/// organ-pipe inputs without any RNG state, which keeps the block selection
/// kernels fully deterministic.  For slices shorter than nine elements the
/// middle index is returned.
pub fn ninther_index<T: Ord>(data: &[T]) -> usize {
    let len = data.len();
    if len < 9 {
        return len / 2;
    }
    let step = len / 8;
    let mid = len / 2;
    let a = median3_index(data, 0, step, 2 * step);
    let b = median3_index(data, mid - step, mid, mid + step);
    let c = median3_index(data, len - 1 - 2 * step, len - 1 - step, len - 1);
    median3_index(data, a, b, c)
}

/// Index (among `a`, `b`, `c`) holding the median of the three values.
#[inline]
fn median3_index<T: Ord>(data: &[T], a: usize, b: usize, c: usize) -> usize {
    let (va, vb, vc) = (&data[a], &data[b], &data[c]);
    if (va <= vb && vb <= vc) || (vc <= vb && vb <= va) {
        b
    } else if (vb <= va && va <= vc) || (vc <= va && va <= vb) {
        a
    } else {
        c
    }
}

/// Classic two-way Hoare-style partition used by the Floyd–Rivest algorithm,
/// which manages duplicate-heavy inputs through its sampling step instead.
///
/// Partitions `data` around the value at `pivot_index` and returns the final
/// index of the pivot; elements before that index are `<=` the pivot and
/// elements after it are `>=` the pivot.
pub fn partition_two_way<T: Ord>(data: &mut [T], pivot_index: usize) -> usize {
    let p = partition_three_way(data, pivot_index);
    // Any index inside the equal band is a valid two-way split point; the
    // middle keeps both sides balanced when duplicates abound.
    (p.lt + p.gt - 1) / 2
}

/// Insertion sort for tiny slices; used as the base case of the recursive
/// algorithms.  `O(len^2)` but with excellent constants for `len <= 32`.
pub fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_partitioned<T: Ord>(data: &[T], p: Partition) -> bool {
        let pivot = &data[p.lt];
        data[..p.lt].iter().all(|x| x < pivot)
            && data[p.lt..p.gt].iter().all(|x| x == pivot)
            && data[p.gt..].iter().all(|x| x > pivot)
    }

    #[test]
    fn three_way_basic() {
        let mut data = vec![5, 1, 7, 5, 3, 5, 9, 0, 5];
        let p = partition_three_way(&mut data, 0);
        assert!(is_partitioned(&data, p));
        assert_eq!(p.gt - p.lt, 4, "all four fives in the equal band");
    }

    #[test]
    fn three_way_all_equal() {
        let mut data = vec![2_u32; 17];
        let p = partition_three_way(&mut data, 8);
        assert_eq!(p.lt, 0);
        assert_eq!(p.gt, 17);
    }

    #[test]
    fn three_way_single_element() {
        let mut data = vec![42];
        let p = partition_three_way(&mut data, 0);
        assert_eq!((p.lt, p.gt), (0, 1));
    }

    #[test]
    fn three_way_sorted_and_reverse() {
        let mut asc: Vec<i32> = (0..50).collect();
        let p = partition_three_way(&mut asc, 25);
        assert!(is_partitioned(&asc, p));

        let mut desc: Vec<i32> = (0..50).rev().collect();
        let p = partition_three_way(&mut desc, 25);
        assert!(is_partitioned(&desc, p));
    }

    #[test]
    fn block_three_way_matches_scalar_layout() {
        // Exercise: short, exactly one block, several blocks, plus a ragged
        // tail; duplicate-heavy throughout.
        for len in [1usize, 2, 9, BLOCK, BLOCK + 1, 3 * BLOCK + 57, 5000] {
            let data: Vec<u32> = (0..len as u32).map(|i| (i * 48271) % 97).collect();
            for pivot in [0, len / 2, len - 1] {
                let mut scalar = data.clone();
                let ps = partition_three_way(&mut scalar, pivot);
                let mut block = data.clone();
                let pb = partition_three_way_block(&mut block, pivot);
                assert_eq!(ps, pb, "len {len} pivot {pivot}");
                assert!(is_partitioned(&block, pb), "len {len} pivot {pivot}");
            }
        }
    }

    #[test]
    fn block_three_way_all_equal_and_extremes() {
        let mut data = vec![2_u32; 1000];
        let p = partition_three_way_block(&mut data, 500);
        assert_eq!((p.lt, p.gt), (0, 1000));

        let mut asc: Vec<i32> = (0..1000).collect();
        let p = partition_three_way_block(&mut asc, 0);
        assert_eq!((p.lt, p.gt), (0, 1));
        let mut desc: Vec<i32> = (0..1000).rev().collect();
        let p = partition_three_way_block(&mut desc, 0);
        assert_eq!((p.lt, p.gt), (999, 1000));
    }

    #[test]
    fn ninther_picks_a_reasonable_pivot() {
        // On sorted data the ninther is the exact median region, never an end.
        let data: Vec<u32> = (0..10_000).collect();
        let idx = ninther_index(&data);
        assert!(data[idx] > 2_000 && data[idx] < 8_000, "got {}", data[idx]);
        // Tiny slices fall back to the middle.
        assert_eq!(ninther_index(&[5, 1, 4]), 1);
        assert_eq!(ninther_index(&[1]), 0);
    }

    #[test]
    fn contains_band() {
        let p = Partition { lt: 3, gt: 6 };
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert!(p.contains(5));
        assert!(!p.contains(6));
    }

    #[test]
    fn two_way_split_point_holds_invariant() {
        let mut data = vec![9, 3, 9, 9, 1, 9, 2, 9];
        let idx = partition_two_way(&mut data, 0);
        let pivot = data[idx];
        assert!(data[..idx].iter().all(|x| *x <= pivot));
        assert!(data[idx + 1..].iter().all(|x| *x >= pivot));
    }

    #[test]
    fn insertion_sort_sorts() {
        let mut data = vec![5, 4, 3, 2, 1, 0, 9, 8, 7, 6];
        insertion_sort(&mut data);
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn insertion_sort_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        insertion_sort(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![7_u8];
        insertion_sort(&mut one);
        assert_eq!(one, vec![7]);
    }
}
