//! Selection algorithms used by the OPAQ sampling phase.
//!
//! The OPAQ paper (Alsabti, Ranka, Singh — VLDB 1997) derives `s` *regular
//! samples* from every in-memory run of `m` elements: the elements of exact
//! rank `m/s, 2m/s, …, m` within the run.  Finding a single rank is the
//! classical *selection problem*; finding all `s` ranks at once is a
//! *multi-selection* problem which the paper solves in `O(m log s)` by
//! recursive median splitting (§2.1).
//!
//! This crate provides the complete substrate:
//!
//! * [`median_of_medians`] — the deterministic worst-case `O(n)` algorithm of
//!   Blum, Floyd, Pratt, Rivest and Tarjan (cited as `[ea72]` in the paper).
//! * [`floyd_rivest`] — the expected `O(n)` randomized SELECT algorithm of
//!   Floyd and Rivest (cited as `[FR75]`).
//! * [`quickselect`] — a pragmatic randomized quickselect used as the default
//!   strategy (small constants, in-place).
//! * [`multiselect`] — simultaneous selection of many order statistics by
//!   recursive partitioning, the workhorse of the sample phase.
//! * [`partition`] — three-way partitioning primitives shared by the
//!   algorithms above, duplicate-robust by construction: the scalar Dutch
//!   national flag scan *and* a branchless BlockQuicksort-style kernel
//!   ([`partition::partition_three_way_block`]) that replaces the
//!   per-element comparison branch with offset-buffer fills and bulk swaps.
//!
//! All algorithms operate in place on `&mut [T]` where `T: Ord`, never
//! allocate proportionally to the input (apart from recursion bookkeeping),
//! and are exact: they place the requested order statistic at its index and
//! return a reference to it.  Because selection is exact, **every strategy
//! returns the same values** — the choice only affects constant factors, so
//! OPAQ sketches are bit-identical across strategies and kernels.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod floyd_rivest;
pub mod median_of_medians;
pub mod multiselect;
pub mod partition;
pub mod quickselect;

pub use floyd_rivest::floyd_rivest_select;
pub use median_of_medians::median_of_medians_select;
pub use multiselect::{multiselect, multiselect_into, multiselect_with, regular_sample_ranks};
pub use quickselect::{quickselect, quickselect_block};

/// Strategy used for single-rank selection inside the multi-selection driver
/// and by the OPAQ sample phase.
///
/// All strategies are exact, so they select identical values; they differ
/// only in constant factors and worst-case guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionStrategy {
    /// Branchless quickselect: deterministic ninther pivot sampling over the
    /// BlockQuicksort three-way partition kernel (default — the fastest
    /// kernel on random data, and RNG-free).
    #[default]
    BlockQuickselect,
    /// Randomized quickselect with median-of-three pivoting over the scalar
    /// Dutch-national-flag partition (the paper notes the randomized
    /// selection "has small constant and is practically very efficient";
    /// kept as the reference scalar path).
    Quickselect,
    /// Deterministic median-of-medians (worst-case linear, `[ea72]`).
    MedianOfMedians,
    /// Floyd–Rivest SELECT (expected linear with very small constants,
    /// `[FR75]`); its partition step runs on the block kernel.
    FloydRivest,
}

impl SelectionStrategy {
    /// Every strategy, in a fixed order (test and benchmark helper).
    pub const ALL: [SelectionStrategy; 4] = [
        SelectionStrategy::BlockQuickselect,
        SelectionStrategy::Quickselect,
        SelectionStrategy::MedianOfMedians,
        SelectionStrategy::FloydRivest,
    ];

    /// Select the element of the given `rank` (0-based) within `data`,
    /// partially reordering `data` so that `data[rank]` holds the answer,
    /// everything before it is `<=` and everything after it is `>=`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `rank >= data.len()`.
    pub fn select<'a, T: Ord>(&self, data: &'a mut [T], rank: usize) -> &'a T {
        assert!(
            rank < data.len(),
            "selection rank {rank} out of bounds for slice of length {}",
            data.len()
        );
        match self {
            SelectionStrategy::BlockQuickselect => quickselect_block(data, rank),
            SelectionStrategy::Quickselect => quickselect(data, rank),
            SelectionStrategy::MedianOfMedians => median_of_medians_select(data, rank),
            SelectionStrategy::FloydRivest => floyd_rivest_select(data, rank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_strategies(mut data: Vec<u64>) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for strategy in SelectionStrategy::ALL {
            for rank in [0, data.len() / 3, data.len() / 2, data.len() - 1] {
                let mut work = data.clone();
                let got = *strategy.select(&mut work, rank);
                assert_eq!(got, sorted[rank], "{strategy:?} rank {rank}");
            }
        }
        // keep `data` used for clarity
        data.clear();
    }

    #[test]
    fn strategies_agree_with_sort_small() {
        check_all_strategies(vec![5, 3, 9, 1, 7, 7, 2, 8, 0, 4]);
    }

    #[test]
    fn strategies_agree_with_sort_duplicates() {
        check_all_strategies(vec![4; 33]);
        check_all_strategies(vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn strategies_agree_with_sort_larger() {
        let data: Vec<u64> = (0..1000).map(|i| (i * 2654435761_u64) % 4096).collect();
        check_all_strategies(data);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_out_of_bounds_panics() {
        let mut data = vec![1_u64, 2, 3];
        SelectionStrategy::Quickselect.select(&mut data, 3);
    }

    #[test]
    fn default_strategy_is_block_quickselect() {
        assert_eq!(
            SelectionStrategy::default(),
            SelectionStrategy::BlockQuickselect
        );
    }
}
