//! Floyd–Rivest SELECT: expected-linear selection with very small constants.
//!
//! Implements the algorithm from Floyd & Rivest, "Expected Time Bounds for
//! Selection" (CACM 1975), cited as `[FR75]` by the OPAQ paper.  The key idea
//! is to recursively select pivots from a small random sample sized so that
//! the target order statistic is sandwiched between two sample order
//! statistics with high probability, shrinking the working range to
//! `O(n^{2/3})` per round.
//!
//! The partition step — the only per-element work — runs on the branchless
//! block kernel ([`crate::partition::partition_three_way_block`]); the
//! sampling logic above it is untouched, and the selected values are exactly
//! those of the scalar implementation.

use crate::partition::{insertion_sort, partition_three_way_block};

const INSERTION_CUTOFF: usize = 64;
/// Range length above which the sampling step is applied (below it a plain
/// three-way quickselect step is cheaper).
const SAMPLING_THRESHOLD: usize = 600;

/// Select the element of 0-based `rank` in `data` using the Floyd–Rivest
/// algorithm.  Partially reorders `data` (see [`crate::quickselect`] for the
/// post-condition).
///
/// # Panics
/// Panics if `data` is empty or `rank >= data.len()`.
pub fn floyd_rivest_select<T: Ord>(data: &mut [T], rank: usize) -> &T {
    assert!(!data.is_empty(), "cannot select from an empty slice");
    assert!(rank < data.len(), "rank out of bounds");
    let mut lo = 0usize;
    let mut hi = data.len(); // exclusive
    while hi - lo > INSERTION_CUTOFF {
        let len = hi - lo;
        if len > SAMPLING_THRESHOLD {
            // Narrow [lo, hi) to a sub-range that still contains `rank` with
            // high probability by recursing on a sample-bounded window.
            let n = len as f64;
            let i = (rank - lo) as f64;
            let z = (2.0 / 3.0) * n.ln();
            let sd = 0.5
                * (z * n * (n - i) * i / n).sqrt().max(1.0)
                * if i < n / 2.0 { -1.0 } else { 1.0 };
            let sample = z.exp().powf(2.0 / 3.0); // ~ n^{2/3} * (ln n)^{1/3}
            let new_lo = (rank as f64 - i * sample / n + sd).max(lo as f64) as usize;
            let new_hi = ((rank as f64 + (n - i) * sample / n + sd) as usize + 1).min(hi);
            // Recursively place approximate fences; clamp defensively.
            let new_lo = new_lo.clamp(lo, rank);
            let new_hi = new_hi.clamp(rank + 1, hi);
            if new_lo > lo {
                floyd_rivest_inner(data, lo, hi, new_lo);
            }
            if new_hi < hi {
                floyd_rivest_inner(data, lo, hi, new_hi - 1);
            }
            // After fencing, elements outside [new_lo, new_hi) cannot hold the
            // answer only when the fences are exact order statistics — which
            // they are, because floyd_rivest_inner fully selects them.
            lo = new_lo;
            hi = new_hi;
            if hi - lo <= INSERTION_CUTOFF {
                break;
            }
        }
        // One three-way partition step around the middle element of the
        // current window (which after fencing is statistically close to the
        // target order statistic).
        let pivot_rel = (hi - lo) / 2;
        let p = partition_three_way_block(&mut data[lo..hi], pivot_rel);
        let (band_lo, band_hi) = (lo + p.lt, lo + p.gt);
        if rank < band_lo {
            hi = band_lo;
        } else if rank >= band_hi {
            lo = band_hi;
        } else {
            return &data[rank];
        }
    }
    insertion_sort(&mut data[lo..hi]);
    &data[rank]
}

/// Internal driver used to place "fence" order statistics; identical to the
/// public entry point but operating on an explicit window.
fn floyd_rivest_inner<T: Ord>(data: &mut [T], lo: usize, hi: usize, rank: usize) {
    debug_assert!(lo <= rank && rank < hi && hi <= data.len());
    let window = &mut data[lo..hi];
    let _ = crate::quickselect::quickselect_block(window, rank - lo);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_every_rank_small() {
        let base: Vec<u16> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        for (rank, &expected) in sorted.iter().enumerate() {
            let mut work = base.clone();
            assert_eq!(*floyd_rivest_select(&mut work, rank), expected);
        }
    }

    #[test]
    fn large_input_exercises_sampling_path() {
        let n = 50_000usize;
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(6364136223846793005) >> 33)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for rank in [0, 1, n / 10, n / 2, n - 2, n - 1] {
            let mut work = data.clone();
            assert_eq!(
                *floyd_rivest_select(&mut work, rank),
                sorted[rank],
                "rank {rank}"
            );
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut data: Vec<u32> = (0..20_000).map(|i| i % 7).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let rank = 13_000;
        assert_eq!(*floyd_rivest_select(&mut data, rank), sorted[rank]);
    }

    #[test]
    fn partial_order_invariant() {
        let mut data: Vec<i64> = (0..10_000)
            .map(|i| ((i * 2654435761_i64) % 5000) - 2500)
            .collect();
        let rank = 7777;
        let val = *floyd_rivest_select(&mut data, rank);
        assert!(data[..rank].iter().all(|x| *x <= val));
        assert!(data[rank + 1..].iter().all(|x| *x >= val));
    }

    proptest! {
        #[test]
        fn matches_sort(
            mut data in proptest::collection::vec(any::<i32>(), 1..2000),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            prop_assert_eq!(*floyd_rivest_select(&mut data, rank), sorted[rank]);
        }
    }
}
