//! Deterministic worst-case linear selection (median of medians).
//!
//! Implements the algorithm of Blum, Floyd, Pratt, Rivest and Tarjan
//! ("Time Bounds for Selection", 1972), cited as `[ea72]` by the OPAQ paper.
//! Guarantees `O(n)` comparisons in the worst case, which the paper uses to
//! state the `O(m log s)` worst-case bound for the sample phase.

use crate::partition::{insertion_sort, partition_three_way};

const GROUP: usize = 5;
const INSERTION_CUTOFF: usize = 32;

/// Select the element of 0-based `rank` in `data` using the deterministic
/// median-of-medians pivot rule.
///
/// Partially reorders `data`: on return `data[rank]` is the requested order
/// statistic, everything before it is `<=` and everything after it is `>=`.
///
/// # Panics
/// Panics if `data` is empty or `rank >= data.len()`.
pub fn median_of_medians_select<T: Ord>(data: &mut [T], rank: usize) -> &T {
    assert!(!data.is_empty(), "cannot select from an empty slice");
    assert!(rank < data.len(), "rank out of bounds");
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        let len = hi - lo;
        if len <= INSERTION_CUTOFF {
            insertion_sort(&mut data[lo..hi]);
            return &data[rank];
        }
        let pivot_rel = median_of_medians_pivot(&mut data[lo..hi]);
        let p = partition_three_way(&mut data[lo..hi], pivot_rel);
        let (band_lo, band_hi) = (lo + p.lt, lo + p.gt);
        if rank < band_lo {
            hi = band_lo;
        } else if rank >= band_hi {
            lo = band_hi;
        } else {
            return &data[rank];
        }
    }
}

/// Compute the index (relative to `slice`) of a pivot guaranteed to have at
/// least ~30% of the elements on either side: the median of the medians of
/// groups of five.
///
/// The group medians are swapped into the prefix `slice[..groups]`, and the
/// median of that prefix is found recursively; its index is returned.
fn median_of_medians_pivot<T: Ord>(slice: &mut [T]) -> usize {
    let len = slice.len();
    let groups = len / GROUP; // ignore the final partial group for pivot purposes
    if groups == 0 {
        return len / 2;
    }
    for g in 0..groups {
        let start = g * GROUP;
        insertion_sort(&mut slice[start..start + GROUP]);
        // Median of this group sits at start + 2; park it at position g.
        slice.swap(g, start + 2);
    }
    // Recursively select the median of the group medians in the prefix.
    let target = groups / 2;
    // The recursion terminates because `groups < len` strictly for len >= 5.
    let _ = median_of_medians_select(&mut slice[..groups], target);
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_every_rank_small() {
        let base: Vec<i32> = vec![13, -4, 0, 99, 7, 7, 7, 2, 55, -100, 8];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        for (rank, &expected) in sorted.iter().enumerate() {
            let mut work = base.clone();
            assert_eq!(*median_of_medians_select(&mut work, rank), expected);
        }
    }

    #[test]
    fn worst_case_patterns() {
        // Sorted, reverse sorted, organ pipe, all-equal: all are classic
        // quickselect killers; the deterministic rule must stay linear and
        // (more importantly here) correct.
        let n = 5000usize;
        let patterns: Vec<Vec<u32>> = vec![
            (0..n as u32).collect(),
            (0..n as u32).rev().collect(),
            (0..n as u32 / 2).chain((0..n as u32 / 2).rev()).collect(),
            vec![7; n],
        ];
        for base in patterns {
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for rank in [0, n / 4, n / 2, n - 1] {
                let mut work = base.clone();
                assert_eq!(*median_of_medians_select(&mut work, rank), sorted[rank]);
            }
        }
    }

    #[test]
    fn partial_order_invariant() {
        let mut data: Vec<u64> = (0..4096).map(|i| (i * 2654435761) % 65536).collect();
        let rank = 1000;
        let val = *median_of_medians_select(&mut data, rank);
        assert!(data[..rank].iter().all(|x| *x <= val));
        assert!(data[rank + 1..].iter().all(|x| *x >= val));
    }

    #[test]
    #[should_panic(expected = "rank out of bounds")]
    fn rank_out_of_bounds_panics() {
        let mut data = vec![1, 2, 3];
        median_of_medians_select(&mut data, 5);
    }

    proptest! {
        #[test]
        fn matches_sort(
            mut data in proptest::collection::vec(any::<u32>(), 1..400),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            prop_assert_eq!(*median_of_medians_select(&mut data, rank), sorted[rank]);
        }
    }
}
