//! Randomized quickselect with median-of-three pivoting.
//!
//! This is the default single-rank selector used by the OPAQ sample phase.
//! The paper observes that the randomized selection algorithm "has small
//! constant and is practically very efficient"; quickselect with a
//! three-way partition is the modern embodiment of that observation and is
//! additionally immune to duplicate-heavy inputs.

use crate::partition::{
    insertion_sort, ninther_index, partition_three_way, partition_three_way_block,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Slices at or below this length are sorted directly.
const INSERTION_CUTOFF: usize = 24;

/// Select the element of 0-based `rank` in `data`.
///
/// `data` is partially reordered: on return `data[rank]` is the requested
/// order statistic, all elements before it compare `<=` to it and all
/// elements after it compare `>=` to it.
///
/// Expected `O(n)`; worst case `O(n^2)` with vanishing probability thanks to
/// randomized pivoting (a deterministic fallback is available via
/// [`crate::median_of_medians_select`]).
///
/// # Panics
/// Panics if `data` is empty or `rank >= data.len()`.
pub fn quickselect<T: Ord>(data: &mut [T], rank: usize) -> &T {
    assert!(!data.is_empty(), "cannot select from an empty slice");
    assert!(rank < data.len(), "rank out of bounds");
    // Deterministic seed: reproducible runs matter more for experiment
    // harnesses than adversarial resistance; the seed still decorrelates the
    // pivot choice from the input order.
    let mut rng = SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
    quickselect_with_rng(data, rank, &mut rng)
}

/// [`quickselect`] with a caller-provided random number generator.
pub fn quickselect_with_rng<'a, T: Ord, R: Rng>(
    data: &'a mut [T],
    rank: usize,
    rng: &mut R,
) -> &'a T {
    assert!(rank < data.len(), "rank out of bounds");
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        let len = hi - lo;
        if len <= INSERTION_CUTOFF {
            insertion_sort(&mut data[lo..hi]);
            return &data[rank];
        }
        let pivot_index = lo + median_of_three_index(&data[lo..hi], rng);
        let p = partition_three_way(&mut data[lo..hi], pivot_index - lo);
        let (band_lo, band_hi) = (lo + p.lt, lo + p.gt);
        if rank < band_lo {
            hi = band_lo;
        } else if rank >= band_hi {
            lo = band_hi;
        } else {
            return &data[rank];
        }
    }
}

/// Branchless quickselect: ninther pivot sampling plus the BlockQuicksort
/// three-way partition kernel ([`partition_three_way_block`]).
///
/// Same post-condition as [`quickselect`] — `data[rank]` holds the requested
/// order statistic with `<=` on the left and `>=` on the right — but the
/// inner loop contains no branch that depends on a key comparison, so random
/// inputs stop paying a misprediction per element.  Fully deterministic: the
/// ninther needs no RNG, which is what the OPAQ experiment harness wants for
/// reproducible runs.
///
/// # Panics
/// Panics if `data` is empty or `rank >= data.len()`.
pub fn quickselect_block<T: Ord>(data: &mut [T], rank: usize) -> &T {
    assert!(!data.is_empty(), "cannot select from an empty slice");
    assert!(rank < data.len(), "rank out of bounds");
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        let len = hi - lo;
        if len <= INSERTION_CUTOFF {
            insertion_sort(&mut data[lo..hi]);
            return &data[rank];
        }
        let pivot_index = ninther_index(&data[lo..hi]);
        let p = partition_three_way_block(&mut data[lo..hi], pivot_index);
        let (band_lo, band_hi) = (lo + p.lt, lo + p.gt);
        if rank < band_lo {
            hi = band_lo;
        } else if rank >= band_hi {
            lo = band_hi;
        } else {
            return &data[rank];
        }
    }
}

/// Pick three random positions and return the index (relative to `slice`) of
/// the one holding the median value.
fn median_of_three_index<T: Ord, R: Rng>(slice: &[T], rng: &mut R) -> usize {
    let len = slice.len();
    let a = rng.gen_range(0..len);
    let b = rng.gen_range(0..len);
    let c = rng.gen_range(0..len);
    let (va, vb, vc) = (&slice[a], &slice[b], &slice[c]);
    // Median of three by exhaustive comparison.
    if (va <= vb && vb <= vc) || (vc <= vb && vb <= va) {
        b
    } else if (vb <= va && va <= vc) || (vc <= va && va <= vb) {
        a
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_every_rank_of_small_input() {
        let base = vec![9_u32, 1, 8, 2, 7, 3, 6, 4, 5, 0];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        for (rank, &expected) in sorted.iter().enumerate() {
            let mut work = base.clone();
            assert_eq!(*quickselect(&mut work, rank), expected);
        }
    }

    #[test]
    fn partial_ordering_invariant_holds() {
        let mut data: Vec<u64> = (0..500).map(|i| (i * 48271) % 1009).collect();
        let rank = 250;
        let val = *quickselect(&mut data, rank);
        assert!(data[..rank].iter().all(|x| *x <= val));
        assert!(data[rank + 1..].iter().all(|x| *x >= val));
    }

    #[test]
    fn handles_all_duplicates() {
        let mut data = vec![3_u8; 1000];
        assert_eq!(*quickselect(&mut data, 999), 3);
        assert_eq!(*quickselect(&mut data, 0), 3);
    }

    #[test]
    fn handles_sorted_and_reverse_sorted() {
        let mut asc: Vec<u32> = (0..2000).collect();
        assert_eq!(*quickselect(&mut asc, 1234), 1234);
        let mut desc: Vec<u32> = (0..2000).rev().collect();
        assert_eq!(*quickselect(&mut desc, 1234), 1234);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_slice_panics() {
        let mut data: Vec<u32> = vec![];
        quickselect(&mut data, 0);
    }

    #[test]
    fn block_selects_every_rank_of_small_input() {
        let base = vec![9_u32, 1, 8, 2, 7, 3, 6, 4, 5, 0];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        for (rank, &expected) in sorted.iter().enumerate() {
            let mut work = base.clone();
            assert_eq!(*quickselect_block(&mut work, rank), expected);
        }
    }

    #[test]
    fn block_handles_duplicates_sorted_and_reverse() {
        let mut dup = vec![3_u8; 1000];
        assert_eq!(*quickselect_block(&mut dup, 999), 3);
        let mut asc: Vec<u32> = (0..2000).collect();
        assert_eq!(*quickselect_block(&mut asc, 1234), 1234);
        let mut desc: Vec<u32> = (0..2000).rev().collect();
        assert_eq!(*quickselect_block(&mut desc, 1234), 1234);
    }

    #[test]
    fn block_partial_ordering_invariant_holds() {
        let mut data: Vec<u64> = (0..5000).map(|i| (i * 48271) % 1009).collect();
        let rank = 2500;
        let val = *quickselect_block(&mut data, rank);
        assert!(data[..rank].iter().all(|x| *x <= val));
        assert!(data[rank + 1..].iter().all(|x| *x >= val));
    }

    proptest! {
        #[test]
        fn matches_sort_for_arbitrary_input(
            mut data in proptest::collection::vec(any::<i64>(), 1..300),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let got = *quickselect(&mut data, rank);
            prop_assert_eq!(got, sorted[rank]);
        }

        #[test]
        fn block_matches_sort_for_arbitrary_input(
            mut data in proptest::collection::vec(any::<i64>(), 1..300),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let got = *quickselect_block(&mut data, rank);
            prop_assert_eq!(got, sorted[rank]);
        }
    }
}
