//! Multi-selection: place many order statistics simultaneously.
//!
//! The OPAQ sample phase needs the elements of rank `m/s, 2m/s, …, m` inside
//! every run.  The paper's recipe (§2.1) is recursive median splitting: find
//! the median of the run, split, recurse on both halves until the sub-lists
//! reach size `m/s`, then take each sub-list maximum.  That is exactly
//! multi-selection, and the general formulation implemented here — recurse on
//! the *middle requested rank*, then solve the left ranks in the left part and
//! the right ranks in the right part — achieves the same `O(m log s)` bound
//! while supporting arbitrary rank sets (the quantile-phase unit tests use
//! irregular rank sets too).

use crate::SelectionStrategy;

/// Return the 0-based ranks of the `s` regular samples of a run of length `m`:
/// the elements of 1-based rank `⌈m/s⌉, ⌈2m/s⌉, …, m`.
///
/// When `s` does not divide `m` the ranks are spread as evenly as possible
/// (the paper assumes divisibility "without loss of generality" and notes the
/// algorithm is easily adjusted otherwise); the final sample is always the
/// run maximum, which is what the error-bound proofs rely on.
///
/// # Panics
/// Panics if `s == 0` or `s > m`.
pub fn regular_sample_ranks(m: usize, s: usize) -> Vec<usize> {
    assert!(s > 0, "sample size must be positive");
    assert!(s <= m, "sample size {s} cannot exceed run length {m}");
    (1..=s)
        .map(|i| {
            // 1-based rank ⌈i*m/s⌉ converted to a 0-based index.
            let rank_1based = (i * m).div_ceil(s);
            rank_1based - 1
        })
        .collect()
}

/// Simultaneously select all the order statistics listed in `ranks`
/// (0-based, may be unsorted but must be unique and in-bounds), using the
/// default [`SelectionStrategy`].
///
/// On return, `data[r]` holds the order statistic of rank `r` for every
/// `r ∈ ranks`, and the slice is partitioned consistently around those
/// positions.  Returns the selected values in ascending rank order.
///
/// The bound is `T: Copy` (OPAQ keys are fixed-width scalars): selected
/// values are plain loads from the reordered slice, never clones through a
/// reference chain.
///
/// # Panics
/// Panics if any rank is out of bounds or if `ranks` contains duplicates.
pub fn multiselect<T: Ord + Copy>(data: &mut [T], ranks: &[usize]) -> Vec<T> {
    multiselect_with(data, ranks, SelectionStrategy::default())
}

/// [`multiselect`] with an explicit single-rank [`SelectionStrategy`].
pub fn multiselect_with<T: Ord + Copy>(
    data: &mut [T],
    ranks: &[usize],
    strategy: SelectionStrategy,
) -> Vec<T> {
    let mut out = Vec::with_capacity(ranks.len());
    multiselect_into(data, ranks, strategy, &mut out);
    out
}

/// [`multiselect_with`] writing the selected values into a caller-provided
/// buffer (cleared first) instead of allocating a fresh one — the hot-path
/// entry point used by the sample phase.
///
/// When `ranks` is already strictly increasing (as produced by
/// [`regular_sample_ranks`]) this performs **no allocation at all** beyond
/// what `out` already owns; unsorted rank sets fall back to one scratch copy
/// for sorting.
pub fn multiselect_into<T: Ord + Copy>(
    data: &mut [T],
    ranks: &[usize],
    strategy: SelectionStrategy,
    out: &mut Vec<T>,
) {
    out.clear();
    if ranks.windows(2).all(|w| w[0] < w[1]) {
        // Pre-sorted (and therefore duplicate-free): select straight off the
        // caller's slice.
        check_bounds(ranks, data.len());
        recurse(data, 0, ranks, strategy);
        out.extend(ranks.iter().map(|&r| data[r]));
    } else {
        let mut sorted_ranks: Vec<usize> = ranks.to_vec();
        sorted_ranks.sort_unstable();
        for pair in sorted_ranks.windows(2) {
            assert!(
                pair[0] != pair[1],
                "duplicate rank {} in multiselect",
                pair[0]
            );
        }
        check_bounds(&sorted_ranks, data.len());
        recurse(data, 0, &sorted_ranks, strategy);
        out.extend(sorted_ranks.iter().map(|&r| data[r]));
    }
}

fn check_bounds(sorted_ranks: &[usize], len: usize) {
    if let Some(&max) = sorted_ranks.last() {
        assert!(
            max < len,
            "rank {max} out of bounds for slice of length {len}"
        );
    }
}

/// Recursive driver: `offset` is the absolute index of `data[0]` in the
/// original slice; `ranks` are absolute, sorted, and all fall inside
/// `[offset, offset + data.len())`.  Borrows sub-slices of both `data` and
/// `ranks` — no per-level allocation.
fn recurse<T: Ord>(data: &mut [T], offset: usize, ranks: &[usize], strategy: SelectionStrategy) {
    if ranks.is_empty() || data.is_empty() {
        return;
    }
    if data.len() == 1 {
        return;
    }
    // Select the middle requested rank; this splits both the data and the
    // remaining ranks roughly in half, giving the O(m log s) bound.
    let mid = ranks.len() / 2;
    let pivot_rank = ranks[mid];
    let rel = pivot_rank - offset;
    let _ = strategy.select(data, rel);
    // Left of `rel` everything is <= data[rel]; right of it everything is >=.
    let (left, rest) = data.split_at_mut(rel);
    let right = &mut rest[1..];
    recurse(left, offset, &ranks[..mid], strategy);
    recurse(right, offset + rel + 1, &ranks[mid + 1..], strategy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regular_ranks_divisible() {
        // m = 12, s = 4 -> 1-based ranks 3, 6, 9, 12 -> 0-based 2, 5, 8, 11.
        assert_eq!(regular_sample_ranks(12, 4), vec![2, 5, 8, 11]);
    }

    #[test]
    fn regular_ranks_not_divisible() {
        // m = 10, s = 3 -> 1-based ranks ceil(10/3)=4, ceil(20/3)=7, 10.
        assert_eq!(regular_sample_ranks(10, 3), vec![3, 6, 9]);
    }

    #[test]
    fn regular_ranks_always_end_at_max() {
        for m in [1usize, 2, 7, 100, 1001] {
            for s in [1usize, 2, 3, 5] {
                if s <= m {
                    let ranks = regular_sample_ranks(m, s);
                    assert_eq!(ranks.len(), s);
                    assert_eq!(*ranks.last().unwrap(), m - 1, "m={m} s={s}");
                    assert!(ranks.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn regular_ranks_s_too_large_panics() {
        regular_sample_ranks(3, 4);
    }

    #[test]
    fn multiselect_matches_sort() {
        let base: Vec<u32> = (0..200).map(|i| (i * 7919) % 151).collect();
        let ranks = vec![0usize, 10, 50, 99, 150, 199];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        let mut work = base.clone();
        let picked = multiselect(&mut work, &ranks);
        let expected: Vec<u32> = ranks.iter().map(|&r| sorted[r]).collect();
        assert_eq!(picked, expected);
        // In-place positions must also be correct.
        for &r in &ranks {
            assert_eq!(work[r], sorted[r]);
        }
    }

    #[test]
    fn multiselect_unsorted_rank_input() {
        let base: Vec<i32> = vec![5, -2, 8, 0, 3, 3, 9, -7, 1, 4];
        let mut sorted = base.clone();
        sorted.sort_unstable();
        let mut work = base.clone();
        let picked = multiselect(&mut work, &[7, 0, 3]);
        assert_eq!(picked, vec![sorted[0], sorted[3], sorted[7]]);
    }

    #[test]
    fn multiselect_all_strategies_agree() {
        let base: Vec<u64> = (0..5000).map(|i| (i * 2654435761) % 9973).collect();
        let ranks = regular_sample_ranks(base.len(), 16);
        let mut sorted = base.clone();
        sorted.sort_unstable();
        let expected: Vec<u64> = ranks.iter().map(|&r| sorted[r]).collect();
        for strategy in SelectionStrategy::ALL {
            let mut work = base.clone();
            assert_eq!(
                multiselect_with(&mut work, &ranks, strategy),
                expected,
                "{strategy:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn multiselect_duplicate_ranks_panic() {
        let mut data = vec![1, 2, 3, 4];
        multiselect(&mut data, &[1, 1]);
    }

    #[test]
    fn multiselect_single_element_slice() {
        let mut data = vec![42_u8];
        assert_eq!(multiselect(&mut data, &[0]), vec![42]);
    }

    proptest! {
        #[test]
        fn multiselect_regular_samples_match_sort(
            data in proptest::collection::vec(any::<u32>(), 1..500),
            s_seed in 1usize..32,
        ) {
            let m = data.len();
            let s = s_seed.min(m);
            let ranks = regular_sample_ranks(m, s);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let mut work = data.clone();
            let picked = multiselect(&mut work, &ranks);
            let expected: Vec<u32> = ranks.iter().map(|&r| sorted[r]).collect();
            prop_assert_eq!(picked, expected);
        }
    }
}
