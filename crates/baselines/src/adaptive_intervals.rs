//! The Agrawal–Swami one-pass algorithm (`[AS95]`).
//!
//! "The algorithm partitions the range of the values into `k` intervals and
//! counts the values in each interval.  The boundaries of intervals are
//! determined on-the-fly and are continuously adjusted as data is read from
//! disk."  Its limitation — the one the paper stresses — is that it provides
//! *no upper bound on the error rate*.
//!
//! This implementation keeps `k` equal-width intervals over the observed key
//! range.  When a key falls outside the current range, the range is grown to
//! cover it and existing counts are re-binned into the new intervals by
//! proportional (uniform-within-interval) redistribution — the on-the-fly
//! boundary adjustment of the original algorithm.  Quantile estimates locate
//! the interval containing the target rank and interpolate linearly inside
//! it.

use crate::StreamingEstimator;

/// Equal-width adaptive interval (histogram) estimator.
#[derive(Debug, Clone)]
pub struct AdaptiveIntervalEstimator {
    /// Interval counts, `counts.len() == k`.
    counts: Vec<f64>,
    /// Inclusive lower edge of the histogram range.
    lo: u64,
    /// Exclusive upper edge of the histogram range (`hi > lo` once started).
    hi: u64,
    seen: u64,
    k: usize,
}

impl AdaptiveIntervalEstimator {
    /// Create an estimator with `k` intervals.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "at least two intervals are required");
        Self {
            counts: vec![0.0; k],
            lo: 0,
            hi: 0,
            seen: 0,
            k,
        }
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) as f64 / self.k as f64
    }

    fn bucket_of(&self, key: u64) -> usize {
        debug_assert!(key >= self.lo && key < self.hi);
        let idx = ((key - self.lo) as f64 / self.width()) as usize;
        idx.min(self.k - 1)
    }

    /// Grow the range to `[new_lo, new_hi)` and redistribute existing counts
    /// proportionally into the new equal-width intervals.
    fn rescale(&mut self, new_lo: u64, new_hi: u64) {
        debug_assert!(new_lo <= self.lo && new_hi >= self.hi && new_hi > new_lo);
        let old_counts = std::mem::replace(&mut self.counts, vec![0.0; self.k]);
        let old_lo = self.lo as f64;
        let old_width = self.width();
        self.lo = new_lo;
        self.hi = new_hi;
        let new_width = self.width();
        if old_width <= 0.0 {
            // Degenerate old range (single point): drop everything into the
            // bucket containing the old point.
            let total: f64 = old_counts.iter().sum();
            let idx = (((old_lo - new_lo as f64) / new_width) as usize).min(self.k - 1);
            self.counts[idx] += total;
            return;
        }
        for (i, c) in old_counts.into_iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            // Old interval i spans [a, b); spread its count over the new
            // intervals it overlaps, proportionally to the overlap length.
            let a = old_lo + i as f64 * old_width;
            let b = a + old_width;
            let first = (((a - new_lo as f64) / new_width) as usize).min(self.k - 1);
            let last = (((b - new_lo as f64) / new_width).ceil() as usize).clamp(first + 1, self.k);
            for j in first..last {
                let ja = new_lo as f64 + j as f64 * new_width;
                let jb = ja + new_width;
                let overlap = (b.min(jb) - a.max(ja)).max(0.0);
                self.counts[j] += c * overlap / old_width;
            }
        }
    }
}

impl StreamingEstimator for AdaptiveIntervalEstimator {
    fn observe(&mut self, key: u64) {
        if self.seen == 0 {
            self.lo = key;
            self.hi = key + 1;
        } else if key < self.lo || key >= self.hi {
            // Grow geometrically so rescaling stays O(k log(range)).
            let mut new_lo = self.lo.min(key);
            let mut new_hi = self.hi.max(key + 1);
            let span = new_hi - new_lo;
            let current = self.hi - self.lo;
            if span < current * 2 {
                let extra = current * 2 - span;
                new_lo = new_lo.saturating_sub(extra / 2);
                new_hi = new_hi.saturating_add(extra - extra / 2);
            }
            self.rescale(new_lo, new_hi);
        }
        self.seen += 1;
        let b = self.bucket_of(key);
        self.counts[b] += 1.0;
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.seen == 0 || !(0.0..=1.0).contains(&phi) {
            return None;
        }
        let target = phi * self.seen as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if acc + c >= target || i == self.k - 1 {
                // Linear interpolation inside interval i.
                let into = if c > 0.0 {
                    ((target - acc) / c).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let a = self.lo as f64 + i as f64 * self.width();
                return Some((a + into * self.width()).round() as u64);
            }
            acc += c;
        }
        None
    }

    fn observed(&self) -> u64 {
        self.seen
    }

    fn memory_points(&self) -> usize {
        // k counters + 2 boundaries; counted in "points" like the paper does
        // when it equalises memory across algorithms.
        self.k + 2
    }

    fn name(&self) -> &'static str {
        "adaptive-intervals[AS95]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactish_for_uniform_data() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
            .collect();
        let mut est = AdaptiveIntervalEstimator::new(1000);
        est.observe_all(&data);
        let mut sorted = data;
        sorted.sort_unstable();
        for i in 1..10 {
            let phi = i as f64 / 10.0;
            let truth = sorted[((phi * sorted.len() as f64) as usize).min(sorted.len() - 1)] as f64;
            let got = est.estimate(phi).unwrap() as f64;
            assert!(
                (got - truth).abs() / 1_000_000.0 < 0.02,
                "phi {phi}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn adapts_when_range_grows() {
        let mut est = AdaptiveIntervalEstimator::new(100);
        // First a narrow range, then a much wider one.
        est.observe_all(&(1000..2000u64).collect::<Vec<_>>());
        est.observe_all(&(1_000_000..1_010_000u64).collect::<Vec<_>>());
        assert_eq!(est.observed(), 11_000);
        // Median of combined data is in the upper block.
        let got = est.estimate(0.5).unwrap();
        assert!(
            got >= 900_000,
            "median estimate {got} should be in the large block"
        );
        // 5th percentile is in the small block.
        let got = est.estimate(0.05).unwrap();
        assert!(
            got < 10_000,
            "5th percentile {got} should be in the small block"
        );
    }

    #[test]
    fn skewed_data_median_is_reasonable() {
        // Zipf-ish skew: many small values, few huge ones.
        let mut data = Vec::new();
        for i in 0..50_000u64 {
            data.push(i % 100);
        }
        for i in 0..1_000u64 {
            data.push(1_000_000 + i);
        }
        let mut est = AdaptiveIntervalEstimator::new(2000);
        est.observe_all(&data);
        let got = est.estimate(0.5).unwrap();
        // True median is ~50; with coarse intervals over a huge range the
        // estimate degrades but must stay well below the outlier block —
        // this documents AS95's lack of a hard bound.
        assert!(got < 600_000, "median estimate {got}");
    }

    #[test]
    fn single_value_stream() {
        let mut est = AdaptiveIntervalEstimator::new(10);
        est.observe_all(&[7; 100]);
        assert_eq!(est.estimate(0.5), Some(7));
    }

    #[test]
    fn empty_returns_none_and_invalid_phi_rejected() {
        let est = AdaptiveIntervalEstimator::new(10);
        assert_eq!(est.estimate(0.5), None);
        let mut est = AdaptiveIntervalEstimator::new(10);
        est.observe(1);
        assert_eq!(est.estimate(2.0), None);
    }

    #[test]
    fn memory_points_is_k_plus_boundaries() {
        assert_eq!(AdaptiveIntervalEstimator::new(100).memory_points(), 102);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn k_below_two_panics() {
        AdaptiveIntervalEstimator::new(1);
    }
}
