//! Random sampling baseline: reservoir sampling (Vitter's Algorithm R).
//!
//! The classical sampling estimator the paper contrasts with (`[Coc77]`):
//! draw a uniform random sample of fixed size, sort it, and read quantile
//! estimates off the sorted sample.  One pass, O(sample) memory, but only
//! probabilistic accuracy — no deterministic bound, which is the axis on
//! which OPAQ wins.

use crate::StreamingEstimator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random sample of fixed capacity over a stream.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    reservoir: Vec<u64>,
    seen: u64,
    rng: SmallRng,
}

impl ReservoirSampler {
    /// Create a sampler retaining at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            reservoir: Vec::with_capacity(capacity),
            seen: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The retained sample (unsorted).
    pub fn sample(&self) -> &[u64] {
        &self.reservoir
    }
}

impl StreamingEstimator for ReservoirSampler {
    fn observe(&mut self, key: u64) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(key);
        } else {
            // Algorithm R: replace a random slot with probability capacity/seen.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = key;
            }
        }
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.reservoir.is_empty() || !(0.0..=1.0).contains(&phi) {
            return None;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_unstable();
        let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    fn observed(&self) -> u64 {
        self.seen
    }

    fn memory_points(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "random-sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_when_under_capacity() {
        let mut r = ReservoirSampler::new(100, 1);
        r.observe_all(&[5, 3, 8]);
        assert_eq!(r.sample().len(), 3);
        assert_eq!(r.estimate(0.5), Some(5));
        assert_eq!(r.observed(), 3);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = ReservoirSampler::new(50, 2);
        r.observe_all(&(0..10_000u64).collect::<Vec<_>>());
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.memory_points(), 50);
    }

    #[test]
    fn sample_is_roughly_uniform_over_the_stream() {
        // With a large stream, the mean of the sample should approximate the
        // stream mean.
        let mut r = ReservoirSampler::new(2000, 3);
        let n = 200_000u64;
        r.observe_all(&(0..n).collect::<Vec<_>>());
        let mean = r.sample().iter().map(|&x| x as f64).sum::<f64>() / r.sample().len() as f64;
        let expected = (n - 1) as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn median_estimate_close_for_uniform_stream() {
        let mut r = ReservoirSampler::new(5000, 4);
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(48271) % 1_000_003)
            .collect();
        r.observe_all(&data);
        let mut sorted = data;
        sorted.sort_unstable();
        let truth = sorted[sorted.len() / 2] as f64;
        let got = r.estimate(0.5).unwrap() as f64;
        assert!((got - truth).abs() / 1_000_003.0 < 0.03);
    }

    #[test]
    fn empty_estimator_returns_none() {
        let r = ReservoirSampler::new(10, 0);
        assert_eq!(r.estimate(0.5), None);
    }

    #[test]
    fn invalid_phi_returns_none() {
        let mut r = ReservoirSampler::new(10, 0);
        r.observe(1);
        assert_eq!(r.estimate(1.5), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReservoirSampler::new(0, 0);
    }

    #[test]
    fn name_and_determinism() {
        let mk = || {
            let mut r = ReservoirSampler::new(100, 7);
            r.observe_all(&(0..10_000u64).collect::<Vec<_>>());
            r.estimate(0.25)
        };
        assert_eq!(mk(), mk());
        assert_eq!(ReservoirSampler::new(1, 0).name(), "random-sample");
    }
}
