//! The P² algorithm of Jain & Chlamtac (`[RC85]`).
//!
//! "In this algorithm, they store a constant number of elements and update
//! the elements as more elements are read.  This algorithm does not provide
//! any error bounds for the quantile estimates."  P² tracks one quantile with
//! five markers whose heights are adjusted by a piecewise-parabolic (hence
//! P²) prediction formula; memory is O(1) per tracked quantile.

use crate::StreamingEstimator;

/// P² estimator for a single quantile `phi`.
#[derive(Debug, Clone)]
pub struct P2Estimator {
    phi: f64,
    /// Marker heights (estimates of the 0, φ/2, φ, (1+φ)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations so far.
    count: u64,
    /// Initial observations buffered until five are available.
    initial: Vec<f64>,
}

impl P2Estimator {
    /// Create an estimator for the φ-quantile.
    ///
    /// # Panics
    /// Panics if `phi` is not strictly inside `(0, 1)`.
    pub fn new(phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be inside (0, 1)");
        Self {
            phi,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * phi, 1.0 + 4.0 * phi, 3.0 + 2.0 * phi, 5.0],
            increments: [0.0, phi / 2.0, phi, (1.0 + phi) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile fraction.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }
}

impl StreamingEstimator for P2Estimator {
    fn observe(&mut self, key: u64) {
        let x = key as f64;
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers if they drifted off their
        // desired positions by one or more.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // P² tracks exactly one quantile; requests for a different phi are
        // answered only if they match the configured one.
        if (phi - self.phi).abs() > 1e-9 {
            return None;
        }
        if self.initial.len() < 5 {
            // Fewer than five observations: answer from the buffered values.
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            return Some(sorted[rank - 1].round() as u64);
        }
        Some(self.heights[2].round().max(0.0) as u64)
    }

    fn observed(&self) -> u64 {
        self.count
    }

    fn memory_points(&self) -> usize {
        // 5 markers x (height, position, desired, increment) ~ 20 scalars.
        20
    }

    fn name(&self) -> &'static str {
        "p2[RC85]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_p2(data: &[u64], phi: f64) -> u64 {
        let mut est = P2Estimator::new(phi);
        est.observe_all(data);
        est.estimate(phi).unwrap()
    }

    #[test]
    fn median_of_uniform_stream() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(48271) % 1_000_000)
            .collect();
        let got = run_p2(&data, 0.5) as f64;
        assert!((got - 500_000.0).abs() < 30_000.0, "median {got}");
    }

    #[test]
    fn ninety_fifth_percentile_of_uniform_stream() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
            .collect();
        let got = run_p2(&data, 0.95) as f64;
        assert!((got - 950_000.0).abs() < 40_000.0, "p95 {got}");
    }

    #[test]
    fn tiny_streams_fall_back_to_buffered_values() {
        let mut est = P2Estimator::new(0.5);
        est.observe_all(&[10, 30, 20]);
        assert_eq!(est.estimate(0.5), Some(20));
        assert_eq!(est.observed(), 3);
    }

    #[test]
    fn rejects_mismatched_phi_and_empty() {
        let est = P2Estimator::new(0.5);
        assert_eq!(est.estimate(0.5), None);
        let mut est = P2Estimator::new(0.5);
        est.observe_all(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(est.estimate(0.9), None);
        assert!(est.estimate(0.5).is_some());
    }

    #[test]
    fn monotone_stream() {
        let data: Vec<u64> = (0..50_000).collect();
        let got = run_p2(&data, 0.25) as f64;
        assert!((got - 12_500.0).abs() < 2_500.0, "p25 {got}");
    }

    #[test]
    fn constant_stream() {
        let data = vec![42u64; 10_000];
        assert_eq!(run_p2(&data, 0.5), 42);
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn invalid_phi_panics() {
        P2Estimator::new(1.0);
    }

    #[test]
    fn accessors() {
        let est = P2Estimator::new(0.3);
        assert!((est.phi() - 0.3).abs() < 1e-12);
        assert_eq!(est.name(), "p2[RC85]");
        assert_eq!(est.memory_points(), 20);
    }
}
