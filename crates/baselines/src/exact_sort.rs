//! Exact quantiles by keeping (and sorting) everything.
//!
//! The trivial upper-bound baseline: exact answers, `O(n)` memory — the very
//! thing disk-resident datasets rule out, which is why the paper exists.
//! Used as ground truth in the comparison harness.

use crate::StreamingEstimator;

/// Stores every observed key; answers exactly.
#[derive(Debug, Clone, Default)]
pub struct ExactSortEstimator {
    keys: Vec<u64>,
}

impl ExactSortEstimator {
    /// Create an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamingEstimator for ExactSortEstimator {
    fn observe(&mut self, key: u64) {
        self.keys.push(key);
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.keys.is_empty() || !(0.0..=1.0).contains(&phi) {
            return None;
        }
        let mut sorted = self.keys.clone();
        sorted.sort_unstable();
        let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    fn observed(&self) -> u64 {
        self.keys.len() as u64
    }

    fn memory_points(&self) -> usize {
        self.keys.len()
    }

    fn name(&self) -> &'static str {
        "exact-sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_dectiles() {
        let data: Vec<u64> = (1..=1000).rev().collect();
        let mut est = ExactSortEstimator::new();
        est.observe_all(&data);
        for i in 1..10u64 {
            let phi = i as f64 / 10.0;
            assert_eq!(est.estimate(phi), Some(i * 100));
        }
        assert_eq!(est.memory_points(), 1000);
        assert_eq!(est.observed(), 1000);
    }

    #[test]
    fn duplicates_are_handled() {
        let mut est = ExactSortEstimator::new();
        est.observe_all(&[5, 5, 5, 1, 9]);
        assert_eq!(est.estimate(0.5), Some(5));
    }

    #[test]
    fn empty_and_invalid_phi() {
        let est = ExactSortEstimator::new();
        assert_eq!(est.estimate(0.5), None);
        let mut est = ExactSortEstimator::new();
        est.observe(1);
        assert_eq!(est.estimate(-1.0), None);
        assert_eq!(est.name(), "exact-sort");
    }
}
