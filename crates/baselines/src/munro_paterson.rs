//! The buffer-collapse sketch of Munro & Paterson (`[MP80]`).
//!
//! Munro and Paterson's "Selection and Sorting with Limited Storage" showed
//! how to approximate order statistics in one pass with a hierarchy of
//! fixed-size buffers that are repeatedly *collapsed* (merge two same-weight
//! sorted buffers, keep every other element, double the weight) — the scheme
//! later refined by Manku–Rajagopalan–Lindsay.  The paper cites it as the
//! single-pass algorithm that needs `O(n)` memory for exact answers; the
//! sketch below is the approximate, bounded-memory variant.

use crate::StreamingEstimator;

/// A Munro–Paterson / MRL-style collapsing buffer sketch.
#[derive(Debug, Clone)]
pub struct MunroPatersonSketch {
    /// `levels[l]` is an optional sorted buffer of exactly `k` elements, each
    /// standing for `2^l` original elements.
    levels: Vec<Option<Vec<u64>>>,
    /// The level-0 buffer currently being filled (unsorted).
    filling: Vec<u64>,
    /// Buffer capacity.
    k: usize,
    seen: u64,
}

impl MunroPatersonSketch {
    /// Create a sketch with (at least) `initial_levels` pre-allocated levels
    /// of buffers holding `k` elements each.  Memory grows by one buffer per
    /// doubling of the input beyond `k·2^initial_levels`.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn new(initial_levels: usize, k: usize) -> Self {
        assert!(k >= 2, "buffer capacity must be at least 2");
        Self {
            levels: vec![None; initial_levels],
            filling: Vec::with_capacity(k),
            k,
            seen: 0,
        }
    }

    /// Collapse two sorted same-weight buffers into one: merge and keep every
    /// other element (starting with the second, the usual MRL convention).
    fn collapse(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        debug_assert_eq!(a.len(), b.len());
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        merged.into_iter().skip(1).step_by(2).collect()
    }

    /// Insert a full, sorted buffer at `level`, carrying collapses upward
    /// like a binary counter.
    fn insert_buffer(&mut self, mut buffer: Vec<u64>, mut level: usize) {
        loop {
            if level >= self.levels.len() {
                self.levels.resize(level + 1, None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(buffer);
                    return;
                }
                Some(existing) => {
                    buffer = Self::collapse(existing, buffer);
                    level += 1;
                }
            }
        }
    }

    /// All retained elements with their weights.
    fn weighted_elements(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for &v in &self.filling {
            out.push((v, 1));
        }
        for (l, buf) in self.levels.iter().enumerate() {
            if let Some(buf) = buf {
                let w = 1u64 << l;
                out.extend(buf.iter().map(|&v| (v, w)));
            }
        }
        out
    }
}

impl StreamingEstimator for MunroPatersonSketch {
    fn observe(&mut self, key: u64) {
        self.seen += 1;
        self.filling.push(key);
        if self.filling.len() == self.k {
            let mut buffer = std::mem::replace(&mut self.filling, Vec::with_capacity(self.k));
            buffer.sort_unstable();
            self.insert_buffer(buffer, 0);
        }
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.seen == 0 || !(0.0..=1.0).contains(&phi) {
            return None;
        }
        let mut elements = self.weighted_elements();
        elements.sort_unstable_by_key(|&(v, _)| v);
        let total: u64 = elements.iter().map(|&(_, w)| w).sum();
        let target = ((phi * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0u64;
        for (v, w) in elements {
            acc += w;
            if acc >= target {
                return Some(v);
            }
        }
        None
    }

    fn observed(&self) -> u64 {
        self.seen
    }

    fn memory_points(&self) -> usize {
        self.k * (self.levels.len() + 1)
    }

    fn name(&self) -> &'static str {
        "munro-paterson[MP80]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_everything_fits_in_one_buffer() {
        let mut sk = MunroPatersonSketch::new(1, 1000);
        sk.observe_all(&(0..500u64).collect::<Vec<_>>());
        assert_eq!(sk.estimate(0.5), Some(249));
        assert_eq!(sk.estimate(1.0), Some(499));
    }

    #[test]
    fn approximate_median_of_large_uniform_stream() {
        let data: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
            .collect();
        let mut sk = MunroPatersonSketch::new(4, 500);
        sk.observe_all(&data);
        let got = sk.estimate(0.5).unwrap() as f64;
        assert!((got - 500_000.0).abs() < 50_000.0, "median {got}");
    }

    #[test]
    fn collapse_preserves_weighted_count() {
        let mut sk = MunroPatersonSketch::new(2, 64);
        sk.observe_all(&(0..10_000u64).collect::<Vec<_>>());
        let total: u64 = sk.weighted_elements().iter().map(|&(_, w)| w).sum();
        // Collapsing keeps the weighted count within one buffer of the truth
        // (the partially-filled level-0 buffer is exact).
        let diff = (total as i64 - 10_000i64).unsigned_abs();
        assert!(diff <= 64, "weighted total {total} too far from 10000");
    }

    #[test]
    fn sorted_and_reverse_inputs_give_similar_answers() {
        let asc: Vec<u64> = (0..50_000).collect();
        let desc: Vec<u64> = (0..50_000).rev().collect();
        let estimate = |data: &[u64]| {
            let mut sk = MunroPatersonSketch::new(4, 256);
            sk.observe_all(data);
            sk.estimate(0.25).unwrap() as f64
        };
        let a = estimate(&asc);
        let d = estimate(&desc);
        assert!((a - 12_500.0).abs() < 2_500.0, "{a}");
        assert!((d - 12_500.0).abs() < 2_500.0, "{d}");
    }

    #[test]
    fn memory_grows_logarithmically() {
        let mut sk = MunroPatersonSketch::new(1, 128);
        sk.observe_all(&(0..100_000u64).collect::<Vec<_>>());
        // 100k / 128 ≈ 781 buffers worth of data collapse into ~log2(781) ≈ 10 levels.
        assert!(
            sk.memory_points() <= 128 * 13,
            "memory {}",
            sk.memory_points()
        );
    }

    #[test]
    fn empty_and_invalid_phi() {
        let sk = MunroPatersonSketch::new(1, 16);
        assert_eq!(sk.estimate(0.5), None);
        let mut sk = MunroPatersonSketch::new(1, 16);
        sk.observe(3);
        assert_eq!(sk.estimate(-0.1), None);
        assert_eq!(sk.estimate(0.5), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_buffer_panics() {
        MunroPatersonSketch::new(1, 1);
    }
}
