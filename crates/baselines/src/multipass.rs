//! Multi-pass exact quantiles by iterative range narrowing.
//!
//! The paper cites `[GS90]` (Gurajada & Srivastava) as "a technique that
//! needs multiple passes over the data and produces accurate quantiles",
//! using a linear median-finding algorithm recursively to partition the data.
//! The equivalent disk-friendly formulation implemented here narrows a value
//! range around the target rank with a histogram per pass:
//!
//! 1. Build a `B`-bucket histogram of the current candidate range.
//! 2. Locate the bucket containing the target rank and recurse into it.
//! 3. Once the number of candidate elements fits in memory, read them and
//!    select exactly.
//!
//! Each pass reads the whole dataset; the number of passes is
//! `O(log_B(range))` and the memory is `O(B)` — the trade-off OPAQ's single
//! pass avoids.

use opaq_storage::{RunStore, StorageResult};

/// Result of the multi-pass exact computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipassResult {
    /// The exact quantile value.
    pub value: u64,
    /// Number of full passes over the data (including the final collect pass).
    pub passes: u32,
}

/// Compute the exact φ-quantile of `store` using at most `memory_elements`
/// elements of working memory (also used as the histogram width).
///
/// # Panics
/// Panics if `phi ∉ (0, 1]`, `memory_elements < 16`, or the store is empty.
pub fn multipass_exact_quantile<S: RunStore<u64>>(
    store: &S,
    phi: f64,
    memory_elements: usize,
) -> StorageResult<MultipassResult> {
    assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
    assert!(
        memory_elements >= 16,
        "need at least 16 elements of working memory"
    );
    let n = store.len();
    assert!(n > 0, "store must not be empty");
    let target = ((phi * n as f64).ceil() as u64).clamp(1, n);

    let mut lo = 0u64;
    let mut hi = u64::MAX;
    let mut rank_below_lo = 0u64; // elements strictly below lo
    let mut passes = 0u32;

    loop {
        passes += 1;
        // Final pass: candidates fit in memory -> collect and select exactly.
        let mut candidates: Vec<u64> = Vec::new();
        let mut too_many = false;
        let mut below = 0u64;
        let buckets = memory_elements;
        let span = hi - lo;
        let bucket_width = (span / buckets as u64).max(1);
        let mut counts = vec![0u64; buckets + 1];

        for run_idx in 0..store.layout().runs() {
            let run = store.read_run(run_idx)?;
            for key in run {
                if key < lo {
                    below += 1;
                } else if key <= hi {
                    if !too_many {
                        candidates.push(key);
                        if candidates.len() > memory_elements {
                            too_many = true;
                            candidates.clear();
                        }
                    }
                    let b = (((key - lo) / bucket_width) as usize).min(buckets);
                    counts[b] += 1;
                }
            }
        }
        debug_assert_eq!(below, rank_below_lo, "rank bookkeeping must be consistent");

        if !too_many {
            // Exact selection among the candidates.
            let rank_in_candidates = (target - rank_below_lo) as usize;
            debug_assert!(rank_in_candidates >= 1 && rank_in_candidates <= candidates.len());
            let value = *opaq_select::quickselect(&mut candidates, rank_in_candidates - 1);
            return Ok(MultipassResult { value, passes });
        }

        // The range has collapsed to a single value whose duplicates exceed
        // memory; no further narrowing is possible (or needed) — the target
        // rank falls on that value.
        if lo == hi {
            return Ok(MultipassResult { value: lo, passes });
        }

        // Narrow to the bucket containing the target rank.
        let mut acc = rank_below_lo;
        let mut chosen = buckets; // default: last bucket
        for (b, &c) in counts.iter().enumerate() {
            if acc + c >= target {
                chosen = b;
                break;
            }
            acc += c;
        }
        rank_below_lo = acc;
        lo += chosen as u64 * bucket_width;
        hi = if chosen == buckets {
            hi
        } else {
            lo.saturating_add(bucket_width - 1).min(hi)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_storage::MemRunStore;

    fn truth(data: &[u64], phi: f64) -> u64 {
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn exact_median_wide_domain() {
        let data: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(6364136223846793005))
            .collect();
        let store = MemRunStore::new(data.clone(), 5000);
        let r = multipass_exact_quantile(&store, 0.5, 1024).unwrap();
        assert_eq!(r.value, truth(&data, 0.5));
        assert!(
            r.passes >= 2,
            "wide domain needs narrowing passes, got {}",
            r.passes
        );
    }

    #[test]
    fn exact_all_dectiles_small_domain() {
        let data: Vec<u64> = (0..20_000u64).map(|i| i % 997).collect();
        let store = MemRunStore::new(data.clone(), 2000);
        for i in 1..10 {
            let phi = i as f64 / 10.0;
            let r = multipass_exact_quantile(&store, phi, 2048).unwrap();
            assert_eq!(r.value, truth(&data, phi), "phi {phi}");
        }
    }

    #[test]
    fn single_pass_when_everything_fits() {
        let data: Vec<u64> = (0..500).collect();
        let store = MemRunStore::new(data.clone(), 100);
        let r = multipass_exact_quantile(&store, 0.9, 1000).unwrap();
        assert_eq!(r.value, truth(&data, 0.9));
        assert_eq!(r.passes, 1);
    }

    #[test]
    fn duplicate_heavy_data() {
        let data: Vec<u64> = vec![42; 10_000];
        let store = MemRunStore::new(data, 1000);
        let r = multipass_exact_quantile(&store, 0.37, 64).unwrap();
        assert_eq!(r.value, 42);
    }

    #[test]
    fn extreme_quantiles() {
        let data: Vec<u64> = (1..=10_000u64).map(|i| i * 1_000_003).collect();
        let store = MemRunStore::new(data.clone(), 1000);
        assert_eq!(
            multipass_exact_quantile(&store, 1.0, 256).unwrap().value,
            truth(&data, 1.0)
        );
        assert_eq!(
            multipass_exact_quantile(&store, 0.0001, 256).unwrap().value,
            truth(&data, 0.0001)
        );
    }

    #[test]
    #[should_panic(expected = "phi must be in (0, 1]")]
    fn invalid_phi_panics() {
        let store = MemRunStore::new(vec![1u64, 2, 3], 3);
        let _ = multipass_exact_quantile(&store, 0.0, 64);
    }

    #[test]
    #[should_panic(expected = "working memory")]
    fn tiny_memory_panics() {
        let store = MemRunStore::new(vec![1u64, 2, 3], 3);
        let _ = multipass_exact_quantile(&store, 0.5, 4);
    }
}
