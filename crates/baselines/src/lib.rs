//! Baseline quantile estimators the OPAQ paper positions itself against.
//!
//! Section 1 of the paper surveys the prior art; Table 7 compares OPAQ's
//! accuracy (RER_A) against the one-pass algorithm of Agrawal & Swami
//! (`[AS95]`) and plain random sampling under an equal memory budget.  To run
//! that comparison ourselves — rather than quoting numbers — this crate
//! implements every comparator, plus the other algorithms the related-work
//! section discusses:
//!
//! * [`ReservoirSampler`] — uniform random sampling without replacement
//!   (Vitter's Algorithm R), the `[Coc77]`-style sampling estimator.
//! * [`AdaptiveIntervalEstimator`] — the `[AS95]` one-pass algorithm:
//!   partition the key range into `k` intervals whose boundaries are adjusted
//!   on the fly, count values per interval, interpolate inside the interval
//!   that straddles the target rank.
//! * [`P2Estimator`] — the P² algorithm of Jain & Chlamtac (`[RC85]`): five
//!   markers per quantile updated with a piecewise-parabolic rule, O(1)
//!   memory, no error bound.
//! * [`MunroPatersonSketch`] — the buffer-collapse multi-pass/streaming
//!   scheme of Munro & Paterson (`[MP80]`), the ancestor of the MRL sketch.
//! * [`GroupedMidpointEstimator`] — the `[SD77]` cell-midpoint estimator over
//!   a fixed, a-priori key range (accurate only when that range is right,
//!   which is exactly the weakness the paper points out).
//! * [`exact_sort`] — full-sort exact quantiles, the ground truth / upper
//!   bound on memory.
//! * [`multipass`] — GS90-style iterative range narrowing: exact quantiles in
//!   a few passes with bounded memory.
//!
//! All estimators implement [`StreamingEstimator`] so the comparison harness
//! can drive them uniformly, one key at a time, in a single pass.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive_intervals;
pub mod exact_sort;
pub mod grouped_midpoint;
pub mod multipass;
pub mod munro_paterson;
pub mod p2;
pub mod reservoir;

pub use adaptive_intervals::AdaptiveIntervalEstimator;
pub use exact_sort::ExactSortEstimator;
pub use grouped_midpoint::GroupedMidpointEstimator;
pub use multipass::multipass_exact_quantile;
pub use munro_paterson::MunroPatersonSketch;
pub use p2::P2Estimator;
pub use reservoir::ReservoirSampler;

/// A one-pass (streaming) quantile estimator over `u64` keys.
///
/// The paper's comparison (Table 7) gives every algorithm the same memory
/// budget, expressed in retained points; [`StreamingEstimator::memory_points`]
/// reports that footprint so the harness can normalise it.
pub trait StreamingEstimator {
    /// Observe one key.
    fn observe(&mut self, key: u64);

    /// Observe a whole slice of keys.
    fn observe_all(&mut self, keys: &[u64]) {
        for &k in keys {
            self.observe(k);
        }
    }

    /// Estimate the φ-quantile of everything observed so far.
    ///
    /// Returns `None` when nothing has been observed (or the estimator is
    /// otherwise unable to answer).
    fn estimate(&self, phi: f64) -> Option<u64>;

    /// Number of keys observed so far.
    fn observed(&self) -> u64;

    /// Approximate memory footprint in retained points (markers, samples,
    /// interval boundaries + counters, …).
    fn memory_points(&self) -> usize;

    /// A short display name for experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every estimator should produce a sane median for uniform data.
    #[test]
    fn all_estimators_bound_the_median_of_uniform_data() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let truth = sorted[sorted.len() / 2];

        let mut estimators: Vec<Box<dyn StreamingEstimator>> = vec![
            Box::new(ReservoirSampler::new(3000, 42)),
            Box::new(AdaptiveIntervalEstimator::new(1500)),
            Box::new(P2Estimator::new(0.5)),
            Box::new(MunroPatersonSketch::new(10, 300)),
            Box::new(GroupedMidpointEstimator::new(0, 1_000_000, 3000)),
            Box::new(ExactSortEstimator::new()),
        ];
        for est in &mut estimators {
            est.observe_all(&data);
            let got = est.estimate(0.5).expect("estimate available");
            let err = (got as f64 - truth as f64).abs() / 1_000_000.0;
            assert!(
                err < 0.05,
                "{}: median estimate {got} too far from {truth} (relative error {err})",
                est.name()
            );
            assert_eq!(est.observed(), data.len() as u64);
            assert!(est.memory_points() > 0);
        }
    }
}
