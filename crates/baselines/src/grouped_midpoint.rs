//! The grouped-data cell-midpoint estimator of Schmeiser & Deutsch (`[SD77]`).
//!
//! "An algorithm was proposed which partitions the range of the values into
//! `k` intervals.  The algorithm counts the number of elements in each
//! interval.  The counts of the intervals are used to estimate the quantile
//! value.  Unless we have a priori knowledge of the data set, this algorithm
//! may produce inaccurate estimates."  The estimator below takes that a
//! priori range as a constructor argument; keys outside it are clamped into
//! the edge cells, which is exactly how the inaccuracy the paper warns about
//! manifests.

use crate::StreamingEstimator;

/// Fixed-range, equal-width cell estimator answering with cell midpoints.
#[derive(Debug, Clone)]
pub struct GroupedMidpointEstimator {
    lo: u64,
    hi: u64,
    counts: Vec<u64>,
    seen: u64,
}

impl GroupedMidpointEstimator {
    /// Create an estimator with `cells` equal-width cells over the *assumed*
    /// key range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `cells == 0`.
    pub fn new(lo: u64, hi: u64, cells: usize) -> Self {
        assert!(hi > lo, "range must be non-empty");
        assert!(cells > 0, "at least one cell is required");
        Self {
            lo,
            hi,
            counts: vec![0; cells],
            seen: 0,
        }
    }

    fn cell_width(&self) -> f64 {
        (self.hi - self.lo) as f64 / self.counts.len() as f64
    }

    fn cell_of(&self, key: u64) -> usize {
        if key < self.lo {
            return 0;
        }
        if key >= self.hi {
            return self.counts.len() - 1;
        }
        (((key - self.lo) as f64 / self.cell_width()) as usize).min(self.counts.len() - 1)
    }
}

impl StreamingEstimator for GroupedMidpointEstimator {
    fn observe(&mut self, key: u64) {
        self.seen += 1;
        let c = self.cell_of(key);
        self.counts[c] += 1;
    }

    fn estimate(&self, phi: f64) -> Option<u64> {
        if self.seen == 0 || !(0.0..=1.0).contains(&phi) {
            return None;
        }
        let target = ((phi * self.seen as f64).ceil() as u64).clamp(1, self.seen);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let mid = self.lo as f64 + (i as f64 + 0.5) * self.cell_width();
                return Some(mid.round() as u64);
            }
        }
        None
    }

    fn observed(&self) -> u64 {
        self.seen
    }

    fn memory_points(&self) -> usize {
        self.counts.len() + 2
    }

    fn name(&self) -> &'static str {
        "grouped-midpoint[SD77]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_when_the_assumed_range_is_right() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(48271) % 1_000_000)
            .collect();
        let mut est = GroupedMidpointEstimator::new(0, 1_000_000, 2000);
        est.observe_all(&data);
        let mut sorted = data;
        sorted.sort_unstable();
        let truth = sorted[sorted.len() / 2] as f64;
        let got = est.estimate(0.5).unwrap() as f64;
        assert!((got - truth).abs() / 1_000_000.0 < 0.01, "{got} vs {truth}");
    }

    #[test]
    fn inaccurate_when_the_assumed_range_is_wrong() {
        // Data actually lives in [0, 1000) but the estimator assumed [0, 1e9).
        let data: Vec<u64> = (0..100_000u64).map(|i| i % 1000).collect();
        let mut est = GroupedMidpointEstimator::new(0, 1_000_000_000, 1000);
        est.observe_all(&data);
        let got = est.estimate(0.5).unwrap();
        // Everything falls in the first cell; the midpoint answer is off by
        // orders of magnitude — the paper's criticism made concrete.
        assert!(got > 100_000, "expected a wildly wrong estimate, got {got}");
    }

    #[test]
    fn keys_outside_the_range_are_clamped() {
        let mut est = GroupedMidpointEstimator::new(100, 200, 10);
        est.observe_all(&[5, 50, 150, 500, 5000]);
        assert_eq!(est.observed(), 5);
        // The median is attributed to the configured range even though the
        // true median (150) happens to be in range here.
        let got = est.estimate(0.5).unwrap();
        assert!((100..200).contains(&got));
    }

    #[test]
    fn empty_and_invalid_phi() {
        let est = GroupedMidpointEstimator::new(0, 10, 5);
        assert_eq!(est.estimate(0.5), None);
        let mut est = GroupedMidpointEstimator::new(0, 10, 5);
        est.observe(3);
        assert_eq!(est.estimate(7.0), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        GroupedMidpointEstimator::new(10, 10, 5);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        GroupedMidpointEstimator::new(0, 10, 0);
    }

    #[test]
    fn memory_points() {
        assert_eq!(
            GroupedMidpointEstimator::new(0, 10, 100).memory_points(),
            102
        );
    }
}
