//! Property-based tests for the baseline estimators: sanity invariants that
//! must hold for any input stream.

use opaq_baselines::{
    multipass_exact_quantile, AdaptiveIntervalEstimator, ExactSortEstimator, MunroPatersonSketch,
    ReservoirSampler, StreamingEstimator,
};
use opaq_storage::MemRunStore;
use proptest::prelude::*;

fn estimators() -> Vec<Box<dyn StreamingEstimator>> {
    vec![
        Box::new(ReservoirSampler::new(256, 1)),
        Box::new(AdaptiveIntervalEstimator::new(128)),
        Box::new(MunroPatersonSketch::new(3, 64)),
        Box::new(ExactSortEstimator::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every estimator's answer stays within the observed min/max (except the
    /// interval-interpolating ones, which may only overshoot by one cell) and
    /// the observation count is exact.
    #[test]
    fn estimates_stay_within_the_observed_range(
        data in proptest::collection::vec(0u64..1_000_000, 1..2_000),
        phi_percent in 1u64..100,
    ) {
        let phi = phi_percent as f64 / 100.0;
        let min = *data.iter().min().unwrap();
        let max = *data.iter().max().unwrap();
        let span = (max - min).max(1);
        for mut est in estimators() {
            est.observe_all(&data);
            prop_assert_eq!(est.observed(), data.len() as u64, "{}", est.name());
            let got = est.estimate(phi).expect("estimate must exist after observations");
            // Allow interpolating estimators one cell of slack on both sides.
            let slack = span / 16 + 1;
            prop_assert!(
                got + slack >= min && got <= max + slack,
                "{}: estimate {} outside [{}, {}]", est.name(), got, min, max
            );
        }
    }

    /// The exact-sort baseline is exactly the order statistic, and the
    /// multipass algorithm agrees with it.
    #[test]
    fn exact_baselines_agree_with_sort(
        data in proptest::collection::vec(any::<u64>(), 1..1_500),
        phi_percent in 1u64..=100,
    ) {
        let phi = phi_percent as f64 / 100.0;
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];

        let mut exact = ExactSortEstimator::new();
        exact.observe_all(&data);
        prop_assert_eq!(exact.estimate(phi), Some(truth));

        let store = MemRunStore::new(data, 128);
        let result = multipass_exact_quantile(&store, phi, 64).unwrap();
        prop_assert_eq!(result.value, truth);
    }

    /// The reservoir never holds more than its capacity, no matter how long
    /// the stream is, and it is deterministic for a fixed seed.
    #[test]
    fn reservoir_capacity_and_determinism(
        data in proptest::collection::vec(any::<u64>(), 1..3_000),
        capacity in 1usize..300,
    ) {
        let run = |seed: u64| {
            let mut r = ReservoirSampler::new(capacity, seed);
            r.observe_all(&data);
            (r.sample().len(), r.estimate(0.5))
        };
        let (len_a, est_a) = run(7);
        let (len_b, est_b) = run(7);
        prop_assert!(len_a <= capacity);
        prop_assert_eq!(len_a, data.len().min(capacity));
        prop_assert_eq!((len_a, est_a), (len_b, est_b));
    }
}
