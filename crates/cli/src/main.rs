//! `opaq` — command-line front end for the OPAQ reproduction.
//!
//! ```text
//! opaq generate  --out data.bin --n 1000000 --dist zipf --param 0.86 --seed 7
//! opaq sketch    --data data.bin --n 1000000 --run-length 100000 --sample-size 1000 --out data.sketch
//! opaq query     --sketch data.sketch --q 10
//! opaq query     --sketch data.sketch --phi 0.5,0.95,0.99
//! opaq rank      --sketch data.sketch --value 123456
//! opaq histogram --sketch data.sketch --buckets 32
//! opaq exact     --data data.bin --n 1000000 --run-length 100000 --sample-size 1000 --phi 0.5
//! ```
//!
//! Keys are unsigned 64-bit little-endian integers, densely packed, exactly
//! the format [`opaq_storage::FileRunStore`] reads and writes.

use opaq_cli::args::Args;
use opaq_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", commands::usage());
        return ExitCode::SUCCESS;
    }
    let command = argv[0].clone();
    let args = match Args::parse(&argv[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&command, &args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
