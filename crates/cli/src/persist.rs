//! Sketch persistence: save a [`QuantileSketch<u64>`] to disk and load it
//! back.
//!
//! Persisting the sorted sample list is what makes the paper's incremental
//! formulation practical ("if the sorted samples are kept from the runs of
//! the old data…"): the sketch of yesterday's data is a few kilobytes, so the
//! CLI writes it next to the data file and future runs only sample new runs.
//!
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic  "OPAQSKT1"                     8 bytes
//! total_elements, runs, max_gap         3 × u64 LE
//! dataset_min, dataset_max              2 × u64 LE
//! sample_count                          u64 LE
//! sample_count × (value u64, gap u64)   16 bytes each
//! ```

use crate::{CliError, CliResult};
use bytes::{Buf, BufMut};
use opaq_core::{QuantileSketch, SamplePoint};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OPAQSKT1";

/// Serialize a sketch into bytes.
pub fn to_bytes(sketch: &QuantileSketch<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 6 * 8 + sketch.len() * 16);
    out.put_slice(MAGIC);
    out.put_u64_le(sketch.total_elements());
    out.put_u64_le(sketch.runs());
    out.put_u64_le(sketch.max_gap());
    out.put_u64_le(sketch.dataset_min());
    out.put_u64_le(sketch.dataset_max());
    out.put_u64_le(sketch.len() as u64);
    for sp in sketch.samples() {
        out.put_u64_le(sp.value);
        out.put_u64_le(sp.gap);
    }
    out
}

/// Deserialize a sketch from bytes.
pub fn from_bytes(mut bytes: &[u8]) -> CliResult<QuantileSketch<u64>> {
    if bytes.len() < 8 + 6 * 8 || &bytes[..8] != MAGIC {
        return Err(CliError::Usage(
            "not an OPAQ sketch file (bad magic or truncated header)".to_string(),
        ));
    }
    bytes.advance(8);
    let total_elements = bytes.get_u64_le();
    let runs = bytes.get_u64_le();
    let max_gap = bytes.get_u64_le();
    let dataset_min = bytes.get_u64_le();
    let dataset_max = bytes.get_u64_le();
    let count = bytes.get_u64_le() as usize;
    // Divide rather than multiply: `count` comes from the file, and a crafted
    // value could overflow `count * 16` and slip past the truncation guard.
    if bytes.remaining() / 16 < count {
        return Err(CliError::Usage(format!(
            "sketch file truncated: expected {count} sample points"
        )));
    }
    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let value = bytes.get_u64_le();
        let gap = bytes.get_u64_le();
        samples.push(SamplePoint { value, gap });
    }
    if !samples.windows(2).all(|w| w[0].value <= w[1].value) {
        return Err(CliError::Usage(
            "sketch file corrupt: samples not sorted".to_string(),
        ));
    }
    if samples.iter().map(|s| s.gap).sum::<u64>() != total_elements {
        return Err(CliError::Usage(
            "sketch file corrupt: gaps do not sum to the element count".to_string(),
        ));
    }
    QuantileSketch::assemble(
        samples,
        total_elements,
        runs,
        max_gap,
        dataset_min,
        dataset_max,
    )
    .map_err(|e| CliError::Usage(format!("sketch file corrupt: {e}")))
}

/// Save a sketch to `path`.
pub fn save(sketch: &QuantileSketch<u64>, path: impl AsRef<Path>) -> CliResult<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&to_bytes(sketch))?;
    Ok(())
}

/// Load a sketch from `path`.
pub fn load(path: impl AsRef<Path>) -> CliResult<QuantileSketch<u64>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::{OpaqConfig, OpaqEstimator};
    use opaq_storage::MemRunStore;
    use std::path::PathBuf;

    fn sample_sketch() -> QuantileSketch<u64> {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 48271) % 65_536).collect();
        let store = MemRunStore::new(data, 1_000);
        let config = OpaqConfig::builder()
            .run_length(1_000)
            .sample_size(100)
            .build()
            .unwrap();
        OpaqEstimator::new(config).build_sketch(&store).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "opaq-cli-persist-{tag}-{}.sketch",
            std::process::id()
        ));
        p
    }

    #[test]
    fn bytes_round_trip_preserves_everything() {
        let sketch = sample_sketch();
        let restored = from_bytes(&to_bytes(&sketch)).unwrap();
        assert_eq!(restored, sketch);
        assert_eq!(
            restored.estimate(0.5).unwrap().upper,
            sketch.estimate(0.5).unwrap().upper
        );
    }

    #[test]
    fn file_round_trip() {
        let sketch = sample_sketch();
        let path = temp_path("file");
        save(&sketch, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored, sketch);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOTASKETCHFILE_AT_ALL_______________________________________")
            .unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_body_rejected() {
        let mut bytes = to_bytes(&sample_sketch());
        bytes.truncate(bytes.len() - 8);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_gap_sum_rejected() {
        let mut bytes = to_bytes(&sample_sketch());
        // Overwrite the first sample's gap (header is 56 bytes, value 8 bytes)
        // with a wrong-but-small value so the gap sum no longer matches.
        let off = 56 + 8;
        bytes[off..off + 8].copy_from_slice(&12_345u64.to_le_bytes()[..8]);
        assert!(from_bytes(&bytes).is_err());
    }
}
