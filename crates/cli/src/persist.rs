//! Sketch persistence: save a [`QuantileSketch<u64>`] to disk and load it
//! back.
//!
//! Persisting the sorted sample list is what makes the paper's incremental
//! formulation practical ("if the sorted samples are kept from the runs of
//! the old data…"): the sketch of yesterday's data is a few kilobytes, so the
//! CLI writes it next to the data file and future runs only sample new runs.
//!
//! The binary format — versioned header, FNV-1a checksum, fixed-width body —
//! lives in [`opaq_storage::sketch_codec`], where the serving catalog's
//! spill/reload path shares it; this module only composes that codec with
//! the core's semantic re-validation (`QuantileSketch::from_wire`).  Corrupt
//! files surface as typed [`StorageError::Corrupt`] /
//! [`StorageError::VersionMismatch`] errors, never as garbage decodes.
//!
//! [`StorageError::Corrupt`]: opaq_storage::StorageError::Corrupt
//! [`StorageError::VersionMismatch`]: opaq_storage::StorageError::VersionMismatch

use crate::CliResult;
use opaq_core::QuantileSketch;
use opaq_storage::sketch_codec;
use std::path::Path;

/// Serialize a sketch into bytes (current format version, checksummed).
pub fn to_bytes(sketch: &QuantileSketch<u64>) -> Vec<u8> {
    sketch_codec::to_bytes(&sketch.to_wire())
}

/// Deserialize a sketch from bytes, verifying checksum and invariants.
pub fn from_bytes(bytes: &[u8]) -> CliResult<QuantileSketch<u64>> {
    Ok(QuantileSketch::from_wire(sketch_codec::from_bytes(bytes)?)?)
}

/// Save a sketch to `path`.
pub fn save(sketch: &QuantileSketch<u64>, path: impl AsRef<Path>) -> CliResult<()> {
    Ok(sketch_codec::save(path, &sketch.to_wire())?)
}

/// Load a sketch from `path`.
pub fn load(path: impl AsRef<Path>) -> CliResult<QuantileSketch<u64>> {
    Ok(QuantileSketch::from_wire(sketch_codec::load(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CliError;
    use opaq_core::{OpaqConfig, OpaqEstimator};
    use opaq_storage::{MemRunStore, StorageError};
    use std::path::PathBuf;

    fn sample_sketch() -> QuantileSketch<u64> {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 48271) % 65_536).collect();
        let store = MemRunStore::new(data, 1_000);
        let config = OpaqConfig::builder()
            .run_length(1_000)
            .sample_size(100)
            .build()
            .unwrap();
        OpaqEstimator::new(config).build_sketch(&store).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "opaq-cli-persist-{tag}-{}.sketch",
            std::process::id()
        ));
        p
    }

    #[test]
    fn bytes_round_trip_preserves_everything() {
        let sketch = sample_sketch();
        let restored = from_bytes(&to_bytes(&sketch)).unwrap();
        assert_eq!(restored, sketch);
        assert_eq!(
            restored.estimate(0.5).unwrap().upper,
            sketch.estimate(0.5).unwrap().upper
        );
    }

    #[test]
    fn file_round_trip() {
        let sketch = sample_sketch();
        let path = temp_path("file");
        save(&sketch, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored, sketch);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOTASKETCHFILE_AT_ALL_______________________________________")
            .unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_body_rejected() {
        let mut bytes = to_bytes(&sample_sketch());
        bytes.truncate(bytes.len() - 8);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let mut bytes = to_bytes(&sample_sketch());
        // Flip one bit inside the sample list; the checksum catches it
        // before any semantic validation runs.
        let off = bytes.len() - 4;
        bytes[off] ^= 0x01;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(&err, CliError::Storage(StorageError::Corrupt(_))),
            "{err}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn future_version_is_a_typed_mismatch() {
        let mut bytes = to_bytes(&sample_sketch());
        bytes[7] = b'7';
        let err = from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                &err,
                CliError::Storage(StorageError::VersionMismatch { found: b'7', .. })
            ),
            "{err}"
        );
    }
}
