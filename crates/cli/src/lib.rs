//! Library backing the `opaq` command-line tool.
//!
//! The binary in `main.rs` is a thin shell around [`commands::run`]; all the
//! logic lives here so it can be unit- and integration-tested without
//! spawning processes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;
pub mod persist;

/// Errors surfaced by the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// The underlying OPAQ library reported an error.
    Opaq(opaq_core::OpaqError),
    /// The storage layer reported an error.
    Storage(opaq_storage::StorageError),
    /// The serving layer reported an error.
    Serve(opaq_serve::ServeError),
    /// A filesystem or I/O failure outside the storage layer.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Opaq(e) => write!(f, "{e}"),
            CliError::Storage(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<opaq_core::OpaqError> for CliError {
    fn from(e: opaq_core::OpaqError) -> Self {
        CliError::Opaq(e)
    }
}

impl From<opaq_storage::StorageError> for CliError {
    fn from(e: opaq_storage::StorageError) -> Self {
        CliError::Storage(e)
    }
}

impl From<opaq_serve::ServeError> for CliError {
    fn from(e: opaq_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Convenience alias for CLI results.
pub type CliResult<T> = Result<T, CliError>;
