//! A deliberately small `--key value` argument parser.
//!
//! The workspace avoids third-party CLI crates (DESIGN.md §6), and the tool
//! only needs flat `--key value` pairs plus boolean flags, so a ~100-line
//! parser is the honest choice.

use crate::{CliError, CliResult};
use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse a raw argument list (everything after the sub-command).
    ///
    /// `--key value` pairs populate [`Args::get`]; a trailing `--key` with no
    /// value (or followed by another `--key`) is recorded as a boolean flag.
    pub fn parse(argv: &[String]) -> CliResult<Self> {
        let mut args = Args::default();
        let mut i = 0usize;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{token}' (all options are --key value)"
                )));
            };
            if key.is_empty() {
                return Err(CliError::Usage("empty option name '--'".to_string()));
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether `--key` was given as a boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> CliResult<&str> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// A required option parsed as `u64`.
    pub fn require_u64(&self, key: &str) -> CliResult<u64> {
        self.require(key)?
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("option --{key} must be an unsigned integer")))
    }

    /// An optional option parsed as `u64`, with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> CliResult<u64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("option --{key} must be an unsigned integer"))
            }),
        }
    }

    /// An optional option parsed as `f64`, with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> CliResult<f64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| CliError::Usage(format!("option --{key} must be a number"))),
        }
    }

    /// A comma-separated list of `f64` values.
    pub fn f64_list(&self, key: &str) -> CliResult<Option<Vec<f64>>> {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for part in raw.split(',') {
            let v: f64 = part.trim().parse().map_err(|_| {
                CliError::Usage(format!(
                    "option --{key} must be a comma-separated list of numbers"
                ))
            })?;
            out.push(v);
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_pairs_and_flags() {
        let args = parse(&["--n", "1000", "--dist", "zipf", "--verbose"]);
        assert_eq!(args.get("n"), Some("1000"));
        assert_eq!(args.get("dist"), Some("zipf"));
        assert!(args.flag("verbose"));
        assert!(!args.flag("quiet"));
    }

    #[test]
    fn typed_accessors() {
        let args = parse(&["--n", "42", "--phi", "0.5,0.9", "--scale", "1.5"]);
        assert_eq!(args.require_u64("n").unwrap(), 42);
        assert_eq!(args.u64_or("missing", 7).unwrap(), 7);
        assert_eq!(args.f64_or("scale", 0.0).unwrap(), 1.5);
        assert_eq!(args.f64_list("phi").unwrap().unwrap(), vec![0.5, 0.9]);
        assert!(args.f64_list("missing").unwrap().is_none());
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let args = parse(&["--n", "42"]);
        assert!(args.require("out").is_err());
        assert!(matches!(
            args.require("out").unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn malformed_numbers_are_errors() {
        let args = parse(&["--n", "forty-two"]);
        assert!(args.require_u64("n").is_err());
        assert!(args.f64_or("n", 1.0).is_err());
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = Args::parse(&["data.bin".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn flag_followed_by_flag() {
        let args = parse(&["--fast", "--n", "5"]);
        assert!(args.flag("fast"));
        assert_eq!(args.require_u64("n").unwrap(), 5);
    }
}
