//! A deliberately small `--key value` argument parser.
//!
//! The workspace avoids third-party CLI crates (DESIGN.md §6), and the tool
//! only needs flat `--key value` pairs plus boolean flags, so a ~100-line
//! parser is the honest choice.

use crate::{CliError, CliResult};
use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse a raw argument list (everything after the sub-command).
    ///
    /// `--key value` pairs populate [`Args::get`]; a trailing `--key` with no
    /// value (or followed by another `--key`) is recorded as a boolean flag.
    pub fn parse(argv: &[String]) -> CliResult<Self> {
        let mut args = Args::default();
        let mut i = 0usize;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{token}' (all options are --key value)"
                )));
            };
            if key.is_empty() {
                return Err(CliError::Usage("empty option name '--'".to_string()));
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Check every provided key against the command's declared `options`
    /// (take a value) and `flags` (bare).  Catches the silent-degradation
    /// class of bug — `--theads 4` used to parse fine and fall back to the
    /// default thread count — with a typed [`CliError::Usage`] that names
    /// the offender, suggests a near-miss spelling, and points at the help.
    pub fn validate(&self, command: &str, options: &[&str], flags: &[&str]) -> CliResult<()> {
        let complain = |key: &str, detail: String| {
            // Exclude the key itself: misuse errors (flag given a value,
            // option given bare) would otherwise "suggest" the very key the
            // user typed, at distance 0.
            let suggestion = nearest(key, options.iter().chain(flags.iter()))
                .filter(|s| *s != key)
                .map(|s| format!(" (did you mean --{s}?)"))
                .unwrap_or_default();
            Err(CliError::Usage(format!(
                "{detail}{suggestion}; run `opaq help` for usage of '{command}'"
            )))
        };
        for key in self.values.keys() {
            if options.contains(&key.as_str()) {
                continue;
            }
            if flags.contains(&key.as_str()) {
                return complain(key, format!("flag --{key} takes no value"));
            }
            return complain(key, format!("unknown option --{key} for '{command}'"));
        }
        for key in &self.flags {
            if flags.contains(&key.as_str()) {
                continue;
            }
            if options.contains(&key.as_str()) {
                return complain(key, format!("option --{key} requires a value"));
            }
            return complain(key, format!("unknown flag --{key} for '{command}'"));
        }
        Ok(())
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether `--key` was given as a boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> CliResult<&str> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// A required option parsed as `u64`.
    pub fn require_u64(&self, key: &str) -> CliResult<u64> {
        self.require(key)?
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("option --{key} must be an unsigned integer")))
    }

    /// An optional option parsed as `u64`, with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> CliResult<u64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("option --{key} must be an unsigned integer"))
            }),
        }
    }

    /// An optional option parsed as `f64`, with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> CliResult<f64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| CliError::Usage(format!("option --{key} must be a number"))),
        }
    }

    /// A comma-separated list of `f64` values.
    pub fn f64_list(&self, key: &str) -> CliResult<Option<Vec<f64>>> {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for part in raw.split(',') {
            let v: f64 = part.trim().parse().map_err(|_| {
                CliError::Usage(format!(
                    "option --{key} must be a comma-separated list of numbers"
                ))
            })?;
            out.push(v);
        }
        Ok(Some(out))
    }
}

/// The closest declared key within Levenshtein distance 2, for "did you
/// mean" hints on typos like `--theads`.
fn nearest<'a>(key: &str, candidates: impl Iterator<Item = &'a &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (levenshtein(key, c), *c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current.push(substitution.min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_pairs_and_flags() {
        let args = parse(&["--n", "1000", "--dist", "zipf", "--verbose"]);
        assert_eq!(args.get("n"), Some("1000"));
        assert_eq!(args.get("dist"), Some("zipf"));
        assert!(args.flag("verbose"));
        assert!(!args.flag("quiet"));
    }

    #[test]
    fn typed_accessors() {
        let args = parse(&["--n", "42", "--phi", "0.5,0.9", "--scale", "1.5"]);
        assert_eq!(args.require_u64("n").unwrap(), 42);
        assert_eq!(args.u64_or("missing", 7).unwrap(), 7);
        assert_eq!(args.f64_or("scale", 0.0).unwrap(), 1.5);
        assert_eq!(args.f64_list("phi").unwrap().unwrap(), vec![0.5, 0.9]);
        assert!(args.f64_list("missing").unwrap().is_none());
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let args = parse(&["--n", "42"]);
        assert!(args.require("out").is_err());
        assert!(matches!(
            args.require("out").unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn malformed_numbers_are_errors() {
        let args = parse(&["--n", "forty-two"]);
        assert!(args.require_u64("n").is_err());
        assert!(args.f64_or("n", 1.0).is_err());
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = Args::parse(&["data.bin".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn flag_followed_by_flag() {
        let args = parse(&["--fast", "--n", "5"]);
        assert!(args.flag("fast"));
        assert_eq!(args.require_u64("n").unwrap(), 5);
    }

    #[test]
    fn validate_rejects_unknown_options_with_a_suggestion() {
        let args = parse(&["--theads", "4"]);
        let err = args
            .validate("sketch", &["threads", "data", "n"], &[])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown option --theads"), "{msg}");
        assert!(msg.contains("did you mean --threads?"), "{msg}");
        assert!(msg.contains("opaq help"), "{msg}");
    }

    #[test]
    fn validate_accepts_declared_keys() {
        let args = parse(&["--n", "4", "--quick"]);
        args.validate("cmd", &["n"], &["quick"]).unwrap();
    }

    #[test]
    fn validate_catches_flag_option_confusion() {
        // A flag given a value: `--quick yes` silently parsed as an option
        // before, making `flag("quick")` false.
        let args = parse(&["--quick", "yes"]);
        let err = args.validate("cmd", &["n"], &["quick"]).unwrap_err();
        assert!(err.to_string().contains("takes no value"), "{err}");
        assert!(
            !err.to_string().contains("did you mean --quick"),
            "must not suggest the key the user already typed: {err}"
        );
        // An option given bare: `--budget` with no value.
        let args = parse(&["--budget"]);
        let err = args.validate("cmd", &["budget"], &[]).unwrap_err();
        assert!(err.to_string().contains("requires a value"), "{err}");
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_flags() {
        let args = parse(&["--verbosee"]);
        let err = args.validate("cmd", &[], &["verbose"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown flag --verbosee"), "{msg}");
        assert!(msg.contains("did you mean --verbose?"), "{msg}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("threads", "threads"), 0);
        assert_eq!(levenshtein("theads", "threads"), 1);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert!(nearest("zzz", ["threads"].iter()).is_none());
    }
}
