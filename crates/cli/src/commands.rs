//! The `opaq` sub-commands.
//!
//! Every command is a pure function from parsed [`Args`] to an output string
//! so the whole tool is testable without spawning processes.

use crate::args::Args;
use crate::{persist, CliError, CliResult};
use opaq_core::{exact_quantile, IncrementalOpaq, OpaqConfig, OpaqEstimator};
use opaq_datagen::{DatasetSpec, Distribution};
use opaq_metrics::trace::{format_nanos, Stage};
use opaq_metrics::{SloThresholds, TextTable};
use opaq_net::json::write_escaped;
use opaq_net::{
    bootstrap, ChaosConfig, HashRing, HttpClient, HttpServer, HttpWorkloadSpec, Json,
    ReplicaWorkloadSpec, ReplicationStats, Replicator, RingConfig, RingMembership,
    RoutedWorkloadSpec, ServerConfig, Telemetry,
};
use opaq_parallel::ShardedOpaq;
use opaq_query::QueryPlan;
use opaq_select::SelectionStrategy;
use opaq_serve::{
    execute_on, DatasetId, QueryEngine, QueryOutput, QueryRequest, RefreshPool, SketchCatalog,
    TenantId, WorkloadSpec,
};
use opaq_storage::{FileRunStore, FileRunStoreBuilder, RunStore};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// The usage text printed by `opaq help`.
pub fn usage() -> String {
    "opaq — one-pass quantile estimation for disk-resident data (VLDB 1997 reproduction)

USAGE: opaq <command> [--key value ...]

COMMANDS:
  generate   --out FILE --n N [--dist uniform|zipf|normal|sorted|reverse] [--param P]
             [--domain D] [--dup FRACTION] [--seed S]
             write N u64 keys (little-endian) to FILE
  sketch     --data FILE --n N [--run-length M] [--sample-size S] [--out SKETCH]
             [--threads T] [--strategy block|quickselect|floyd-rivest|median-of-medians]
             one pass over FILE; print dectiles and optionally save the sketch.
             --threads > 1 shards the ingest over T worker threads; selection
             is exact, so the sketch is bit-identical for every thread count
             and strategy (default strategy: block, the branchless kernel)
  query      --sketch SKETCH [--q Q] [--phi P1,P2,...]
             estimate quantiles from a saved sketch (no data access)
             --expr 'fetch T/D | coalesce | quantile 0.5' --addr HOST:PORT
             compile a pipeline expression (see opaq-query: fetch by
             tenant/dataset glob, coalesce, then quantile/rank/profile) and
             run it against a serving front-end's POST /v1/query; prints
             the per-source (tenant, dataset, version, freshness)
             provenance alongside the estimates
  rank       --sketch SKETCH --value V
             bound the rank of an arbitrary value from a saved sketch
  histogram  --sketch SKETCH [--buckets B]
             print equi-depth histogram boundaries from a saved sketch
  exact      --data FILE --n N --phi P [--run-length M] [--sample-size S]
             [--strategy ...]
             exact quantile with one estimation pass plus one refinement pass
  serve-bench [--tenants M] [--clients N] [--ops K] [--keys-per-tenant D]
             [--run-length M] [--sample-size S] [--refreshes R] [--budget B]
             [--seed S] [--ttl-ms T] [--quick] [--http] [--qps Q]
             [--slo-p99-ms M] [--bench-out FILE] [--replicas N] [--chaos]
             [--groups G] [--vnodes V]
             replay a mixed read/refresh workload against the multi-tenant
             serving catalog: N client threads issue K typed queries each
             across M tenants while refreshes publish new sketch versions
             live; prints per-tenant p50/p90/p99/p999 latencies, throughput
             and the torn-read count (non-zero fails the command).
             --budget B caps resident sample points to force spill/reload;
             --quick shrinks everything for smoke runs.
             --http runs the same mix over real TCP through `opaq-net`: a
             loopback HTTP server is stood up, every response is verified
             byte-for-byte against its claimed sketch version, and a
             TTL probe tenant (--ttl-ms, default 150) must be observed
             serving stale-then-refreshed answers.
             --qps Q holds an aggregate *open-loop* offered rate instead of
             closed-loop as-fast-as-possible, with latency measured from
             each op's scheduled send time (coordinated-omission-safe).
             --slo-p99-ms M declares the objectives 'p99 <= M ms, zero
             errors, zero sheds'; any breach makes the command exit
             nonzero.  --bench-out FILE writes the machine-readable report
             (BENCH_serve.json format).
             --replicas N (with --http) stands up an N-replica fleet — one
             primary plus N-1 peer-bootstrapped secondaries kept in sync
             over the wire — and drives circuit-breaker failover clients
             across it.  --chaos additionally fronts every replica with a
             fault-injecting proxy and kills + restarts one replica
             mid-run; any torn or mis-versioned answer fails the command.
             --groups G (with --http, G >= 2) partitions the fleet: a
             consistent-hash ring (--vnodes V points per group, default
             128) splits the tenants across G replica groups of --replicas
             M each, clients route by ring ownership, every 7th op is
             deliberately misrouted to exercise the typed wrong_owner →
             one-hop re-route arc, and glob coalesce plans scatter across
             the groups and must match the unpartitioned-catalog oracle
             byte-for-byte; the summary reports per-group tenant/op
             balance.  Routed mode composes with --chaos, --qps and
             --slo-p99-ms; any torn, mis-owned or trace-violating answer
             fails the command
  serve      --addr HOST:PORT [--tenants M] [--keys-per-tenant D]
             [--run-length M] [--sample-size S] [--ttl-ms T]
             [--refresh-threads R] [--workers W] [--seed S]
             [--data-dir DIR] [--slo-p99-ms M] [--peer ADDR]
             [--peer-poll-ms P] [--ring FILE --group NAME]
             run the HTTP front-end over M synthetic tenants
             (tenant-0..M-1, dataset 'events').  Endpoints:
               GET  /v1/{tenant}/{dataset}/quantile?phi=0.5
               GET  /v1/{tenant}/{dataset}/rank?key=K
               GET  /v1/{tenant}/{dataset}/profile?count=B
               POST /v1/{tenant}/{dataset}/quantile_batch  {\"phis\":[...]}
               POST /v1/query  {\"plan\":\"fetch t-*/d | coalesce | ...\"}
               GET  /healthz | GET /metrics (Prometheus text)
               GET  /v1/_debug/trace?id=HEX | GET /v1/_debug/slow?n=N
             every response carries x-opaq-version, x-opaq-freshness and
             x-opaq-trace-id (echoed when the request sent a valid one,
             minted at the front door otherwise).
             --ttl-ms T ages entries: expired tenants serve stale until a
             background re-ingest (--refresh-threads workers) republishes.
             --data-dir DIR makes the catalog durable: every publish is
             committed to a write-ahead manifest + per-version sketch files
             under DIR, and a restart over the same DIR rebuilds the exact
             catalog (entries, versions, TTLs) instead of re-seeding.
             --slo-p99-ms M arms the server-side opaq_slo_breaches counter.
             --ring FILE --group NAME joins a partitioned fleet: FILE is
             the shared ring config ({\"vnodes\":128,\"groups\":[{\"name\":...,
             \"addrs\":[...]},...]}), NAME picks this server's group.  Ingest
             and TTL refresh are scoped to the tenants the group owns,
             every response carries x-opaq-owner, a single-tenant request
             for a peer's tenant is refused with the typed wrong_owner
             error (naming the owner and its addrs), and glob /v1/query
             plans scatter to the peer groups and fuse deterministically.
             --peer ADDR replicates instead of seeding: the catalog is
             bootstrapped from the peer's /v1/_sync endpoints before the
             server binds, then a background replicator polls for deltas
             every --peer-poll-ms (default 500); every entry is applied at
             the peer's exact version, so answers are byte-identical to
             the source.
             The server runs until stdin reaches EOF (or a 'quit' line),
             then shuts down cleanly and prints a summary (including the
             slowest request's trace id and its per-stage breakdown)
  trace      --addr HOST:PORT [--id HEX] [--slow N]
             observability client for a running front-end: --id HEX fetches
             /v1/_debug/trace and prints the request's span tree; --slow N
             (the default, N=10) fetches /v1/_debug/slow and prints the
             top-N slowest requests with their plan provenance — feed a
             printed trace id back through --id to drill into one
  help       print this text
"
    .to_string()
}

/// Dispatch a sub-command.
pub fn run(command: &str, args: &Args) -> CliResult<String> {
    match command {
        "generate" => generate(args),
        "sketch" => sketch(args),
        "query" => query(args),
        "rank" => rank(args),
        "histogram" => histogram(args),
        "exact" => exact(args),
        "serve-bench" => serve_bench(args),
        "serve" => serve(args),
        "trace" => trace(args),
        "help" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}' (run `opaq help` for the command list)"
        ))),
    }
}

fn parse_spec(args: &Args) -> CliResult<DatasetSpec> {
    let n = args.require_u64("n")?;
    let domain = args.u64_or("domain", 1 << 31)?;
    let seed = args.u64_or("seed", 42)?;
    let duplicate_fraction = args.f64_or("dup", 0.1)?;
    let distribution = match args.get("dist").unwrap_or("uniform") {
        "uniform" => Distribution::Uniform { domain },
        "zipf" => Distribution::Zipf {
            domain,
            parameter: args.f64_or("param", 0.86)?,
        },
        "normal" => Distribution::Normal {
            domain,
            mean: args.f64_or("mean", domain as f64 / 2.0)?,
            std_dev: args.f64_or("std-dev", domain as f64 / 8.0)?,
        },
        "sorted" => Distribution::Sorted,
        "reverse" => Distribution::ReverseSorted,
        other => {
            return Err(CliError::Usage(format!(
                "unknown distribution '{other}' (expected uniform, zipf, normal, sorted or reverse)"
            )))
        }
    };
    Ok(DatasetSpec {
        n,
        distribution,
        duplicate_fraction,
        seed,
    })
}

/// `opaq generate`: write a synthetic dataset file.
pub fn generate(args: &Args) -> CliResult<String> {
    args.validate(
        "generate",
        &[
            "out",
            "n",
            "dist",
            "param",
            "domain",
            "dup",
            "seed",
            "run-length",
            "mean",
            "std-dev",
        ],
        &[],
    )?;
    let out = args.require("out")?;
    let spec = parse_spec(args)?;
    let run_length = args.u64_or("run-length", (spec.n / 10).max(1))?;
    let keys = spec.generate();
    let store = FileRunStoreBuilder::<u64>::new(out, run_length)?
        .append(&keys)?
        .finish()?;
    Ok(format!(
        "wrote {} keys ({}) to {} as {} runs of up to {} keys\n",
        spec.n,
        spec.label(),
        out,
        store.layout().runs(),
        run_length
    ))
}

fn open_store(args: &Args) -> CliResult<(FileRunStore<u64>, u64, u64)> {
    let data = args.require("data")?;
    let n = args.require_u64("n")?;
    let run_length = args.u64_or("run-length", (n / 10).max(1))?;
    let sample_size = args.u64_or("sample-size", 1000)?.min(run_length);
    let store = FileRunStore::<u64>::open(data, n, run_length)?;
    Ok((store, run_length, sample_size))
}

/// Parse `--strategy` (default: the branchless block kernel).  Selection is
/// exact, so the choice never changes the sketch — only the CPU time.
fn parse_strategy(args: &Args) -> CliResult<SelectionStrategy> {
    Ok(match args.get("strategy").unwrap_or("block") {
        "block" => SelectionStrategy::BlockQuickselect,
        "quickselect" => SelectionStrategy::Quickselect,
        "floyd-rivest" => SelectionStrategy::FloydRivest,
        "median-of-medians" => SelectionStrategy::MedianOfMedians,
        other => {
            return Err(CliError::Usage(format!(
                "unknown strategy '{other}' (expected block, quickselect, floyd-rivest or \
                 median-of-medians)"
            )))
        }
    })
}

/// `opaq sketch`: one pass over a data file, print dectiles, optionally save.
///
/// With `--threads T > 1` the ingest is sharded over `T` worker threads fed
/// by a prefetching dispatcher; the resulting sketch is bit-identical to the
/// single-threaded one, so `--out` files are byte-for-byte reproducible
/// across thread counts.
pub fn sketch(args: &Args) -> CliResult<String> {
    args.validate(
        "sketch",
        &[
            "data",
            "n",
            "run-length",
            "sample-size",
            "out",
            "threads",
            "strategy",
        ],
        &[],
    )?;
    let (store, run_length, sample_size) = open_store(args)?;
    let threads = args.u64_or("threads", 1)?;
    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".to_string()));
    }
    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(sample_size)
        .strategy(parse_strategy(args)?)
        .build()?;

    let (sketch, mut out) = if threads > 1 {
        let sharded = ShardedOpaq::new(config, threads as usize)?;
        let (sketch, report) = sharded.build_sketch_with_report(&store)?;
        let header = format!(
            "built sketch: {} sample points over {} runs ({} keys); {} shards, dispatch {:?}, merge {:?}, io {:?}, buffers {} reused / {} allocated\n{}",
            sketch.len(),
            sketch.runs(),
            sketch.total_elements(),
            report.shards.len(),
            report.dispatch,
            report.merge,
            report.io.effective_io_time(),
            report.io.buffer_reuses,
            report.io.buffer_allocs,
            report.render_table()
        );
        (sketch, header)
    } else {
        let (sketch, stats) = OpaqEstimator::new(config).build_sketch_with_stats(&store)?;
        let io = store.io_stats().snapshot();
        let header = format!(
            "built sketch: {} sample points over {} runs ({} keys); io {:?}, sampling {:?}, merge {:?}, buffers {} reused / {} allocated\n",
            sketch.len(),
            sketch.runs(),
            sketch.total_elements(),
            stats.io,
            stats.sampling,
            stats.merge,
            io.buffer_reuses,
            io.buffer_allocs
        );
        (sketch, header)
    };
    out.push_str(&render_quantiles(&sketch, 10)?);
    if let Some(path) = args.get("out") {
        persist::save(&sketch, path)?;
        out.push_str(&format!("sketch saved to {path}\n"));
    }
    Ok(out)
}

fn render_quantiles(sketch: &opaq_core::QuantileSketch<u64>, q: u64) -> CliResult<String> {
    let mut table = TextTable::new(format!("{q}-quantile estimates (deterministic bounds)"))
        .header(["phi", "lower", "upper", "max slack (elements)"]);
    for est in profile_of(sketch, q)? {
        table.row([
            format!("{:.3}", est.phi),
            est.lower.to_string(),
            est.upper.to_string(),
            est.max_rank_slack.to_string(),
        ]);
    }
    Ok(table.render())
}

/// Run one typed request against a local sketch — the same
/// `QueryRequest`/`execute_on` model the HTTP routes and plan executor use,
/// so local and served answers can never drift.
fn execute_local(
    sketch: &opaq_core::QuantileSketch<u64>,
    request: &QueryRequest,
) -> CliResult<QueryOutput> {
    Ok(execute_on(sketch, request)?)
}

fn profile_of(
    sketch: &opaq_core::QuantileSketch<u64>,
    count: u64,
) -> CliResult<Vec<opaq_core::QuantileEstimate<u64>>> {
    match execute_local(sketch, &QueryRequest::Profile { count })? {
        QueryOutput::Profile(estimates) => Ok(estimates),
        other => Err(CliError::Usage(format!(
            "profile request answered with a non-profile output {other:?}"
        ))),
    }
}

/// `opaq query`: estimate quantiles from a saved sketch, or run a pipeline
/// expression against a remote serving front-end.
pub fn query(args: &Args) -> CliResult<String> {
    args.validate("query", &["sketch", "q", "phi", "expr", "addr"], &[])?;
    match (args.get("expr"), args.get("sketch")) {
        (Some(expr), None) => return query_remote(args, expr),
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--sketch (local) and --expr (remote pipeline) are mutually exclusive".to_string(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "query needs either --sketch SKETCH (local) or --expr 'PLAN' --addr HOST:PORT \
                 (remote pipeline)"
                    .to_string(),
            ))
        }
        (None, Some(_)) => {}
    }
    if args.get("addr").is_some() {
        return Err(CliError::Usage(
            "--addr only applies to --expr (remote pipeline) queries".to_string(),
        ));
    }
    let sketch = persist::load(args.require("sketch")?)?;
    if let Some(phis) = args.f64_list("phi")? {
        let output = execute_local(&sketch, &QueryRequest::QuantileBatch { phis })?;
        let QueryOutput::QuantileBatch(estimates) = output else {
            return Err(CliError::Usage(format!(
                "batch request answered with a non-batch output {output:?}"
            )));
        };
        let mut table = TextTable::new("quantile estimates").header(["phi", "lower", "upper"]);
        for est in estimates {
            table.row([
                format!("{:.4}", est.phi),
                est.lower.to_string(),
                est.upper.to_string(),
            ]);
        }
        Ok(table.render())
    } else {
        let q = args.u64_or("q", 10)?;
        render_quantiles(&sketch, q)
    }
}

/// `opaq query --expr`: POST the pipeline to a front-end's `/v1/query` and
/// render the provenance-tagged answer.
fn query_remote(args: &Args, expr: &str) -> CliResult<String> {
    let Some(addr) = args.get("addr") else {
        return Err(CliError::Usage(
            "--expr needs --addr HOST:PORT (the serving front-end to query)".to_string(),
        ));
    };
    // Compile locally first: same grammar, same typed stage errors — a bad
    // plan fails here without a round trip.
    QueryPlan::parse(expr).map_err(|e| CliError::Usage(format!("invalid plan: {e}")))?;
    let mut body = String::from("{\"plan\":");
    write_escaped(&mut body, expr);
    body.push('}');
    let mut client = HttpClient::new(addr.to_string());
    let response = client
        .post_json("/v1/query", &body)
        .map_err(|e| CliError::Usage(format!("could not query {addr}: {e}")))?;
    let text = response
        .body_str()
        .map_err(|e| CliError::Usage(format!("non-UTF-8 response body: {e}")))?;
    if response.status != 200 {
        return Err(CliError::Usage(format!(
            "{addr} answered HTTP {}: {text}",
            response.status
        )));
    }
    let parsed =
        Json::parse(text).map_err(|e| CliError::Usage(format!("malformed response: {e}")))?;
    render_plan_answer(&parsed, text)
}

/// Text rendering of a `/v1/query` response: the source provenance table,
/// then the estimates in the same shape the local commands print.
fn render_plan_answer(parsed: &Json, raw: &str) -> CliResult<String> {
    let malformed = || CliError::Usage(format!("malformed plan response: {raw}"));
    let sources = parsed
        .get("sources")
        .and_then(Json::as_array)
        .ok_or_else(malformed)?;
    let total = parsed
        .get("total_elements")
        .and_then(Json::as_u64)
        .ok_or_else(malformed)?;
    let mut table = TextTable::new(format!(
        "plan sources ({} entries, {total} elements fused)",
        sources.len()
    ))
    .header(["tenant", "dataset", "version", "freshness"]);
    for source in sources {
        table.row([
            source
                .get("tenant")
                .and_then(Json::as_str)
                .ok_or_else(malformed)?
                .to_string(),
            source
                .get("dataset")
                .and_then(Json::as_str)
                .ok_or_else(malformed)?
                .to_string(),
            source
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?
                .to_string(),
            source
                .get("freshness")
                .and_then(Json::as_str)
                .ok_or_else(malformed)?
                .to_string(),
        ]);
    }
    let mut out = table.render();
    let estimate_row = |table: &mut TextTable, est: &Json| -> CliResult<()> {
        table.row([
            format!(
                "{:.4}",
                est.get("phi")
                    .and_then(Json::as_f64)
                    .ok_or_else(malformed)?
            ),
            est.get("lower")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?
                .to_string(),
            est.get("upper")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?
                .to_string(),
        ]);
        Ok(())
    };
    if let Some(est) = parsed.get("estimate") {
        let mut table = TextTable::new("quantile estimate").header(["phi", "lower", "upper"]);
        estimate_row(&mut table, est)?;
        out.push_str(&table.render());
    } else if let Some(estimates) = parsed.get("estimates").and_then(Json::as_array) {
        let mut table = TextTable::new("quantile estimates").header(["phi", "lower", "upper"]);
        for est in estimates {
            estimate_row(&mut table, est)?;
        }
        out.push_str(&table.render());
    } else if let Some(rank) = parsed.get("rank") {
        out.push_str(&format!(
            "rank: between {} and {} of {total} elements\n",
            rank.get("min_rank")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?,
            rank.get("max_rank")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?,
        ));
    } else {
        return Err(malformed());
    }
    Ok(out)
}

/// `opaq rank`: bound the rank of a value from a saved sketch.
pub fn rank(args: &Args) -> CliResult<String> {
    args.validate("rank", &["sketch", "value"], &[])?;
    let sketch = persist::load(args.require("sketch")?)?;
    let value = args.require_u64("value")?;
    let output = execute_local(&sketch, &QueryRequest::Rank { key: value })?;
    let QueryOutput::Rank(bounds) = output else {
        return Err(CliError::Usage(format!(
            "rank request answered with a non-rank output {output:?}"
        )));
    };
    let (phi_lo, phi_hi) = bounds.phi_bounds(sketch.total_elements());
    Ok(format!(
        "rank of {value}: between {} and {} of {} elements (phi in [{:.4}, {:.4}])\n",
        bounds.min_rank,
        bounds.max_rank,
        sketch.total_elements(),
        phi_lo,
        phi_hi
    ))
}

/// `opaq histogram`: equi-depth bucket boundaries from a saved sketch.
pub fn histogram(args: &Args) -> CliResult<String> {
    args.validate("histogram", &["sketch", "buckets"], &[])?;
    let sketch = persist::load(args.require("sketch")?)?;
    let buckets = args.u64_or("buckets", 32)?;
    if buckets < 2 {
        return Err(CliError::Usage("--buckets must be at least 2".to_string()));
    }
    let mut table = TextTable::new(format!("{buckets}-bucket equi-depth histogram")).header([
        "bucket",
        "upper boundary (<=)",
        "approx depth",
    ]);
    let depth = sketch.total_elements() / buckets;
    let estimates = profile_of(&sketch, buckets)?;
    for (i, est) in estimates.iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            est.upper.to_string(),
            depth.to_string(),
        ]);
    }
    table.row([
        buckets.to_string(),
        sketch.dataset_max().to_string(),
        depth.to_string(),
    ]);
    Ok(table.render())
}

/// `opaq exact`: exact quantile via the §4 two-pass extension.
pub fn exact(args: &Args) -> CliResult<String> {
    args.validate(
        "exact",
        &["data", "n", "phi", "run-length", "sample-size", "strategy"],
        &[],
    )?;
    let (store, run_length, sample_size) = open_store(args)?;
    let phi = args.f64_or("phi", 0.5)?;
    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(sample_size)
        .strategy(parse_strategy(args)?)
        .build()?;
    let sketch = OpaqEstimator::new(config).build_sketch(&store)?;
    let result = exact_quantile(&store, &sketch, phi)?;
    Ok(format!(
        "exact {phi}-quantile = {} (rank {} of {}; second pass buffered {} candidates, bound {})\n",
        result.value,
        result.target_rank,
        store.len(),
        result.candidates_kept,
        sketch.max_elements_between_bounds()
    ))
}

/// `opaq serve-bench`: drive the multi-tenant serving layer under load.
///
/// Every response is verified byte-for-byte against the published sketch
/// version it claims to have been served from, so the command doubles as a
/// consistency check: any torn read makes it fail.
pub fn serve_bench(args: &Args) -> CliResult<String> {
    args.validate(
        "serve-bench",
        &[
            "tenants",
            "clients",
            "ops",
            "keys-per-tenant",
            "run-length",
            "sample-size",
            "refreshes",
            "budget",
            "seed",
            "ttl-ms",
            "qps",
            "slo-p99-ms",
            "bench-out",
            "replicas",
            "groups",
            "vnodes",
        ],
        &["quick", "http", "chaos"],
    )?;
    let base = if args.flag("quick") {
        WorkloadSpec::quick()
    } else {
        WorkloadSpec::default()
    };
    let budget = args.u64_or("budget", 0)?;
    let target_qps = match args.get("qps") {
        Some(_) => {
            let qps = args.f64_or("qps", 0.0)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(CliError::Usage(
                    "--qps must be a positive offered rate".to_string(),
                ));
            }
            Some(qps)
        }
        None => None,
    };
    // `--slo-p99-ms M` declares "p99 under M ms, zero errors, zero sheds" —
    // the conservative gate CI holds the open-loop bench to.
    let slo = match args.get("slo-p99-ms") {
        Some(_) => SloThresholds {
            p99: Some(Duration::from_millis(args.u64_or("slo-p99-ms", 0)?)),
            max_error_rate: Some(0.0),
            max_shed_rate: Some(0.0),
            ..Default::default()
        },
        None => SloThresholds::default(),
    };
    let spec = WorkloadSpec {
        tenants: args.u64_or("tenants", base.tenants as u64)? as usize,
        clients: args.u64_or("clients", base.clients as u64)? as usize,
        ops_per_client: args.u64_or("ops", base.ops_per_client)?,
        keys_per_tenant: args.u64_or("keys-per-tenant", base.keys_per_tenant)?,
        run_length: args.u64_or("run-length", base.run_length)?,
        sample_size: args.u64_or("sample-size", base.sample_size)?,
        refresh_rounds: args.u64_or("refreshes", base.refresh_rounds)?,
        budget_sample_points: (budget > 0).then_some(budget),
        spill_dir: None,
        seed: args.u64_or("seed", base.seed)?,
        target_qps,
    };
    let groups = args.u64_or("groups", 1)? as usize;
    if groups > 1 {
        // Routed-fleet mode: a consistent-hash ring partitions the tenants
        // across `groups` replica groups; clients route by ring ownership.
        if !args.flag("http") {
            return Err(CliError::Usage(
                "--groups partitions a fleet over real sockets — add --http".to_string(),
            ));
        }
        if budget > 0 {
            return Err(CliError::Usage(
                "--budget (spill/reload churn) is not supported in routed-fleet mode".to_string(),
            ));
        }
        return serve_bench_routed(args, spec, groups, slo);
    }
    if args.get("vnodes").is_some() {
        return Err(CliError::Usage(
            "--vnodes only makes sense with --groups N (N >= 2)".to_string(),
        ));
    }
    let replicas = args.u64_or("replicas", 1)? as usize;
    if replicas > 1 || args.flag("chaos") {
        if !args.flag("http") {
            return Err(CliError::Usage(
                "--replicas/--chaos drive a fleet over real sockets — add --http".to_string(),
            ));
        }
        if budget > 0 || target_qps.is_some() || args.get("slo-p99-ms").is_some() {
            return Err(CliError::Usage(
                "--budget/--qps/--slo-p99-ms are not supported in replica-fleet mode; the \
                 fleet run is closed-loop and gated on consistency, not latency"
                    .to_string(),
            ));
        }
        return serve_bench_replicas(args, spec, replicas.max(2));
    }
    if args.flag("http") {
        if budget > 0 {
            return Err(CliError::Usage(
                "--budget (spill/reload churn) is not supported in --http mode; the eviction \
                 workload runs in-process — drop --http or --budget"
                    .to_string(),
            ));
        }
        return serve_bench_http(args, spec, slo);
    }
    let report = opaq_serve::run_workload(&spec)?;
    let mut out = format!(
        "served {} requests from {} clients over {} tenants in {:?} ({:.0} ops/s); {} refreshes \
         published mid-workload, {} responses verified, {} torn reads\n",
        report.ops,
        spec.clients,
        spec.tenants,
        report.wall,
        report.throughput(),
        report.refreshes_published,
        report.verified,
        report.torn_reads,
    );
    out.push_str(&report.render());
    // In-process ops can't error or shed; the SLO verdicts are latency-only
    // plus the structural torn-read gate below.
    let outcome = slo.evaluate(&report.client_latency, 0.0, 0.0);
    out.push_str(&outcome.render("slo verdicts"));
    if let Some(path) = args.get("bench-out") {
        let json = render_bench_serve_json(
            "opaq serve-bench (in-process, open-loop)",
            &spec,
            target_qps,
            &report.client_latency,
            report.wall,
            report.ops,
            report.verified,
            report.torn_reads,
            0.0,
            0.0,
            &slo,
            &outcome,
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::Usage(format!("could not write {path}: {e}")))?;
        out.push_str(&format!("bench report written to {path}\n"));
    }
    if report.torn_reads > 0 {
        return Err(CliError::Usage(format!(
            "{} torn reads observed — served estimates diverged from every published sketch \
             version\n{out}",
            report.torn_reads
        )));
    }
    if outcome.is_breached() {
        return Err(CliError::Usage(format!(
            "{} of {} declared SLO objectives breached\n{out}",
            outcome.breaches(),
            outcome.checks.len()
        )));
    }
    Ok(out)
}

/// Render the machine-readable bench report (the `BENCH_serve.json` format:
/// same sections as `BENCH_select.json` — benchmark/command/recorded/host/
/// input/results/acceptance — hand-rolled like everything else JSON here).
#[allow(clippy::too_many_arguments)]
fn render_bench_serve_json(
    benchmark: &str,
    spec: &WorkloadSpec,
    target_qps: Option<f64>,
    latency: &opaq_metrics::LatencySnapshot,
    wall: Duration,
    ops: u64,
    verified: u64,
    torn_reads: u64,
    error_rate: f64,
    shed_rate: f64,
    slo: &SloThresholds,
    outcome: &opaq_metrics::SloOutcome,
) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1_000.0;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let qps_note = match target_qps {
        Some(qps) => format!("{qps:.0}"),
        None => "null".to_string(),
    };
    let slo_note = match slo.p99 {
        Some(p99) => format!("\"p99 <= {:.0} ms, zero errors, zero sheds\"", ms(p99)),
        None => "\"none declared\"".to_string(),
    };
    let mut command = format!(
        "opaq serve-bench{} --tenants {} --clients {} --ops {} --seed {}",
        if benchmark.contains("--http") {
            " --http"
        } else {
            ""
        },
        spec.tenants,
        spec.clients,
        spec.ops_per_client,
        spec.seed,
    );
    if let Some(qps) = target_qps {
        command.push_str(&format!(" --qps {qps:.0}"));
    }
    if let Some(p99) = slo.p99 {
        command.push_str(&format!(" --slo-p99-ms {:.0}", ms(p99)));
    }
    format!(
        "{{\n  \"benchmark\": \"{benchmark}\",\n  \"command\": \"{command}\",\n  \"recorded\": \"{}\",\n  \"host\": {{\n    \"cores\": {cores},\n    \"arch\": \"{}\",\n    \"note\": \"open-loop offered rate; latency measured from scheduled send times (coordinated-omission-safe)\"\n  }},\n  \"input\": {{\n    \"tenants\": {},\n    \"clients\": {},\n    \"ops_per_client\": {},\n    \"keys_per_tenant\": {},\n    \"run_length\": {},\n    \"sample_size\": {},\n    \"refresh_rounds\": {},\n    \"target_qps\": {qps_note},\n    \"seed\": {}\n  }},\n  \"results\": {{\n    \"ops\": {ops},\n    \"verified\": {verified},\n    \"torn_reads\": {torn_reads},\n    \"wall_ms\": {:.3},\n    \"throughput_ops_s\": {:.1},\n    \"p50_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \"p999_ms\": {:.3},\n    \"max_ms\": {:.3},\n    \"error_rate\": {error_rate:.6},\n    \"shed_rate\": {shed_rate:.6}\n  }},\n  \"acceptance\": {{\n    \"criterion\": {slo_note},\n    \"slo_checks\": {},\n    \"slo_breaches\": {},\n    \"met\": {}\n  }}\n}}\n",
        today_utc(),
        std::env::consts::ARCH,
        spec.tenants,
        spec.clients,
        spec.ops_per_client,
        spec.keys_per_tenant,
        spec.run_length,
        spec.sample_size,
        spec.refresh_rounds,
        spec.seed,
        ms(wall),
        ops as f64 / wall.as_secs_f64().max(1e-9),
        ms(latency.p50),
        ms(latency.p99),
        ms(latency.p999),
        ms(latency.max),
        outcome.checks.len(),
        outcome.breaches(),
        torn_reads == 0 && !outcome.is_breached(),
    )
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm —
/// no clock/locale dependencies beyond `SystemTime`).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// `opaq serve-bench --http`: the same workload shape replayed over real TCP
/// through the `opaq-net` front-end, byte-verified per response, plus a TTL
/// probe tenant that must be observed going stale and refreshing.
fn serve_bench_http(args: &Args, spec: WorkloadSpec, slo: SloThresholds) -> CliResult<String> {
    let ttl_ms = args.u64_or("ttl-ms", 150)?;
    let http_spec = HttpWorkloadSpec {
        target_qps: spec.target_qps,
        spec,
        ttl: (ttl_ms > 0).then(|| Duration::from_millis(ttl_ms)),
        server: ServerConfig::default(),
        slo,
    };
    let report = opaq_net::run_http_workload(&http_spec)
        .map_err(|e| CliError::Usage(format!("http workload failed: {e}")))?;
    let mut out = format!(
        "served {} HTTP requests over {} tenants in {:?} ({:.0} ops/s); {} refreshes \
         published mid-workload, {} responses verified byte-for-byte, {} /v1/query plans \
         replayed offline and verified (of {}), {} torn reads, {} http errors, {} sheds; \
         ttl probe: {} non-fresh responses, {} expiry-refresh cycles observed\n",
        report.ops,
        http_spec.spec.tenants,
        report.wall,
        report.throughput(),
        report.refreshes_published,
        report.verified,
        report.plan_verified,
        report.plan_ops,
        report.torn_reads,
        report.http_errors,
        report.sheds,
        report.non_fresh_served,
        report.ttl_refreshes_observed,
    );
    out.push_str(&report.render());
    if let Some(path) = args.get("bench-out") {
        let json = render_bench_serve_json(
            "opaq serve-bench --http (open-loop over TCP)",
            &http_spec.spec,
            report.target_qps,
            &report.latency,
            report.wall,
            report.ops + report.plan_ops,
            report.verified + report.plan_verified,
            report.torn_reads,
            report.error_rate(),
            report.shed_rate(),
            &http_spec.slo,
            &report.slo,
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::Usage(format!("could not write {path}: {e}")))?;
        out.push_str(&format!("bench report written to {path}\n"));
    }
    if report.torn_reads > 0 || report.http_errors > 0 {
        return Err(CliError::Usage(format!(
            "{} torn reads / {} http errors observed over the wire\n{out}",
            report.torn_reads, report.http_errors
        )));
    }
    if report.trace_violations > 0 {
        return Err(CliError::Usage(format!(
            "{} responses missed (or mis-echoed) x-opaq-trace-id — every response must carry \
             the trace header\n{out}",
            report.trace_violations
        )));
    }
    if report.slo.is_breached() {
        return Err(CliError::Usage(format!(
            "{} of {} declared SLO objectives breached\n{out}",
            report.slo.breaches(),
            report.slo.checks.len()
        )));
    }
    if report.plan_verified < report.plan_ops {
        return Err(CliError::Usage(format!(
            "{} of {} /v1/query plans failed their offline byte replay\n{out}",
            report.plan_ops - report.plan_verified,
            report.plan_ops
        )));
    }
    if http_spec.ttl.is_some() && report.ttl_refreshes_observed == 0 {
        return Err(CliError::Usage(format!(
            "no TTL expiry-refresh cycle observed — staleness plumbing is broken\n{out}"
        )));
    }
    Ok(out)
}

/// `opaq serve-bench --http --replicas N [--chaos]`: the replica-fleet run.
///
/// One primary plus N-1 secondaries bootstrapped over the wire, driven by
/// circuit-breaker failover clients.  With `--chaos`, every replica sits
/// behind a fault-injecting proxy and one replica is killed and restarted
/// mid-run.  Every answer is still verified byte-for-byte against the
/// sketch version it claims — a single torn or mis-versioned answer fails
/// the command, chaos or not.
fn serve_bench_replicas(args: &Args, spec: WorkloadSpec, replicas: usize) -> CliResult<String> {
    let chaos = args.flag("chaos");
    let replica_spec = ReplicaWorkloadSpec {
        spec,
        replicas,
        chaos: chaos.then(ChaosConfig::default),
        kill_restart: chaos,
        ..ReplicaWorkloadSpec::default()
    };
    let report = opaq_net::run_replica_workload(&replica_spec)
        .map_err(|e| CliError::Usage(format!("replica fleet workload failed: {e}")))?;
    let mut out = format!(
        "served {} requests across a {}-replica fleet in {:?} ({:.0} ops/s); {} verified \
         byte-for-byte, {} torn reads, {} http errors, {} degraded replays, {} unanswered\n",
        report.ops,
        report.replicas,
        report.wall,
        report.throughput(),
        report.verified,
        report.torn_reads,
        report.http_errors,
        report.degraded,
        report.unanswered,
    );
    out.push_str(&report.render());
    if report.torn_reads > 0 || report.http_errors > 0 {
        return Err(CliError::Usage(format!(
            "{} torn reads / {} http errors across the fleet — replica answers diverged from \
             their claimed sketch versions\n{out}",
            report.torn_reads, report.http_errors
        )));
    }
    if chaos && (report.kills == 0 || report.restarts < report.kills) {
        return Err(CliError::Usage(format!(
            "chaos run never exercised the kill/restart cycle ({} kills, {} restarts)\n{out}",
            report.kills, report.restarts
        )));
    }
    Ok(out)
}

/// `opaq serve-bench --http --groups N [--replicas M] [--chaos]`: the
/// ring-partitioned fleet run.
///
/// A consistent-hash ring splits the tenants across N replica groups (M
/// replicas each, peer-synced within the group); clients route by ring
/// ownership, every N-th op is deliberately misrouted to force the
/// `wrong_owner` → one-hop re-route arc, and every fifth op is a glob
/// `coalesce` plan that scatters across the groups and must match the
/// unpartitioned-catalog oracle byte-for-byte.  Gates: zero torn answers,
/// zero mis-owned answers (`x-opaq-owner` vs the ring), zero trace
/// violations, and — with `--chaos` — a completed kill/restart cycle.
fn serve_bench_routed(
    args: &Args,
    spec: WorkloadSpec,
    groups: usize,
    slo: SloThresholds,
) -> CliResult<String> {
    let chaos = args.flag("chaos");
    let replicas = args.u64_or("replicas", 2)? as usize;
    if replicas == 0 {
        return Err(CliError::Usage(
            "--replicas must be at least 1 per group".to_string(),
        ));
    }
    let vnodes = u32::try_from(args.u64_or("vnodes", 128)?)
        .map_err(|_| CliError::Usage("--vnodes out of range".to_string()))?;
    if vnodes == 0 {
        return Err(CliError::Usage("--vnodes must be at least 1".to_string()));
    }
    let target_qps = spec.target_qps;
    let routed_spec = RoutedWorkloadSpec {
        spec,
        groups,
        replicas_per_group: replicas,
        vnodes,
        chaos: chaos.then(ChaosConfig::default),
        kill_restart: chaos && replicas >= 2,
        target_qps,
        slo,
        ..RoutedWorkloadSpec::default()
    };
    let report = opaq_net::run_routed_workload(&routed_spec)
        .map_err(|e| CliError::Usage(format!("routed fleet workload failed: {e}")))?;
    let mut out = format!(
        "served {} requests across {} ring groups x {} replicas in {:?} ({:.0} ops/s); \
         {} verified byte-for-byte, {} torn, {} mis-owned, {} re-routes, {} glob plans \
         oracle-verified (of {})\n",
        report.ops,
        report.groups,
        report.replicas_per_group,
        report.wall,
        report.throughput(),
        report.verified,
        report.torn_reads,
        report.mis_owned,
        report.reroutes,
        report.plan_verified,
        report.plan_ops,
    );
    out.push_str(&report.render());
    if let Some(path) = args.get("bench-out") {
        let json = render_bench_serve_json(
            &format!("opaq serve-bench --http --groups {groups} (routed fleet, open-loop)"),
            &routed_spec.spec,
            report.target_qps,
            &report.latency,
            report.wall,
            report.ops + report.plan_ops,
            report.verified + report.plan_verified,
            report.torn_reads,
            report.error_rate(),
            report.shed_rate(),
            &routed_spec.slo,
            &report.slo,
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::Usage(format!("could not write {path}: {e}")))?;
        out.push_str(&format!("bench report written to {path}\n"));
    }
    if report.torn_reads > 0 || report.mis_owned > 0 {
        return Err(CliError::Usage(format!(
            "{} torn / {} mis-owned answers — a response's bytes or its x-opaq-owner header \
             diverged from the ring's truth\n{out}",
            report.torn_reads, report.mis_owned
        )));
    }
    if report.trace_violations > 0 {
        return Err(CliError::Usage(format!(
            "{} responses missed (or mis-echoed) x-opaq-trace-id across the routed hops\n{out}",
            report.trace_violations
        )));
    }
    if !chaos && (report.http_errors > 0 || report.plan_verified < report.plan_ops) {
        return Err(CliError::Usage(format!(
            "{} http errors, {} of {} plans failed the oracle replay — on a fault-free run \
             both must be zero\n{out}",
            report.http_errors,
            report.plan_ops - report.plan_verified,
            report.plan_ops
        )));
    }
    if chaos && routed_spec.kill_restart && (report.kills == 0 || report.restarts < report.kills) {
        return Err(CliError::Usage(format!(
            "chaos run never exercised the kill/restart cycle ({} kills, {} restarts)\n{out}",
            report.kills, report.restarts
        )));
    }
    if report.slo.is_breached() {
        return Err(CliError::Usage(format!(
            "{} of {} declared SLO objectives breached\n{out}",
            report.slo.breaches(),
            report.slo.checks.len()
        )));
    }
    Ok(out)
}

/// `opaq serve`: the HTTP front-end over synthetic tenants, until stdin EOF.
pub fn serve(args: &Args) -> CliResult<String> {
    serve_with_control(args, std::io::stdin().lock())
}

/// [`serve`] with an injectable control stream (tests hand in a socket; the
/// binary hands in stdin).  The server runs until the control stream reaches
/// EOF or a line saying `quit`/`stop`, then tears down in order: HTTP
/// server, refresh pool, catalog.
pub fn serve_with_control(args: &Args, control: impl BufRead) -> CliResult<String> {
    args.validate(
        "serve",
        &[
            "addr",
            "tenants",
            "keys-per-tenant",
            "run-length",
            "sample-size",
            "ttl-ms",
            "refresh-threads",
            "workers",
            "seed",
            "data-dir",
            "slo-p99-ms",
            "peer",
            "peer-poll-ms",
            "ring",
            "group",
        ],
        &[],
    )?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let tenants = args.u64_or("tenants", 2)?;
    if tenants == 0 {
        return Err(CliError::Usage("--tenants must be at least 1".to_string()));
    }
    let keys_per_tenant = args.u64_or("keys-per-tenant", 100_000)?;
    let run_length = args.u64_or("run-length", 10_000)?;
    let sample_size = args.u64_or("sample-size", 500)?.min(run_length);
    let ttl_ms = args.u64_or("ttl-ms", 0)?;
    let refresh_threads = args.u64_or("refresh-threads", 1)?.max(1);
    let workers = args.u64_or("workers", 8)?.max(1);
    let seed = args.u64_or("seed", 42)?;
    let peer = args.get("peer").map(str::to_string);
    let peer_poll_ms = args.u64_or("peer-poll-ms", 500)?.max(10);
    if peer.is_none() && args.get("peer-poll-ms").is_some() {
        return Err(CliError::Usage(
            "--peer-poll-ms only makes sense with --peer".to_string(),
        ));
    }
    if peer.is_some() && ttl_ms > 0 {
        return Err(CliError::Usage(
            "--ttl-ms cannot be combined with --peer: a replica's content comes from its \
             peer, and a local TTL re-ingest would fork it from the source"
                .to_string(),
        ));
    }
    // Ring membership: `--ring FILE --group NAME` scopes this server to the
    // tenants its group owns and arms the wrong_owner/scatter machinery.
    let membership = match (args.get("ring"), args.get("group")) {
        (Some(path), Some(group)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Usage(format!("could not read ring file {path}: {e}")))?;
            let parsed = RingConfig::parse(&text)
                .map_err(|e| CliError::Usage(format!("invalid ring file {path}: {e}")))?;
            let ring = HashRing::new(parsed)
                .map_err(|e| CliError::Usage(format!("invalid ring file {path}: {e}")))?;
            Some(Arc::new(RingMembership::new(ring, group).map_err(|e| {
                CliError::Usage(format!("--group does not name a ring group: {e}"))
            })?))
        }
        (None, None) => None,
        _ => {
            return Err(CliError::Usage(
                "--ring FILE and --group NAME come as a pair: the file names the fleet's \
                 groups, the name says which one this server is"
                    .to_string(),
            ));
        }
    };
    // Shared replication counters, exposed via /metrics and the shutdown
    // summary when this server is a replica.
    let replication = peer.as_ref().map(|_| ReplicationStats::new());

    let config = OpaqConfig::builder()
        .run_length(run_length)
        .sample_size(sample_size)
        .build()?;
    let catalog = match args.get("data-dir") {
        // Durable mode: every publish commits to the write-ahead manifest
        // under DIR before the epoch swap; a restart over the same DIR
        // replays it (see the durability model in opaq-serve's docs).
        Some(dir) => Arc::new(SketchCatalog::new(
            opaq_serve::CatalogConfig::builder().data_dir(dir).build()?,
        )?),
        None => Arc::new(SketchCatalog::unbounded()),
    };
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));
    if let Some(_ms) = args.get("slo-p99-ms") {
        engine.set_slo_threshold(Some(Duration::from_millis(args.u64_or("slo-p99-ms", 0)?)));
    }
    // One telemetry block for the whole process: the HTTP server records
    // request spans into it, the refresh pool and replicator record their
    // background work, and the shutdown banner reads the slow log back.
    let telemetry = Arc::new(Telemetry::new());
    let mut recovery_banner = String::new();
    let recovered_entries = catalog.recovery().map_or(0, |r| r.entries);
    if let Some(recovery) = catalog.recovery().filter(|r| r.entries > 0) {
        // A recovered catalog IS the state: re-seeding would bump every
        // version and break byte-for-byte continuity across the restart.
        recovery_banner = format!(
            "opaq serve: recovered {} entries from {} manifest records ({} torn tail bytes \
             truncated, {} orphan sketch files removed)\n",
            recovery.entries,
            recovery.records_replayed,
            recovery.torn_tail_bytes,
            recovery.orphan_spills_removed,
        );
        print!("{recovery_banner}");
    }
    if let Some(peer) = peer.as_deref() {
        // Replica mode: the peer's catalog IS the state.  Bootstrap before
        // binding so the server never exposes an empty (or stale-recovered)
        // catalog it is about to overwrite; every entry lands at the peer's
        // exact version, so answers are byte-identical to the source.
        let applied = bootstrap(
            &catalog,
            peer,
            replication.as_ref(),
            Some(telemetry.recorder()),
        )
        .map_err(|e| CliError::Usage(format!("could not bootstrap from peer {peer}: {e}")))?;
        println!("opaq serve: bootstrapped {applied} entries from peer {peer}");
    } else if recovered_entries == 0 {
        for tenant_idx in 0..tenants {
            // Ring-scoped ingest: a partitioned server seeds only the
            // tenants its group owns — peers own (and seed) the rest.
            if let Some(membership) = &membership {
                if !membership.owns(&format!("tenant-{tenant_idx}")) {
                    continue;
                }
            }
            let keys = DatasetSpec {
                n: keys_per_tenant,
                distribution: Distribution::Uniform { domain: 1 << 31 },
                duplicate_fraction: 0.1,
                seed: seed.wrapping_add(tenant_idx),
            }
            .generate();
            let mut inc = IncrementalOpaq::new(config)?;
            inc.add_run(keys)?;
            let sketch = inc
                .into_sketch()
                .ok_or(CliError::Usage("empty tenant dataset".to_string()))?;
            catalog.publish(
                &TenantId::new(format!("tenant-{tenant_idx}")),
                &DatasetId::new("events"),
                sketch,
            )?;
        }
    }

    // TTL: entries age out after --ttl-ms and are re-ingested (fresh
    // synthetic chunk, next version) by the refresh pool; until the publish
    // lands they keep serving the old version tagged stale/refreshing.
    let pool = Arc::new(RefreshPool::new(
        Arc::clone(&catalog),
        refresh_threads as usize,
    )?);
    pool.set_recorder(Arc::clone(telemetry.recorder()));
    if ttl_ms > 0 {
        // Recovered entries keep the TTLs the manifest restored (their names
        // need not match the synthetic tenant-N scheme); only freshly seeded
        // tenants get --ttl-ms applied.
        if recovered_entries == 0 {
            for tenant_idx in 0..tenants {
                if let Some(membership) = &membership {
                    if !membership.owns(&format!("tenant-{tenant_idx}")) {
                        continue;
                    }
                }
                catalog.set_ttl(
                    &TenantId::new(format!("tenant-{tenant_idx}")),
                    &DatasetId::new("events"),
                    Some(Duration::from_millis(ttl_ms)),
                )?;
            }
        }
        let weak = Arc::downgrade(&pool);
        let refresh_round = Arc::new(std::sync::atomic::AtomicU64::new(0));
        catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
            let Some(pool) = weak.upgrade() else {
                return false;
            };
            let round = refresh_round.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            let tenant_seed = seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(round)
                .wrapping_add(tenant.as_str().len() as u64);
            pool.submit(tenant, dataset, move || {
                let keys = DatasetSpec {
                    n: keys_per_tenant,
                    distribution: Distribution::Uniform { domain: 1 << 31 },
                    duplicate_fraction: 0.1,
                    seed: tenant_seed,
                }
                .generate();
                let mut inc = IncrementalOpaq::new(config)?;
                inc.add_run(keys)?;
                inc.into_sketch().ok_or(opaq_serve::ServeError::Opaq(
                    opaq_core::OpaqError::EmptyDataset,
                ))
            })
            .is_ok()
        }));
    }

    let mut server_builder = ServerConfig::builder()
        .addr(addr)
        .workers(workers as usize)
        .telemetry(Arc::clone(&telemetry));
    if let Some(stats) = &replication {
        server_builder = server_builder.replication(Arc::clone(stats));
    }
    if let Some(membership) = &membership {
        server_builder = server_builder.ring(Arc::clone(membership));
    }
    let server_config = server_builder
        .build()
        .map_err(|e| CliError::Usage(format!("invalid server configuration: {e}")))?;
    let mut server = HttpServer::start(Arc::clone(&engine), server_config)
        .map_err(|e| CliError::Usage(format!("could not start the HTTP server: {e}")))?;
    let bound = server.local_addr();
    // Keep trailing the peer for deltas; backoff inside the replicator
    // rides out peer outages and reconnects when it comes back.
    let mut replicator = peer.as_ref().map(|peer| {
        Replicator::start(
            Arc::clone(&catalog),
            peer.clone(),
            Duration::from_millis(peer_poll_ms),
            replication.clone(),
            Some(Arc::clone(telemetry.recorder())),
        )
    });

    println!(
        "opaq serve: listening on http://{bound} ({} tenants, {keys_per_tenant} keys \
         each{}{}{}{}); close stdin or send 'quit' to stop",
        if recovered_entries > 0 {
            recovered_entries
        } else {
            tenants
        },
        if ttl_ms > 0 {
            format!(", ttl {ttl_ms}ms")
        } else {
            String::new()
        },
        match args.get("data-dir") {
            Some(dir) => format!(", durable in {dir}"),
            None => String::new(),
        },
        match &peer {
            Some(peer) => format!(", replicating from {peer} every {peer_poll_ms}ms"),
            None => String::new(),
        },
        match &membership {
            Some(m) => format!(
                ", ring group '{}' of {} (ingest scoped to owned tenants)",
                m.group_name(),
                m.ring().groups().len()
            ),
            None => String::new(),
        }
    );
    let _ = std::io::stdout().flush();

    // Block on the control stream: each line is a command (only quit/stop
    // for now); EOF means the operator hung up — shut down cleanly.
    for line in control.lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "quit" | "stop" => break,
            "" => continue,
            other => println!("opaq serve: ignoring unknown control line '{other}'"),
        }
    }

    // Snapshot counters only after the drain: a request in flight at EOF
    // still completes (and counts) during shutdown.
    server.shutdown();
    let stats = server.stats();
    if let Some(replicator) = replicator.as_mut() {
        replicator.shutdown();
    }
    pool.shutdown();
    let catalog_stats = catalog.stats();
    let replication_summary = match (&peer, &replication) {
        (Some(peer), Some(stats)) => format!(
            "; replication: {} sync deltas applied from peer {peer}, {} failovers, \
             {} breaker opens",
            stats.sync_deltas_applied(),
            stats.failovers(),
            stats.breaker_opens(),
        ),
        _ => String::new(),
    };
    // The observability postscript: the slowest request the slow log kept,
    // with its trace id (resolvable via `opaq trace --id` against a live
    // server) and how its time split across the pipeline stages.
    let trace_summary = match telemetry.slow().slowest() {
        Some(slowest) => {
            let spans = telemetry.recorder().trace(slowest.trace);
            let mut per_stage: Vec<(Stage, u64)> = Vec::new();
            for span in &spans {
                match per_stage.iter_mut().find(|(s, _)| *s == span.stage) {
                    Some((_, total)) => *total += span.duration_nanos,
                    None => per_stage.push((span.stage, span.duration_nanos)),
                }
            }
            let breakdown = per_stage
                .iter()
                .filter(|(stage, _)| *stage != Stage::Request)
                .map(|(stage, nanos)| format!("{} {}", stage.as_str(), format_nanos(*nanos)))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "; slowest request: trace {} {} ({}){}",
                slowest.trace,
                format_nanos(slowest.duration_nanos),
                slowest.detail,
                if breakdown.is_empty() {
                    String::new()
                } else {
                    format!(" — stages: {breakdown}")
                },
            )
        }
        None => String::new(),
    };
    Ok(format!(
        "opaq serve: shutdown complete (bound {bound}); served {} requests over {} connections \
         ({} rejected, {} parse errors); catalog: {} publishes, {} snapshots, {} stale, \
         {} ttl refreshes; durability: {} manifest records, {} recoveries, {} orphans reaped; \
         slo breaches: {}{replication_summary}{trace_summary}\n{recovery_banner}",
        stats.requests,
        stats.connections,
        stats.rejected,
        stats.parse_errors,
        catalog_stats.publishes,
        catalog_stats.snapshots,
        catalog_stats.stale_snapshots,
        catalog_stats.ttl_refreshes,
        catalog_stats.manifest_records,
        catalog_stats.recoveries,
        catalog_stats.orphan_spills_removed,
        engine.slo_breaches(),
    ))
}

/// `opaq trace`: observability client for a running front-end.
///
/// `--id HEX` prints one request's span tree from `/v1/_debug/trace`;
/// otherwise the top `--slow N` (default 10) slowest requests from
/// `/v1/_debug/slow`, whose trace ids feed back into `--id`.
pub fn trace(args: &Args) -> CliResult<String> {
    args.validate("trace", &["addr", "id", "slow"], &[])?;
    let addr = args.require("addr")?;
    if args.get("id").is_some() && args.get("slow").is_some() {
        return Err(CliError::Usage(
            "--id and --slow are mutually exclusive: one trace or the slow log".to_string(),
        ));
    }
    let mut client = HttpClient::new(addr);
    let fetch = |client: &mut HttpClient, target: &str| -> CliResult<String> {
        let response = client
            .get(target)
            .map_err(|e| CliError::Usage(format!("could not reach {addr}: {e}")))?;
        let body = response
            .body_str()
            .map_err(|e| CliError::Usage(format!("malformed response from {addr}: {e}")))?
            .to_string();
        if response.status != 200 {
            return Err(CliError::Usage(format!(
                "{addr} answered {} for {target}: {}",
                response.status,
                body.trim()
            )));
        }
        Ok(body)
    };
    if let Some(id) = args.get("id") {
        // The server renders the tree; the CLI is a dumb pipe so the two
        // never disagree about span semantics.
        return fetch(&mut client, &format!("/v1/_debug/trace?id={id}"));
    }
    let n = args.u64_or("slow", 10)?;
    let body = fetch(&mut client, &format!("/v1/_debug/slow?n={n}"))?;
    let parsed = Json::parse(&body)
        .map_err(|e| CliError::Usage(format!("malformed slow log from {addr}: {e}")))?;
    let threshold = parsed
        .get("threshold_nanos")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let entries = parsed
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::Usage(format!("slow log from {addr} has no entries array")))?;
    let mut out = format!(
        "slow log from {addr} (threshold {}, {} entr{}):\n",
        if threshold == 0 {
            "none — keeping the slowest".to_string()
        } else {
            format_nanos(threshold)
        },
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
    );
    for entry in entries {
        let (Some(trace), Some(duration), Some(detail)) = (
            entry.get("trace").and_then(Json::as_str),
            entry.get("duration_nanos").and_then(Json::as_u64),
            entry.get("detail").and_then(Json::as_str),
        ) else {
            return Err(CliError::Usage(format!(
                "slow log entry from {addr} is missing trace/duration_nanos/detail"
            )));
        };
        out.push_str(&format!(
            "  {:>10}  trace {trace}  {detail}\n",
            format_nanos(duration)
        ));
    }
    if entries.is_empty() {
        out.push_str("  (no requests recorded yet)\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn temp(tag: &str, ext: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("opaq-cli-cmd-{tag}-{}.{ext}", std::process::id()));
        p
    }

    #[test]
    fn generate_sketch_query_round_trip() {
        let data_path = temp("roundtrip", "bin");
        let sketch_path = temp("roundtrip", "sketch");
        let data_str = data_path.to_str().unwrap();
        let sketch_str = sketch_path.to_str().unwrap();

        let out = run(
            "generate",
            &args(&[
                "--out", data_str, "--n", "50000", "--dist", "zipf", "--seed", "3",
            ]),
        )
        .unwrap();
        assert!(out.contains("50000 keys"));

        let out = run(
            "sketch",
            &args(&[
                "--data",
                data_str,
                "--n",
                "50000",
                "--run-length",
                "5000",
                "--sample-size",
                "500",
                "--out",
                sketch_str,
            ]),
        )
        .unwrap();
        assert!(out.contains("built sketch: 5000 sample points"));
        assert!(out.contains("sketch saved"));

        let out = run(
            "query",
            &args(&["--sketch", sketch_str, "--phi", "0.5,0.9"]),
        )
        .unwrap();
        assert!(out.contains("0.5000"));
        assert!(out.contains("0.9000"));

        let out = run("rank", &args(&["--sketch", sketch_str, "--value", "100"])).unwrap();
        assert!(out.contains("rank of 100"));

        let out = run(
            "histogram",
            &args(&["--sketch", sketch_str, "--buckets", "8"]),
        )
        .unwrap();
        assert!(out.contains("8-bucket equi-depth histogram"));

        std::fs::remove_file(data_path).unwrap();
        std::fs::remove_file(sketch_path).unwrap();
    }

    #[test]
    fn exact_command_matches_full_sort() {
        let data_path = temp("exact", "bin");
        let data_str = data_path.to_str().unwrap();
        run(
            "generate",
            &args(&[
                "--out", data_str, "--n", "20000", "--dist", "uniform", "--seed", "9",
            ]),
        )
        .unwrap();
        let out = run(
            "exact",
            &args(&[
                "--data",
                data_str,
                "--n",
                "20000",
                "--phi",
                "0.25",
                "--sample-size",
                "200",
            ]),
        )
        .unwrap();
        assert!(out.contains("exact 0.25-quantile"), "{out}");

        // Independent verification against the generator + a sort.
        let spec = DatasetSpec {
            n: 20000,
            distribution: Distribution::Uniform { domain: 1 << 31 },
            duplicate_fraction: 0.1,
            seed: 9,
        };
        let mut data = spec.generate();
        data.sort_unstable();
        let truth = data[((0.25f64 * 20000.0).ceil() as usize) - 1];
        assert!(
            out.contains(&format!("= {truth} ")),
            "output {out} vs truth {truth}"
        );
        std::fs::remove_file(data_path).unwrap();
    }

    #[test]
    fn sharded_sketch_is_byte_identical_to_sequential() {
        let data_path = temp("sharded", "bin");
        let data_str = data_path.to_str().unwrap();
        run(
            "generate",
            &args(&[
                "--out", data_str, "--n", "30000", "--dist", "zipf", "--seed", "17",
            ]),
        )
        .unwrap();

        let mut saved = Vec::new();
        for threads in ["1", "2", "4", "8"] {
            let sketch_path = temp(&format!("sharded-t{threads}"), "sketch");
            let out = run(
                "sketch",
                &args(&[
                    "--data",
                    data_str,
                    "--n",
                    "30000",
                    "--run-length",
                    "3000",
                    "--sample-size",
                    "300",
                    "--threads",
                    threads,
                    "--out",
                    sketch_path.to_str().unwrap(),
                ]),
            )
            .unwrap();
            assert!(out.contains("built sketch: 3000 sample points"), "{out}");
            if threads != "1" {
                assert!(out.contains("shards"), "{out}");
            }
            saved.push(std::fs::read(&sketch_path).unwrap());
            std::fs::remove_file(sketch_path).unwrap();
        }
        for other in &saved[1..] {
            assert_eq!(
                &saved[0], other,
                "sharded sketch files must be byte-identical to sequential"
            );
        }

        // Selection is exact, so every strategy must reproduce the same
        // sketch file, byte for byte.
        for strategy in ["block", "quickselect", "floyd-rivest", "median-of-medians"] {
            let sketch_path = temp(&format!("sharded-{strategy}"), "sketch");
            run(
                "sketch",
                &args(&[
                    "--data",
                    data_str,
                    "--n",
                    "30000",
                    "--run-length",
                    "3000",
                    "--sample-size",
                    "300",
                    "--threads",
                    "2",
                    "--strategy",
                    strategy,
                    "--out",
                    sketch_path.to_str().unwrap(),
                ]),
            )
            .unwrap();
            assert_eq!(
                saved[0],
                std::fs::read(&sketch_path).unwrap(),
                "strategy {strategy} must produce a byte-identical sketch"
            );
            std::fs::remove_file(sketch_path).unwrap();
        }

        assert!(run(
            "sketch",
            &args(&["--data", data_str, "--n", "30000", "--threads", "0"]),
        )
        .is_err());
        assert!(run(
            "sketch",
            &args(&["--data", data_str, "--n", "30000", "--strategy", "bogus"]),
        )
        .is_err());
        std::fs::remove_file(data_path).unwrap();
    }

    #[test]
    fn unknown_command_and_missing_options_error() {
        assert!(run("frobnicate", &Args::default()).is_err());
        assert!(run("generate", &Args::default()).is_err());
        assert!(run("query", &Args::default()).is_err());
        assert!(run("histogram", &args(&["--sketch", "/nonexistent"])).is_err());
    }

    #[test]
    fn unknown_distribution_rejected() {
        let data_path = temp("baddist", "bin");
        let err = run(
            "generate",
            &args(&[
                "--out",
                data_path.to_str().unwrap(),
                "--n",
                "100",
                "--dist",
                "cauchy",
            ]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown distribution"));
    }

    #[test]
    fn usage_mentions_every_command() {
        let text = usage();
        for cmd in [
            "generate",
            "sketch",
            "query",
            "rank",
            "histogram",
            "exact",
            "serve-bench",
        ] {
            assert!(text.contains(cmd), "usage must mention {cmd}");
        }
        assert_eq!(run("help", &Args::default()).unwrap(), text);
    }

    #[test]
    fn serve_bench_quick_serves_and_verifies() {
        let out = run(
            "serve-bench",
            &args(&[
                "--quick",
                "--tenants",
                "2",
                "--clients",
                "4",
                "--ops",
                "100",
                "--seed",
                "5",
            ]),
        )
        .unwrap();
        assert!(out.contains("served 400 requests"), "{out}");
        assert!(out.contains("0 torn reads"), "{out}");
        assert!(out.contains("p999"), "{out}");
        assert!(out.contains("tenant-1"), "{out}");
    }

    #[test]
    fn serve_bench_rejects_degenerate_shapes() {
        assert!(run("serve-bench", &args(&["--quick", "--clients", "0"])).is_err());
        assert!(run("serve-bench", &args(&["--quick", "--ops", "0"])).is_err());
    }

    #[test]
    fn every_command_rejects_unknown_and_misused_options() {
        // The `--theads 4` class of bug: a typo must be a hard error with a
        // suggestion, not a silent fall-back to defaults.
        let err = run(
            "sketch",
            &args(&["--data", "x", "--n", "10", "--theads", "4"]),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown option --theads"), "{msg}");
        assert!(msg.contains("did you mean --threads?"), "{msg}");

        for (cmd, bad) in [
            ("generate", vec!["--out", "x", "--n", "5", "--bogus", "1"]),
            ("query", vec!["--sketch", "x", "--quantile", "0.5"]),
            ("rank", vec!["--sketch", "x", "--val", "3"]),
            ("histogram", vec!["--sketch", "x", "--bucket", "8"]),
            ("exact", vec!["--data", "x", "--n", "5", "--phi2", "0.5"]),
            ("serve-bench", vec!["--quik"]),
            ("serve", vec!["--adr", "127.0.0.1:0"]),
        ] {
            let err = run(cmd, &args(&bad)).unwrap_err();
            assert!(
                matches!(err, CliError::Usage(_)),
                "{cmd} {bad:?} must be a usage error, got {err}"
            );
        }
        // A flag used as an option and an option used as a flag.
        assert!(run("serve-bench", &args(&["--quick", "yes"])).is_err());
        assert!(run("serve-bench", &args(&["--quick", "--budget"])).is_err());
    }

    #[test]
    fn serve_bench_http_rejects_unsupported_budget() {
        let err = run(
            "serve-bench",
            &args(&["--http", "--quick", "--budget", "100"]),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("not supported in --http mode"),
            "{err}"
        );
    }

    #[test]
    fn serve_bench_http_quick_verifies_over_the_wire() {
        let out = run(
            "serve-bench",
            &args(&[
                "--http",
                "--quick",
                "--tenants",
                "2",
                "--clients",
                "3",
                "--ops",
                "60",
                "--seed",
                "7",
                "--ttl-ms",
                "60",
            ]),
        )
        .unwrap();
        assert!(out.contains("0 torn reads"), "{out}");
        assert!(out.contains("0 http errors"), "{out}");
        assert!(out.contains("expiry-refresh cycles observed"), "{out}");
        assert!(out.contains("verified byte-for-byte"), "{out}");
    }

    #[test]
    fn serve_bench_replica_flags_are_validated() {
        let err = run("serve-bench", &args(&["--quick", "--replicas", "2"])).unwrap_err();
        assert!(err.to_string().contains("add --http"), "{err}");
        let err = run("serve-bench", &args(&["--quick", "--chaos"])).unwrap_err();
        assert!(err.to_string().contains("add --http"), "{err}");
        let err = run(
            "serve-bench",
            &args(&["--http", "--quick", "--replicas", "2", "--qps", "100"]),
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("not supported in replica-fleet mode"),
            "{err}"
        );
    }

    #[test]
    fn serve_bench_replica_fleet_verifies_across_replicas() {
        let out = run(
            "serve-bench",
            &args(&[
                "--http",
                "--quick",
                "--replicas",
                "2",
                "--tenants",
                "2",
                "--clients",
                "2",
                "--ops",
                "40",
                "--keys-per-tenant",
                "4000",
            ]),
        )
        .unwrap();
        assert!(out.contains("2-replica fleet"), "{out}");
        assert!(out.contains("0 torn reads"), "{out}");
        assert!(out.contains("0 http errors"), "{out}");
        assert!(out.contains("replica fleet: 2 replicas"), "{out}");
    }

    #[test]
    fn serve_bench_chaos_fleet_survives_a_kill_and_restart() {
        let out = run(
            "serve-bench",
            &args(&[
                "--http",
                "--quick",
                "--replicas",
                "2",
                "--chaos",
                "--tenants",
                "2",
                "--clients",
                "3",
                "--ops",
                "60",
                "--keys-per-tenant",
                "4000",
            ]),
        )
        .unwrap();
        assert!(out.contains("0 torn reads"), "{out}");
        assert!(out.contains("kills 1"), "{out}");
        assert!(out.contains("restarts 1"), "{out}");
    }

    #[test]
    fn query_modes_are_mutually_exclusive_and_validated() {
        // Neither mode selected.
        let err = run("query", &Args::default()).unwrap_err();
        assert!(err.to_string().contains("--sketch"), "{err}");
        assert!(err.to_string().contains("--expr"), "{err}");
        // Both modes at once.
        let err = run(
            "query",
            &args(&["--sketch", "x", "--expr", "fetch a/b | quantile 0.5"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // Remote mode without a target.
        let err = run("query", &args(&["--expr", "fetch a/b | quantile 0.5"])).unwrap_err();
        assert!(err.to_string().contains("--addr"), "{err}");
        // --addr is remote-only.
        let err = run("query", &args(&["--sketch", "x", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.to_string().contains("--expr"), "{err}");
        // A bad plan fails at local compile time, before any socket I/O
        // (127.0.0.1:1 would refuse the connection if we got that far).
        let err = run(
            "query",
            &args(&["--expr", "fetch a/b | juggle", "--addr", "127.0.0.1:1"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid plan"), "{err}");
        assert!(err.to_string().contains("stage"), "{err}");
    }

    #[test]
    fn query_expr_runs_a_pipeline_against_a_live_server() {
        use std::io::BufReader;
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let control_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let control_addr = control_listener.local_addr().unwrap();
        let control_client = std::net::TcpStream::connect(control_addr).unwrap();
        let (control_server, _) = control_listener.accept().unwrap();

        let serve_args = args(&[
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--tenants",
            "2",
            "--keys-per-tenant",
            "20000",
            "--run-length",
            "2000",
            "--sample-size",
            "200",
        ]);
        let handle = std::thread::spawn(move || {
            super::serve_with_control(&serve_args, BufReader::new(control_server))
        });
        let addr = format!("127.0.0.1:{port}");
        let mut client = opaq_net::HttpClient::new(addr.clone());
        let mut healthy = false;
        for _ in 0..100 {
            if client.get("/healthz").map(|r| r.status).ok() == Some(200) {
                healthy = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(healthy, "server never came up on port {port}");

        // A coalescing pipeline over both tenants, through the public CLI.
        let out = run(
            "query",
            &args(&[
                "--expr",
                "fetch tenant-*/events | coalesce | quantile 0.25,0.75",
                "--addr",
                &addr,
            ]),
        )
        .unwrap();
        assert!(out.contains("plan sources (2 entries"), "{out}");
        assert!(out.contains("tenant-0"), "{out}");
        assert!(out.contains("tenant-1"), "{out}");
        assert!(out.contains("fresh"), "{out}");
        assert!(out.contains("0.2500"), "{out}");
        assert!(out.contains("0.7500"), "{out}");

        // A rank pipeline renders bounds instead of a table of estimates.
        let out = run(
            "query",
            &args(&[
                "--expr",
                "fetch tenant-0/events | rank 1000000",
                "--addr",
                &addr,
            ]),
        )
        .unwrap();
        assert!(out.contains("plan sources (1 entries"), "{out}");
        assert!(out.contains("rank: between"), "{out}");

        // A server-side plan failure surfaces the typed error body.
        let err = run(
            "query",
            &args(&[
                "--expr",
                "fetch ghost-*/events | coalesce | quantile 0.5",
                "--addr",
                &addr,
            ]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("HTTP 404"), "{err}");
        assert!(err.to_string().contains("not_found"), "{err}");

        drop(control_client);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
    }

    #[test]
    fn trace_command_renders_slow_log_and_span_trees_from_a_live_server() {
        use std::io::BufReader;
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let control_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let control_addr = control_listener.local_addr().unwrap();
        let control_client = std::net::TcpStream::connect(control_addr).unwrap();
        let (control_server, _) = control_listener.accept().unwrap();

        let serve_args = args(&[
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--tenants",
            "1",
            "--keys-per-tenant",
            "20000",
            "--run-length",
            "2000",
            "--sample-size",
            "200",
        ]);
        let handle = std::thread::spawn(move || {
            super::serve_with_control(&serve_args, BufReader::new(control_server))
        });
        let addr = format!("127.0.0.1:{port}");
        let mut client = opaq_net::HttpClient::new(addr.clone());
        let mut healthy = false;
        for _ in 0..100 {
            if client.get("/healthz").map(|r| r.status).ok() == Some(200) {
                healthy = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(healthy, "server never came up on port {port}");

        // One real query so the slow log has a request to show.
        let response = client.get("/v1/tenant-0/events/quantile?phi=0.5").unwrap();
        assert_eq!(response.status, 200);
        let trace_id = response
            .header(opaq_net::TRACE_HEADER)
            .expect("response carries a trace id")
            .to_string();

        // `opaq trace --addr` (slow-log mode) lists it with its trace id.
        let out = run("trace", &args(&["--addr", &addr])).unwrap();
        assert!(out.contains("slow log from"), "{out}");
        assert!(out.contains(&trace_id), "{out}");
        assert!(out.contains("GET /v1/tenant-0/events/quantile"), "{out}");

        // `--id` drills into the full span tree for that request.
        let out = run("trace", &args(&["--addr", &addr, "--id", &trace_id])).unwrap();
        for stage in ["request", "parse", "compile", "fetch", "snapshot", "render"] {
            assert!(out.contains(stage), "span tree missing {stage}:\n{out}");
        }

        // An unknown id is a clean error, not a panic.
        let err = run(
            "trace",
            &args(&["--addr", &addr, "--id", "00000000000000ff"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        // --id and --slow are mutually exclusive.
        let err = run(
            "trace",
            &args(&["--addr", &addr, "--id", "ff", "--slow", "5"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        drop(control_client);
        let out = handle.join().unwrap().unwrap();
        // The shutdown banner names the slowest trace and its stages.
        assert!(out.contains("slowest request: trace"), "{out}");
        assert!(out.contains("stages:"), "{out}");
    }

    #[test]
    fn serve_runs_accepts_queries_and_shuts_down_on_control_eof() {
        use std::io::{BufReader, Write};
        // A loopback socket pair stands in for stdin so the test can keep
        // the server alive while it queries, then hang up to trigger the
        // clean shutdown path.
        let control_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let control_addr = control_listener.local_addr().unwrap();
        let control_client = std::net::TcpStream::connect(control_addr).unwrap();
        let (control_server, _) = control_listener.accept().unwrap();

        let serve_args = args(&[
            "--addr",
            "127.0.0.1:0",
            "--tenants",
            "1",
            "--keys-per-tenant",
            "20000",
            "--run-length",
            "2000",
            "--sample-size",
            "200",
            "--ttl-ms",
            "50",
        ]);
        let handle = std::thread::spawn(move || {
            super::serve_with_control(&serve_args, BufReader::new(control_server))
        });

        // The banner goes to stdout (not capturable here), so discover the
        // port via /healthz polling... we can't know the ephemeral port.
        // Instead drive shutdown only: hold the control open briefly, then
        // hang up and require the clean-summary path.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let mut control_client = control_client;
        control_client.write_all(b"unknown-control\n").unwrap();
        drop(control_client); // EOF => shutdown
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
        assert!(out.contains("catalog: 1 publishes"), "{out}");
    }

    #[test]
    fn serve_peer_flags_are_validated() {
        let err = run("serve", &args(&["--peer-poll-ms", "100"])).unwrap_err();
        assert!(err.to_string().contains("--peer"), "{err}");
        let err = run(
            "serve",
            &args(&["--peer", "127.0.0.1:1", "--ttl-ms", "100"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("fork it from the source"), "{err}");
        // An unreachable peer fails the bootstrap before the server binds.
        let err = run("serve", &args(&["--peer", "127.0.0.1:1"])).unwrap_err();
        assert!(
            err.to_string().contains("could not bootstrap from peer"),
            "{err}"
        );
    }

    #[test]
    fn serve_peer_bootstraps_and_reports_replication_in_the_summary() {
        use std::io::BufReader;
        // A primary on a probed fixed port, so the replica has an address.
        let primary_port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let primary_addr = format!("127.0.0.1:{primary_port}");
        let primary_control = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let primary_control_addr = primary_control.local_addr().unwrap();
        let primary_hold = std::net::TcpStream::connect(primary_control_addr).unwrap();
        let (primary_stream, _) = primary_control.accept().unwrap();
        let primary_args = args(&[
            "--addr",
            &primary_addr,
            "--tenants",
            "2",
            "--keys-per-tenant",
            "20000",
            "--run-length",
            "2000",
            "--sample-size",
            "200",
        ]);
        let primary = std::thread::spawn(move || {
            super::serve_with_control(&primary_args, BufReader::new(primary_stream))
        });
        // Wait for the primary to actually listen before bootstrapping.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if HttpClient::new(primary_addr.clone())
                .get("/healthz")
                .is_ok()
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "primary never came up"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        // A replica bootstrapped from it over the wire.
        let replica_control = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let replica_control_addr = replica_control.local_addr().unwrap();
        let replica_hold = std::net::TcpStream::connect(replica_control_addr).unwrap();
        let (replica_stream, _) = replica_control.accept().unwrap();
        let replica_args = args(&[
            "--addr",
            "127.0.0.1:0",
            "--peer",
            &primary_addr,
            "--peer-poll-ms",
            "50",
        ]);
        let replica = std::thread::spawn(move || {
            super::serve_with_control(&replica_args, BufReader::new(replica_stream))
        });
        std::thread::sleep(Duration::from_millis(300));

        drop(replica_hold); // EOF => replica shutdown
        let out = replica.join().unwrap().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
        // Bootstrap replicated both tenant entries at the peer's versions.
        assert!(out.contains("catalog: 2 publishes"), "{out}");
        assert!(out.contains("sync deltas applied from peer"), "{out}");
        drop(primary_hold);
        primary.join().unwrap().unwrap();
    }

    #[test]
    fn serve_bench_open_loop_emits_bench_report_and_holds_slo() {
        let bench_path = temp("bench-serve", "json");
        let bench_str = bench_path.to_str().unwrap();
        let out = run(
            "serve-bench",
            &args(&[
                "--quick",
                "--tenants",
                "2",
                "--clients",
                "2",
                "--ops",
                "60",
                "--qps",
                "2000",
                "--slo-p99-ms",
                "5000",
                "--bench-out",
                bench_str,
            ]),
        )
        .unwrap();
        assert!(out.contains("0 torn reads"), "{out}");
        assert!(out.contains("slo verdicts"), "{out}");
        assert!(out.contains("target qps"), "{out}");
        assert!(out.contains("bench report written"), "{out}");
        let json = std::fs::read_to_string(&bench_path).unwrap();
        for field in [
            "\"benchmark\"",
            "\"recorded\"",
            "\"host\"",
            "\"input\"",
            "\"results\"",
            "\"acceptance\"",
            "\"target_qps\": 2000",
            "\"torn_reads\": 0",
            "\"slo_breaches\": 0",
            "\"met\": true",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // The emitted report is parseable by the workspace's own JSON reader.
        assert!(Json::parse(&json).is_ok(), "{json}");
        std::fs::remove_file(&bench_path).unwrap();

        // An impossible latency objective must turn into a nonzero exit.
        let err = run(
            "serve-bench",
            &args(&[
                "--quick",
                "--clients",
                "2",
                "--ops",
                "40",
                "--slo-p99-ms",
                "0",
            ]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("SLO"), "{err}");

        assert!(run("serve-bench", &args(&["--quick", "--qps", "0"])).is_err());
        assert!(run("serve-bench", &args(&["--quick", "--qps", "nope"])).is_err());
    }

    #[test]
    fn serve_restart_over_data_dir_rebuilds_the_exact_catalog() {
        use std::io::BufReader;
        let mut data_dir = std::env::temp_dir();
        data_dir.push(format!("opaq-cli-durable-{}", std::process::id()));
        std::fs::create_dir_all(&data_dir).unwrap();
        let data_dir_str = data_dir.to_str().unwrap().to_string();

        let spawn_serve = |port: u16, dir: String| {
            let control_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let control_addr = control_listener.local_addr().unwrap();
            let control_client = std::net::TcpStream::connect(control_addr).unwrap();
            let (control_server, _) = control_listener.accept().unwrap();
            let handle = std::thread::spawn(move || {
                let serve_args = args(&[
                    "--addr",
                    &format!("127.0.0.1:{port}"),
                    "--tenants",
                    "2",
                    "--keys-per-tenant",
                    "20000",
                    "--run-length",
                    "2000",
                    "--sample-size",
                    "200",
                    "--data-dir",
                    &dir,
                ]);
                super::serve_with_control(&serve_args, BufReader::new(control_server))
            });
            (handle, control_client)
        };
        let free_port = || {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let await_healthy = |client: &mut opaq_net::HttpClient| {
            for _ in 0..150 {
                if client.get("/healthz").map(|r| r.status).ok() == Some(200) {
                    return true;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            false
        };

        // First incarnation: seeds 2 tenants, answers a query.
        let port = free_port();
        let (handle, control) = spawn_serve(port, data_dir_str.clone());
        let mut client = opaq_net::HttpClient::new(format!("127.0.0.1:{port}"));
        assert!(await_healthy(&mut client), "first serve never came up");
        let first = client.get("/v1/tenant-1/events/quantile?phi=0.5").unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.header(opaq_net::VERSION_HEADER), Some("1"));
        drop(control);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("catalog: 2 publishes"), "{out}");
        assert!(out.contains("durability: 2 manifest records"), "{out}");

        // Second incarnation over the same dir: no re-seeding — the catalog
        // is rebuilt from the manifest, versions continue, and the served
        // answer is byte-identical to the pre-restart one.
        let port = free_port();
        let (handle, control) = spawn_serve(port, data_dir_str);
        let mut client = opaq_net::HttpClient::new(format!("127.0.0.1:{port}"));
        assert!(await_healthy(&mut client), "restarted serve never came up");
        let second = client.get("/v1/tenant-1/events/quantile?phi=0.5").unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(second.header(opaq_net::VERSION_HEADER), Some("1"));
        assert_eq!(
            second.body, first.body,
            "restart must serve the recovered version byte-for-byte"
        );
        let metrics = client.get("/metrics").unwrap();
        let metrics = metrics.body_str().unwrap().to_string();
        assert!(metrics.contains("opaq_catalog_recoveries 1"), "{metrics}");
        assert!(metrics.contains("opaq_manifest_records 2"), "{metrics}");
        drop(control);
        let out = handle.join().unwrap().unwrap();
        // No new publishes this run — the entries came back from disk.
        assert!(out.contains("catalog: 0 publishes"), "{out}");
        assert!(out.contains("recovered 2 entries"), "{out}");
        assert!(out.contains("1 recoveries"), "{out}");
        std::fs::remove_dir_all(&data_dir).ok();
    }

    #[test]
    fn serve_with_fixed_port_answers_http_while_running() {
        use std::io::BufReader;
        // Bind a throwaway listener to reserve a free port, release it, and
        // have `opaq serve` take it over — letting the test know the URL.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let control_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let control_addr = control_listener.local_addr().unwrap();
        let control_client = std::net::TcpStream::connect(control_addr).unwrap();
        let (control_server, _) = control_listener.accept().unwrap();

        let serve_args = args(&[
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--tenants",
            "1",
            "--keys-per-tenant",
            "20000",
            "--run-length",
            "2000",
            "--sample-size",
            "200",
        ]);
        let handle = std::thread::spawn(move || {
            super::serve_with_control(&serve_args, BufReader::new(control_server))
        });

        // Poll /healthz until the server is up, then hit a real endpoint.
        let mut client = opaq_net::HttpClient::new(format!("127.0.0.1:{port}"));
        let mut healthy = false;
        for _ in 0..100 {
            if client.get("/healthz").map(|r| r.status).ok() == Some(200) {
                healthy = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(healthy, "server never came up on port {port}");
        let response = client.get("/v1/tenant-0/events/quantile?phi=0.5").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header(opaq_net::VERSION_HEADER), Some("1"));
        assert_eq!(response.header(opaq_net::FRESHNESS_HEADER), Some("fresh"));
        let metrics = client.get("/metrics").unwrap();
        assert!(metrics
            .body_str()
            .unwrap()
            .contains("opaq_catalog_entries 1"));

        drop(control_client); // EOF => clean shutdown
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
        assert!(out.contains("served"), "{out}");
    }
}
