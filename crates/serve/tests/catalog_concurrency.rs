//! Interleaving tests for the catalog's concurrent semantics.
//!
//! The property under test: **a reader always observes a complete published
//! version**.  Structural equality of `QuantileSketch` is the strongest
//! possible form of that check — a snapshot must be *identical* (samples,
//! gaps, metadata, prefix sums) to one specific sketch the writer published,
//! never a mixture — and per-reader version numbers must be monotone,
//! because an epoch swap can only move an entry forward.
//!
//! Each test registers every version's sketch in a side map *before*
//! publishing it, then hammers the catalog from reader threads while the
//! writer (or several) keeps publishing; readers compare every snapshot
//! against the registered original.  The proptest case additionally
//! randomises reader/writer/tenant counts and the eviction budget, so the
//! interleaving space (including spill → reload races) gets explored across
//! seeds rather than at one hand-picked schedule.

use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_serve::{CatalogConfig, DatasetId, SketchCatalog, TenantId};
use parking_lot::RwLock;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic sketch whose content differs per (tenant, version): any
/// mixture of two versions breaks structural equality with both.
fn version_sketch(tenant: u64, version: u64) -> QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(200)
        .sample_size(20)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    for round in 1..=version {
        let run: Vec<u64> = (0..400)
            .map(|i| (i * 48_271 + tenant * 7_919 + round * 104_729) % (10_000 + version * 1_000))
            .collect();
        inc.add_run(run).unwrap();
    }
    inc.into_sketch().unwrap()
}

type Registry = Arc<RwLock<HashMap<(u64, u64), Arc<QuantileSketch<u64>>>>>;

/// Drive `readers` snapshot threads against a writer publishing
/// `versions` epochs for each of `tenants`, on a catalog with an optional
/// eviction budget.  Panics on the first torn or regressing observation.
fn hammer(tenants: u64, versions: u64, readers: usize, budget: Option<u64>) {
    let mut spill_dir = None;
    let catalog = Arc::new(match budget {
        None => SketchCatalog::unbounded(),
        Some(points) => {
            let mut dir = std::env::temp_dir();
            dir.push(format!(
                "opaq-serve-conc-{}-{tenants}-{versions}-{readers}",
                std::process::id()
            ));
            spill_dir = Some(dir.clone());
            SketchCatalog::new(
                CatalogConfig::builder()
                    .budget_sample_points(points)
                    .spill_dir(dir)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        }
    });
    let registry: Registry = Arc::new(RwLock::new(HashMap::new()));
    let ids: Vec<(TenantId, DatasetId)> = (0..tenants)
        .map(|t| (TenantId::new(format!("t{t}")), DatasetId::new("d")))
        .collect();

    // Version 1 of every tenant exists before any reader starts.
    for (t, (tenant, dataset)) in ids.iter().enumerate() {
        let sketch = version_sketch(t as u64, 1);
        registry
            .write()
            .insert((t as u64, 1), Arc::new(sketch.clone()));
        assert_eq!(catalog.publish(tenant, dataset, sketch).unwrap(), 1);
    }

    let done = AtomicBool::new(false);
    let observations = AtomicU64::new(0);
    crossbeam::thread::scope(|scope| {
        for reader in 0..readers {
            let catalog = Arc::clone(&catalog);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let done = &done;
            let observations = &observations;
            scope.spawn(move |_| {
                let mut last_seen: Vec<u64> = vec![0; ids.len()];
                let mut rng = 0x9e37_79b9u64.wrapping_mul(reader as u64 + 1);
                while !done.load(Ordering::Acquire) {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let t = (rng >> 33) as usize % ids.len();
                    let (tenant, dataset) = &ids[t];
                    let snap = catalog.snapshot(tenant, dataset).unwrap();
                    assert!(
                        snap.version >= last_seen[t],
                        "version regressed: reader {reader} saw {} after {}",
                        snap.version,
                        last_seen[t]
                    );
                    last_seen[t] = snap.version;
                    let expected = registry
                        .read()
                        .get(&(t as u64, snap.version))
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!(
                                "catalog served version {} of tenant {t}, which was never \
                                 published",
                                snap.version
                            )
                        });
                    assert!(
                        *snap.sketch == *expected,
                        "torn read: tenant {t} version {} does not match the published sketch",
                        snap.version
                    );
                    observations.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The writer interleaves tenants and lets readers run between
        // publications.
        for version in 2..=versions {
            for (t, (tenant, dataset)) in ids.iter().enumerate() {
                let sketch = version_sketch(t as u64, version);
                registry
                    .write()
                    .insert((t as u64, version), Arc::new(sketch.clone()));
                let assigned = catalog.publish(tenant, dataset, sketch).unwrap();
                assert_eq!(assigned, version, "epochs must be sequential");
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        // Give readers one more window against the final state.
        std::thread::sleep(Duration::from_millis(2));
        done.store(true, Ordering::Release);
    })
    .unwrap();

    assert!(
        observations.load(Ordering::Relaxed) > 0,
        "readers must actually have observed snapshots"
    );
    // Every tenant ends on its final, complete version.
    for (t, (tenant, dataset)) in ids.iter().enumerate() {
        let snap = catalog.snapshot(tenant, dataset).unwrap();
        assert_eq!(snap.version, versions);
        assert!(*snap.sketch == version_sketch(t as u64, versions));
    }
    // Accounting sanity: the resident counter must reflect actual sketches
    // (a racing publish/evict interleaving that wrapped the u64 would read
    // as ~1.8e19 here and would also have caused a mass-eviction storm).
    assert!(
        catalog.resident_sample_points() < 1_000_000,
        "resident sample points wrapped: {}",
        catalog.resident_sample_points()
    );
    if let Some(dir) = spill_dir {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn readers_observe_only_complete_versions_during_refresh() {
    hammer(1, 12, 6, None);
}

#[test]
fn readers_observe_only_complete_versions_with_eviction_churn() {
    // ~60-point sketches with a 100-point budget across 3 tenants: most
    // snapshots race an eviction or a reload of somebody.
    hammer(3, 8, 6, Some(100));
}

#[test]
fn concurrent_publishers_serialize_into_distinct_sequential_epochs() {
    let catalog = Arc::new(SketchCatalog::unbounded());
    let tenant = TenantId::new("race");
    let dataset = DatasetId::new("d");
    let writers = 6u64;
    let per_writer = 10u64;
    let versions = Arc::new(RwLock::new(Vec::<u64>::new()));
    crossbeam::thread::scope(|scope| {
        for w in 0..writers {
            let catalog = Arc::clone(&catalog);
            let versions = Arc::clone(&versions);
            let tenant = tenant.clone();
            let dataset = dataset.clone();
            scope.spawn(move |_| {
                for i in 0..per_writer {
                    let v = catalog
                        .publish(&tenant, &dataset, version_sketch(w, i + 1))
                        .unwrap();
                    versions.write().push(v);
                }
            });
        }
    })
    .unwrap();
    let mut assigned = Arc::try_unwrap(versions).unwrap().into_inner();
    assigned.sort_unstable();
    let expected: Vec<u64> = (1..=writers * per_writer).collect();
    assert_eq!(
        assigned, expected,
        "every publish must get its own sequential epoch"
    );
    let snap = catalog.snapshot(&tenant, &dataset).unwrap();
    assert_eq!(snap.version, writers * per_writer);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised interleavings: reader/writer/tenant counts and the
    /// eviction budget all vary; the complete-version property must hold
    /// for every schedule the host's scheduler produces.
    #[test]
    fn complete_version_property_holds_across_interleavings(
        tenants in 1u64..4,
        versions in 2u64..6,
        readers in 1usize..5,
        budget_sel in 0u8..3,
    ) {
        let budget = match budget_sel {
            0 => None,
            1 => Some(60),  // tight: constant churn
            _ => Some(200), // loose: occasional churn
        };
        hammer(tenants, versions, readers, budget);
    }
}
