//! Races `RefreshPool::shutdown` against concurrent `submit_ingest` callers.
//!
//! The contract under test: a submit either fails with the typed
//! `RefreshClosed` error, or is *fully honoured* — its build runs and its
//! publish lands before `shutdown` returns.  There is no third outcome
//! (accepted-but-dropped job, or a publish that sneaks in after teardown),
//! which is exactly the ordering bug this suite pins: the queue must close
//! before the workers are joined, and the workers must drain the queue
//! before exiting.

use opaq_core::OpaqConfig;
use opaq_serve::{DatasetId, RefreshPool, ServeError, SketchCatalog, TenantId};
use opaq_storage::MemRunStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn config() -> OpaqConfig {
    OpaqConfig::builder()
        .run_length(500)
        .sample_size(50)
        .build()
        .unwrap()
}

#[test]
fn shutdown_racing_submit_ingest_never_drops_an_accepted_job() {
    // Several rounds to give the race different interleavings; each round
    // hammers one pool with 4 submitter threads while the main thread shuts
    // it down mid-flight.
    for round in 0..8u64 {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = Arc::new(RefreshPool::new(Arc::clone(&catalog), 2).unwrap());
        let accepted = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for submitter in 0..4u64 {
                let pool = Arc::clone(&pool);
                let accepted = Arc::clone(&accepted);
                let rejected = Arc::clone(&rejected);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let tenant = TenantId::new(format!("t{submitter}"));
                    let dataset = DatasetId::new("events");
                    let store = Arc::new(MemRunStore::new((0u64..500).collect(), 500));
                    // Cap the backlog so the drain stays fast in debug
                    // builds; yield between submits to interleave with the
                    // racing shutdown rather than flooding before it runs.
                    for attempt in 0..100u64 {
                        match pool.submit_ingest(&tenant, &dataset, Arc::clone(&store), config(), 1)
                        {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::RefreshClosed) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                        if stop.load(Ordering::Relaxed) && attempt > 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }

            // Let some submissions land, then slam the door mid-stream.
            std::thread::sleep(Duration::from_millis(1 + round % 4));
            pool.shutdown();
            let publishes_at_shutdown = catalog.stats().publishes;
            stop.store(true, Ordering::Relaxed);

            // Quiescence: nothing publishes after shutdown returned.
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(
                catalog.stats().publishes,
                publishes_at_shutdown,
                "round {round}: a publish landed after shutdown returned"
            );
        });

        // Every accepted job was honoured (published or recorded failed),
        // and the pool's own accounting agrees with the submitters'.
        assert_eq!(
            pool.submitted(),
            accepted.load(Ordering::Relaxed),
            "round {round}: pool accepted a job the submitter never saw (or vice versa)"
        );
        assert_eq!(
            pool.published() + pool.failed(),
            pool.submitted(),
            "round {round}: an accepted job was dropped on the floor"
        );
        assert_eq!(
            catalog.stats().publishes,
            pool.published(),
            "round {round}: catalog and pool disagree on publish count"
        );
        assert!(pool.is_shut_down());
    }
}

#[test]
fn shutdown_with_deep_backlog_drains_everything() {
    let catalog = Arc::new(SketchCatalog::unbounded());
    let pool = RefreshPool::new(Arc::clone(&catalog), 3).unwrap();
    let tenant = TenantId::new("t");
    let dataset = DatasetId::new("d");
    let store = Arc::new(MemRunStore::new((0u64..1_000).collect(), 500));
    for _ in 0..50 {
        pool.submit_ingest(&tenant, &dataset, Arc::clone(&store), config(), 1)
            .unwrap();
    }
    // No wait_idle: shutdown itself must drain the 50-deep backlog.
    pool.shutdown();
    assert_eq!(pool.published(), 50);
    assert_eq!(catalog.snapshot(&tenant, &dataset).unwrap().version, 50);
}
